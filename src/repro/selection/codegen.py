"""Decision-function code generation.

Open MPI does not interpret tables at run time — its decision function is
*compiled C*.  The deployment end-game of the paper's method is therefore
not a JSON file but generated source: take a precomputed
:class:`~repro.selection.decision_table.DecisionTable` and emit the
equivalent straight-line decision function, in C (for dropping into
``coll_tuned_decision_fixed.c``) or in Python (for embedding in a launcher
script).  The generated code is pure threshold comparisons — the same
shape as ``ompi_coll_tuned_bcast_intra_dec_fixed`` — and needs no runtime
dependency on this package.

The Python backend is also *executable here*: :func:`compile_python`
returns a real callable, and the tests verify it agrees with the table on
every grid cell and off-grid point.
"""

from __future__ import annotations

from repro.errors import SelectionError
from repro.selection.decision_table import DecisionTable

#: Stable algorithm identifiers for the C backend (Open MPI's numbering
#: for MPI_Bcast where one exists).
C_ALGORITHM_IDS = {
    "linear": 1,
    "chain": 3,  # Open MPI calls the single chain "pipeline"
    "k_chain": 2,  # Open MPI's "chain" (fanout 4)
    "split_binary": 4,
    "binary": 5,
    "binomial": 6,
    "scatter_allgather": 7,
    # Extension algorithm (no Open MPI number): rack-leader hierarchical.
    "hierarchical": 8,
}

#: Per-operation C algorithm numberings (Open MPI's ``coll_tuned``
#: enumerations where one exists).  ``C_ALGORITHM_IDS`` stays as the
#: broadcast map for backward compatibility.
C_OPERATION_ALGORITHM_IDS: dict[str, dict[str, int]] = {
    "bcast": C_ALGORITHM_IDS,
    "reduce": {
        "linear": 1,
        "chain": 3,  # Open MPI calls the single chain "pipeline"
        "binary": 4,
        "binomial": 5,
        "in_order_binomial": 6,
        # Extension algorithm (no Open MPI number).
        "hierarchical": 7,
    },
    "gather": {
        "linear": 1,
        "binomial": 2,
    },
    "barrier": {
        "linear": 1,
        "double_ring": 2,
        "recursive_doubling": 3,
        "bruck": 4,
    },
    # Open MPI's coll_tuned allreduce enumeration (basic_linear=1,
    # nonoverlapping=2 are not modelled).
    "allreduce": {
        "recursive_doubling": 3,
        "ring": 4,
    },
    "allgather": {
        "linear": 1,
        "bruck": 2,
        "recursive_doubling": 3,
        "ring": 4,
        "neighbor_exchange": 5,
    },
    "alltoall": {
        "linear": 1,
        "pairwise": 2,
        "bruck": 3,
    },
    "scatter": {
        "linear": 1,
        "binomial": 2,
    },
}


def algorithm_ids_for(operation: str) -> dict[str, int]:
    """The C id numbering for ``operation`` (broadcast's for unknown ops)."""
    return C_OPERATION_ALGORITHM_IDS.get(operation, C_ALGORITHM_IDS)


def _table_operation(table: DecisionTable) -> str:
    """The operation a table decides (read off its first selection)."""
    return table.choices[0][0].operation


def _selector_rows(table: DecisionTable):
    """Yield (procs_lower_bound, [(size_lower_bound, selection), ...])."""
    for i, procs in enumerate(table.proc_points):
        yield procs, [
            (table.size_points[j], table.choices[i][j])
            for j in range(len(table.size_points))
        ]


def generate_python(table: DecisionTable, function_name: str = "select_bcast") -> str:
    """Emit a dependency-free Python decision function for ``table``.

    The function takes ``(communicator_size, message_size)`` and returns
    ``(algorithm_name, segment_size)``.  Bounds follow the table's floor
    semantics: queries *below* the grid clamp to the first cell on that
    axis (the unconditional ``if True`` fallback branches), exactly as
    :meth:`DecisionTable.lookup` reports via its ``clamped`` flag — the
    generated code and the table can never disagree, on or off the grid.
    """
    lines = [
        f"def {function_name}(communicator_size, message_size):",
        '    """Generated decision function (floor semantics on both axes).',
        "",
        f"    Grid: {len(table.proc_points)} communicator sizes x "
        f"{len(table.size_points)} message sizes.",
        f"    Queries below the grid (communicator_size < "
        f"{table.proc_points[0]} or",
        f"    message_size < {table.size_points[0]}) clamp to the first "
        f"grid cell.",
        '    """',
    ]
    rows = list(_selector_rows(table))
    for index in range(len(rows) - 1, -1, -1):
        procs, cells = rows[index]
        guard = "if True" if index == 0 else f"if communicator_size >= {procs}"
        lines.append(f"    {guard}:")
        for j in range(len(cells) - 1, -1, -1):
            size, choice = cells[j]
            inner = "if True" if j == 0 else f"if message_size >= {size}"
            lines.append(f"        {inner}:")
            lines.append(
                f"            return ({choice.algorithm!r}, {choice.segment_size})"
            )
    lines.append("")
    return "\n".join(lines)


def compile_python(table: DecisionTable, function_name: str = "select_bcast"):
    """Generate and compile the Python decision function; return the callable."""
    source = generate_python(table, function_name)
    namespace: dict = {}
    exec(compile(source, f"<generated {function_name}>", "exec"), namespace)
    return namespace[function_name]


def generate_c(table: DecisionTable, function_name: str = "coll_bcast_dec_generated") -> str:
    """Emit a C decision function in Open MPI's fixed-decision style.

    The function writes the algorithm id (the operation's numbering from
    :data:`C_OPERATION_ALGORITHM_IDS`, read off the table's selections)
    and segment size through out-parameters and returns 0, matching the
    conventions of ``coll_tuned_decision_fixed.c``.
    """
    operation = _table_operation(table)
    algorithm_ids = algorithm_ids_for(operation)
    lines = [
        "/* Generated by repro.selection.codegen — do not edit.",
        f" * Operation: {operation}.",
        f" * Grid: {len(table.proc_points)} communicator sizes x "
        f"{len(table.size_points)} message sizes.",
        " * Algorithm ids: "
        + ", ".join(f"{name}={num}" for name, num in sorted(algorithm_ids.items()))
        + ".",
        f" * Queries below the grid (communicator_size < "
        f"{table.proc_points[0]} or message_size < "
        f"{table.size_points[0]}) clamp to the first grid cell.",
        " */",
        f"int {function_name}(int communicator_size, size_t message_size,",
        f"{' ' * (len(function_name) + 5)}int *algorithm, size_t *segsize)",
        "{",
    ]
    rows = list(_selector_rows(table))
    for index in range(len(rows) - 1, -1, -1):
        procs, cells = rows[index]
        guard = (
            "    {"
            if index == 0
            else f"    if (communicator_size >= {procs}) {{"
        )
        lines.append(guard)
        for j in range(len(cells) - 1, -1, -1):
            size, choice = cells[j]
            try:
                algorithm_id = algorithm_ids[choice.algorithm]
            except KeyError:
                raise SelectionError(
                    f"no C algorithm id for {operation} algorithm "
                    f"{choice.algorithm!r}; known: "
                    f"{', '.join(sorted(algorithm_ids))}"
                ) from None
            inner = (
                "        {"
                if j == 0
                else f"        if (message_size >= {size}UL) {{"
            )
            lines.append(inner)
            lines.append(f"            *algorithm = {algorithm_id};"
                         f"  /* {choice.algorithm} */")
            lines.append(f"            *segsize = {choice.segment_size}UL;")
            lines.append("            return 0;")
            lines.append("        }")
        lines.append("    }")
    lines.append("    return -1;  /* unreachable: the grids are total */")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)
