"""Per-algorithm estimation of the Hockney parameters (paper §4.2).

This is the paper's second contribution: instead of measuring α and β once
with ping-pongs, they are estimated *separately for each collective
algorithm*, from communication experiments that contain the algorithm
itself, so the fitted parameters capture the context the point-to-point
transfers actually run in (pipelining, concurrent injection, protocol
effects).

The experiment (Eq. 7): a broadcast of ``m`` bytes with the algorithm under
test, immediately followed by a linear-without-synchronisation gather of
``m_g`` bytes per rank — so the experiment starts *and finishes* on the
root, whose clock times it.  With the algorithm's model supplying its
coefficients ``(c_α, c_β)`` and the gather contributing
``(P-1, (P-1)·m_g)`` (Eq. 8), each message size yields one linear equation

    (c_α + P - 1)·α + (c_β + (P-1)·m_g)·β = T.

Dividing by the α-coefficient puts the system in the canonical form of the
paper's Fig. 4, ``α + β·x_i = y_i``, which the Huber regressor solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.regression import (
    DEFAULT_SCREEN_THRESHOLD,
    FitResult,
    get_regressor,
    mad_screen,
)
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.models.base import BcastModel
from repro.models.gather_models import linear_gather_coefficients
from repro.models.hockney import HockneyParams
from repro.units import KiB, MiB, log_spaced_sizes

#: The paper's broadcast size sweep: ten log-spaced sizes, 8 KB to 4 MB.
DEFAULT_SIZES = tuple(log_spaced_sizes(8 * KiB, 4 * MiB, 10))


def default_gather_bytes(nbytes: int) -> int:
    """The default ``m_g`` schedule: grows with the broadcast size.

    The paper varies ``m_g`` across the experiments (``m_g ∈ {m_g1..m_gM}``,
    with ``m_g ≠ m_s``) — and it must: for segmented algorithms the
    per-segment size is constant, so with a *fixed* gather size every
    canonical equation would have (nearly) the same ``x_i`` and the system
    of Fig. 4 would be singular.  A gather size proportional to ``m``
    spreads the ``x_i`` while staying small enough that the broadcast under
    test still dominates the experiment.
    """
    return max(1 * KiB, nbytes // 64)


#: Default gather schedule (see :func:`default_gather_bytes`).
DEFAULT_GATHER_BYTES = default_gather_bytes


def alphabeta_prefetch_jobs(
    spec: ClusterSpec,
    algorithm: str,
    *,
    procs: int,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = 8 * KiB,
    gather_bytes: int | Callable[[int], int] = DEFAULT_GATHER_BYTES,
    seed: int = 0,
    reps: int = 2,
) -> list[SimJob]:
    """The first ``reps`` repetitions of one algorithm's α/β sweep, as jobs.

    Enumerates exactly the seeds :func:`estimate_alpha_beta`'s adaptive
    loop will request, so prefetching these makes the loop replay from the
    runner's memo.
    """
    gather_of = gather_bytes if callable(gather_bytes) else (lambda _m: gather_bytes)
    batch: list[SimJob] = []
    for index, nbytes in enumerate(sizes):
        base = seed + 104_729 * (index + 1)
        for rep in range(reps):
            batch.append(
                SimJob(
                    spec=spec,
                    kind="bcast_then_gather",
                    procs=procs,
                    algorithm=algorithm,
                    nbytes=nbytes,
                    segment_size=segment_size,
                    gather_bytes=gather_of(nbytes),
                    seed=base + 7919 * rep,
                )
            )
    return batch


#: Seed stride separating retry attempts of a non-converged measurement
#: from each other and from the primary repetition stream.
RETRY_SEED_STRIDE = 15_485_863


@dataclass(frozen=True)
class FitQuality:
    """Per-fit quality diagnostics: how trustworthy are these α/β?

    Recorded by :func:`estimate_alpha_beta` for every fit (the knobs that
    *change* the fit — screening, retries — stay opt-in, but diagnosing it
    is free), surfaced through :class:`CalibrationResult` and the strict
    artifact build's quality gate.
    """

    #: Canonical points available / dropped by MAD screening / fitted.
    points: int
    screened: int
    fitted: int
    #: Largest |residual| of the final fit over the fitted points.
    max_abs_residual: float
    #: ``max_abs_residual`` relative to the mean |y| of the fitted points —
    #: the scale-free "is this line actually describing the data" number.
    relative_residual: float
    #: Measurements whose CI met the precision target / total measurements.
    converged: int
    #: Measurements that were re-run under the retry budget.
    retried: int
    #: Mean CI half-width over mean, across all measurements.
    mean_relative_precision: float

    @property
    def converged_fraction(self) -> float:
        return self.converged / self.points if self.points else 1.0

    def ok(
        self,
        max_relative_residual: float = 0.5,
        min_converged_fraction: float = 0.5,
    ) -> bool:
        """Whether this fit passes the (strict-build) quality gate."""
        return (
            self.relative_residual <= max_relative_residual
            and self.converged_fraction >= min_converged_fraction
        )

    def as_dict(self) -> dict:
        return {
            "points": self.points,
            "screened": self.screened,
            "fitted": self.fitted,
            "max_abs_residual": self.max_abs_residual,
            "relative_residual": self.relative_residual,
            "converged": self.converged,
            "retried": self.retried,
            "mean_relative_precision": self.mean_relative_precision,
        }


@dataclass(frozen=True)
class AlphaBeta:
    """Fitted per-algorithm Hockney parameters plus fit diagnostics."""

    algorithm: str
    params: HockneyParams
    fit: FitResult
    #: The (x_i, y_i) canonical points the line was fitted to.
    points: tuple[tuple[float, float], ...]
    #: Message sizes of the experiments, in order.
    sizes: tuple[int, ...]
    #: Statistics of each experiment's time measurement.
    stats: tuple[SampleStats, ...]
    #: Quality diagnostics of the fit (None for legacy constructions).
    quality: FitQuality | None = None

    @property
    def alpha(self) -> float:
        return self.params.alpha

    @property
    def beta(self) -> float:
        return self.params.beta


def estimate_alpha_beta(
    spec: ClusterSpec,
    model: BcastModel,
    *,
    procs: int | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = 8 * KiB,
    gather_bytes: int | Callable[[int], int] = DEFAULT_GATHER_BYTES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    prefetch: bool = True,
    screen_mad: float | None = None,
    retry_budget: int = 0,
) -> AlphaBeta:
    """Fit α and β for ``model.algorithm`` on ``spec`` (paper §4.2).

    ``procs`` defaults to half the cluster, the paper's choice ("the use of
    larger numbers of nodes in the experiments will not change the
    estimation").  ``gather_bytes`` may be a constant or a function of the
    broadcast size ``m`` (the paper varies ``m_g`` with the experiment).
    Simulations run through ``runner`` (default: the process-wide runner);
    ``prefetch=False`` skips the warm-up batch when the caller has already
    prefetched a larger one.

    Robustness knobs (both default *off* so the vanilla estimate is
    bit-identical to earlier releases): ``screen_mad`` enables MAD-based
    outlier screening of the canonical points before the fit (see
    :func:`~repro.estimation.regression.mad_screen`), and ``retry_budget``
    re-runs each measurement whose CI misses the precision target up to
    that many times with fresh seeds, keeping the tightest sample.  Quality
    diagnostics are recorded in ``AlphaBeta.quality`` either way.
    """
    if procs is None:
        procs = max(2, spec.max_procs // 2)
    if not 2 <= procs <= spec.max_procs:
        raise EstimationError(
            f"{spec.name}: procs={procs} outside 2..{spec.max_procs}"
        )
    if len(sizes) < 2:
        raise EstimationError("need at least two message sizes to fit a line")
    fit_fn = get_regressor(regressor)
    gather_of = gather_bytes if callable(gather_bytes) else (lambda _m: gather_bytes)
    runner = runner if runner is not None else default_runner()
    if prefetch:
        runner.prefetch(
            alphabeta_prefetch_jobs(
                spec,
                model.algorithm,
                procs=procs,
                sizes=sizes,
                segment_size=segment_size,
                gather_bytes=gather_bytes,
                seed=seed,
            )
        )

    memo_before = runner.stats.memo_hits
    sims_before = runner.stats.simulations
    with obs.span(
        "estimate.alphabeta",
        algorithm=model.algorithm,
        cluster=spec.name,
        procs=procs,
        sizes=len(sizes),
    ) as ab_span:
        xs: list[float] = []
        ys: list[float] = []
        stats: list[SampleStats] = []
        retried = 0
        for index, nbytes in enumerate(sizes):
            m_g = gather_of(nbytes)
            coeffs = model.coefficients(procs, nbytes, segment_size)
            total = coeffs + linear_gather_coefficients(procs, m_g)
            if total.c_alpha <= 0:
                raise EstimationError(
                    f"{model.algorithm}: degenerate experiment at m={nbytes}"
                )

            def measure_once(
                rep_seed: int, nbytes: int = nbytes, m_g: int = m_g
            ) -> float:
                return runner.run_one(
                    SimJob(
                        spec=spec,
                        kind="bcast_then_gather",
                        procs=procs,
                        algorithm=model.algorithm,
                        nbytes=nbytes,
                        segment_size=segment_size,
                        gather_bytes=m_g,
                        seed=rep_seed,
                    )
                )

            base_seed = seed + 104_729 * (index + 1)
            sample = adaptive_measure(
                measure_once,
                precision=precision,
                max_reps=max_reps,
                seed=base_seed,
            )
            attempt = 0
            while not sample.converged and attempt < retry_budget:
                # A fresh seed gives an independent noise realisation; keep
                # whichever sample pinned the mean down tighter.
                attempt += 1
                retried += 1
                candidate = adaptive_measure(
                    measure_once,
                    precision=precision,
                    max_reps=max_reps,
                    seed=base_seed + RETRY_SEED_STRIDE * attempt,
                )
                if candidate.relative_precision < sample.relative_precision:
                    sample = candidate
            stats.append(sample)
            xs.append(total.c_beta / total.c_alpha)
            ys.append(sample.mean / total.c_alpha)

        if screen_mad is not None and len(xs) > 2:
            kept = mad_screen(xs, ys, threshold=screen_mad)
        else:
            kept = list(range(len(xs)))
        screened = len(xs) - len(kept)
        fit = fit_fn([xs[i] for i in kept], [ys[i] for i in kept])
        alpha = max(fit.intercept, 0.0)
        beta = max(fit.slope, 0.0)
        mean_abs_y = sum(abs(ys[i]) for i in kept) / len(kept)
        quality = FitQuality(
            points=len(xs),
            screened=screened,
            fitted=len(kept),
            # float() casts: residuals are numpy scalars, and quality dicts
            # must serialise to JSON (artifact documents, CLI output).
            max_abs_residual=float(fit.max_abs_residual),
            relative_residual=float(
                fit.max_abs_residual / mean_abs_y if mean_abs_y > 0 else 0.0
            ),
            converged=sum(1 for s in stats if s.converged),
            retried=retried,
            mean_relative_precision=float(
                sum(s.relative_precision for s in stats) / len(stats)
            ),
        )
        # Aggregate measurement traffic: single-job memo hits bypass
        # exec.run spans (runner fast path), so the counts live here.
        ab_span.set_attrs(
            memo_hits=runner.stats.memo_hits - memo_before,
            simulations=runner.stats.simulations - sims_before,
            retried=retried,
        )
        return AlphaBeta(
            algorithm=model.algorithm,
            params=HockneyParams(alpha=alpha, beta=beta),
            fit=fit,
            points=tuple(zip(xs, ys)),
            sizes=tuple(sizes),
            stats=tuple(stats),
            quality=quality,
        )
