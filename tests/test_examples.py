"""Smoke tests keeping the example scripts runnable.

The fast examples run end-to-end; the minute-scale ones are compiled and
their mains imported, which catches signature drift without the wall time.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


class TestExamplesImportable:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_exposes_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name} has no main()"


class TestFastExamplesRun:
    def test_visualize_trees_runs(self, capsys):
        module = load_example("visualize_trees.py")
        module.main()
        out = capsys.readouterr().out
        assert "Binomial tree" in out
        assert "segment #2" in out
