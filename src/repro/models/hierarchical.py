"""Analytical models of the hierarchical (rack-leader) collectives.

The hierarchical broadcast routes one binomial tree over ``R = ceil(P/G)``
rack leaders (``G`` ranks per rack) and fans out linearly inside each
rack, so its stage structure combines paper Eq. 6 over ``R`` with a
single γ(G) intra-rack stage.  Like every model here it stays *linear in
(α, β)* — the uplink serialisation the algorithm is designed around is
not modelled explicitly but absorbed by the in-context α/β estimation,
which runs the actual simulator on the actual fabric (the same
measurement-absorbs-the-mechanism argument the paper makes for γ(P)).

``group_ranks`` is a platform property, not an algorithm constant, so
these models take it as a constructor parameter; `PlatformModel`
forwards it from its ``model_params`` (see ``extra_params``).
"""

from __future__ import annotations

from math import ceil, floor, log2

from repro.models.base import BcastModel, LinearCoefficients, segment_count


class HierarchicalBcastModel(BcastModel):
    """Inter-rack binomial + intra-rack linear broadcast.

    With ``R`` racks the root emits one segment per
    ``γ(⌈log2 R⌉ + G)·τ`` (its remote leader children plus its ``G - 1``
    local members), the deepest leader path mirrors the binomial drain
    over ``R``, and the last rack's fan-out adds one ``γ(G)`` stage.
    """

    algorithm = "hierarchical"
    extra_params = ("group_ranks",)

    def __init__(self, gamma, group_ranks: int = 1):
        super().__init__(gamma)
        self.group_ranks = max(1, int(group_ranks))

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        group = min(self.group_ranks, procs)
        racks = ceil(procs / self.group_ranks)
        ceil_log = ceil(log2(racks)) if racks > 1 else 0
        floor_log = floor(log2(racks)) if racks > 1 else 0
        root_children = ceil_log + group - 1
        stages = segments * self.gamma(root_children + 1) - 1.0
        for i in range(1, floor_log):
            stages += self.gamma(ceil_log - i + 1)
        if group > 1 and racks > 1:
            # The last rack still has to fan out after its leader drains.
            stages += self.gamma(group)
        stages = max(stages, float(segments))
        return LinearCoefficients(stages, stages * (nbytes / segments))


class HierarchicalReduceModel(HierarchicalBcastModel):
    """Hierarchical reduce: the broadcast tree run leaf-to-root."""

    algorithm = "hierarchical"
