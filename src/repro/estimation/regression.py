"""Linear regression: ordinary least squares and the Huber M-estimator.

The paper fits the canonical system ``α + β·x_i = y_i`` (Fig. 4) with the
Huber regressor [25] so occasional outlier experiments (network hiccups)
do not skew α and β.  We implement Huber as iteratively reweighted least
squares (IRLS) with a median-absolute-deviation scale estimate — the
textbook construction — on top of a plain OLS solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError

#: Huber's standard tuning constant: 95% efficiency at the Gaussian.
DEFAULT_EPSILON = 1.345


@dataclass(frozen=True)
class FitResult:
    """Outcome of a line fit ``y ≈ intercept + slope·x``."""

    intercept: float
    slope: float
    #: Residuals ``y_i - (intercept + slope·x_i)`` in input order.
    residuals: tuple[float, ...]
    #: Number of IRLS iterations performed (0 for plain OLS).
    iterations: int

    @property
    def max_abs_residual(self) -> float:
        return max((abs(r) for r in self.residuals), default=0.0)

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def _as_arrays(xs, ys) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.ndim != 1 or y.ndim != 1 or len(x) != len(y):
        raise EstimationError("x and y must be 1-D sequences of equal length")
    if len(x) < 2:
        raise EstimationError(f"need at least two points to fit a line, got {len(x)}")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise EstimationError("non-finite values in regression input")
    return x, y


def _weighted_ols(x: np.ndarray, y: np.ndarray, w: np.ndarray) -> tuple[float, float]:
    sw = w.sum()
    if sw <= 0:
        raise EstimationError("all regression weights vanished")
    mx = (w * x).sum() / sw
    my = (w * y).sum() / sw
    sxx = (w * (x - mx) ** 2).sum()
    if sxx == 0:
        raise EstimationError("degenerate regression: all x identical")
    slope = (w * (x - mx) * (y - my)).sum() / sxx
    intercept = my - slope * mx
    return intercept, slope


def ols_fit(xs, ys) -> FitResult:
    """Ordinary least squares fit of ``y = intercept + slope·x``."""
    x, y = _as_arrays(xs, ys)
    intercept, slope = _weighted_ols(x, y, np.ones_like(x))
    residuals = y - (intercept + slope * x)
    return FitResult(intercept, slope, tuple(residuals), iterations=0)


def huber_fit(
    xs,
    ys,
    *,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = 50,
    tolerance: float = 1e-12,
) -> FitResult:
    """Huber-loss robust fit of ``y = intercept + slope·x`` via IRLS.

    Residuals within ``epsilon`` scaled deviations get full weight; larger
    residuals are downweighted proportionally (the Huber ψ function).  The
    scale is re-estimated each iteration from the median absolute deviation
    (consistent for the Gaussian via the 0.6745 factor).
    """
    if epsilon <= 0:
        raise EstimationError(f"epsilon must be positive, got {epsilon}")
    x, y = _as_arrays(xs, ys)
    weights = np.ones_like(x)
    intercept, slope = _weighted_ols(x, y, weights)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        residuals = y - (intercept + slope * x)
        mad = np.median(np.abs(residuals - np.median(residuals)))
        scale = mad / 0.6745
        if scale <= 0:
            # Perfect fit (deterministic data): nothing to robustify.
            break
        threshold = epsilon * scale
        magnitude = np.abs(residuals)
        # Full weight within the threshold; proportional downweight beyond.
        # (np.divide with a where-mask avoids evaluating 1/0 for the exact
        # zero residuals that land in the full-weight branch anyway.)
        weights = np.ones_like(magnitude)
        outliers = magnitude > threshold
        np.divide(threshold, magnitude, out=weights, where=outliers)
        new_intercept, new_slope = _weighted_ols(x, y, weights)
        change = abs(new_intercept - intercept) + abs(new_slope - slope)
        intercept, slope = new_intercept, new_slope
        reference = abs(intercept) + abs(slope)
        if change <= tolerance * max(reference, 1e-30):
            break
    residuals = y - (intercept + slope * x)
    return FitResult(intercept, slope, tuple(residuals), iterations=iterations)


#: Modified z-score cutoff for :func:`mad_screen` (Iglewicz & Hoaglin's
#: conventional 3.5).
DEFAULT_SCREEN_THRESHOLD = 3.5

#: Fraction of points :func:`mad_screen` may drop at most.  Screening is a
#: guard against a few wrecked experiments, not a licence to discard data:
#: if more than a quarter of the sweep looks like outliers, the fit should
#: *see* that (and the quality gate should reject it) rather than paper
#: over it.
_MAX_SCREEN_FRACTION = 0.25


def mad_screen(xs, ys, threshold: float = DEFAULT_SCREEN_THRESHOLD) -> list[int]:
    """Indices of points that survive MAD-based outlier screening.

    Fits a preliminary OLS line, computes modified z-scores
    ``0.6745 · (r - median(r)) / MAD(r)`` of its residuals, and drops
    points beyond ``threshold`` — the classical pre-screen applied before
    a robust fit so that gross outliers (a wrecked experiment, a fault
    window) cannot drag even the Huber estimate.  At most a quarter of the
    points (and never below two) are dropped; with zero MAD (deterministic
    data) everything is kept.
    """
    if threshold <= 0:
        raise EstimationError(f"screen threshold must be positive, got {threshold}")
    x, y = _as_arrays(xs, ys)
    n = len(x)
    fit = ols_fit(x, y)
    residuals = np.asarray(fit.residuals)
    median = np.median(residuals)
    mad = np.median(np.abs(residuals - median))
    if mad == 0:
        return list(range(n))
    z = np.abs(0.6745 * (residuals - median) / mad)
    kept = [i for i in range(n) if z[i] <= threshold]
    floor = max(2, n - int(n * _MAX_SCREEN_FRACTION))
    if len(kept) < floor:
        order = np.argsort(z, kind="stable")
        kept = sorted(int(i) for i in order[:floor])
    return kept


REGRESSORS = {"ols": ols_fit, "huber": huber_fit}


def get_regressor(name: str):
    """Look up a regression function by name (``"ols"`` or ``"huber"``)."""
    try:
        return REGRESSORS[name]
    except KeyError:
        known = ", ".join(sorted(REGRESSORS))
        raise EstimationError(f"unknown regressor {name!r}; known: {known}") from None
