"""Benchmark: simulator throughput.

Not a paper artefact — a performance-regression guard for the substrate
itself.  A full Table 3 regeneration runs thousands of simulations; these
numbers keep that tractable.
"""

from repro.clusters import GROS, MINICLUSTER
from repro.measure import time_bcast
from repro.units import KiB, MiB


def test_small_bcast_simulation_throughput(benchmark):
    """One 16-rank, 8-segment broadcast: the estimation workload's unit."""

    def simulate():
        return time_bcast(
            MINICLUSTER.with_noise(0.0), "binomial", 16, 64 * KiB, 8 * KiB
        )

    result = benchmark(simulate)
    assert result > 0


def test_paper_scale_bcast_simulation(benchmark):
    """P=100, 1 MiB chain: among the heaviest single runs in Table 3."""

    def simulate():
        return time_bcast(GROS.with_noise(0.0), "chain", 100, 1 * MiB, 8 * KiB)

    result = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert result > 0
    # Regression guard: this must stay well under a second of wall time.
    assert benchmark.stats["mean"] < 5.0
