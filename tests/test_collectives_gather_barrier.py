"""Tests for the gather and barrier algorithms."""

import collections

import pytest

from repro.clusters import MINICLUSTER
from repro.collectives.barrier import BARRIER_ALGORITHMS
from repro.collectives.gather import GATHER_ALGORITHMS
from repro.measure import run_timed, time_gather
from repro.sim.trace import Tracer
from repro.units import KiB


class TestLinearGather:
    def test_root_receives_from_everyone(self):
        tracer = Tracer()

        def program(comm):
            yield from GATHER_ALGORITHMS["linear"](comm, 0, 4 * KiB)

        run_timed(MINICLUSTER, program, 8, tracer=tracer)
        sources = sorted(
            e.peer for e in tracer.of_kind("recv_complete") if e.rank == 0
        )
        assert sources == list(range(1, 8))

    def test_cost_scales_linearly_with_procs(self):
        """The (P-1) structure of paper Eq. 8."""
        m_g = 16 * KiB
        t4 = time_gather(MINICLUSTER, "linear", 4, m_g)
        t8 = time_gather(MINICLUSTER, "linear", 8, m_g)
        t16 = time_gather(MINICLUSTER, "linear", 16, m_g)
        # Increments should be roughly equal: T(P) ~ const + (P-1) * c.
        first_increment = (t8 - t4) / 4
        second_increment = (t16 - t8) / 8
        assert second_increment == pytest.approx(first_increment, rel=0.3)

    def test_single_process_noop(self):
        assert time_gather(MINICLUSTER, "linear", 1, 4 * KiB) == 0.0

    def test_non_root_sends_exactly_once(self):
        tracer = Tracer()

        def program(comm):
            yield from GATHER_ALGORITHMS["linear"](comm, 2, 4 * KiB)

        run_timed(MINICLUSTER, program, 6, root=2, tracer=tracer)
        sends = collections.Counter(e.rank for e in tracer.of_kind("send_post"))
        assert sends == {r: 1 for r in range(6) if r != 2}


class TestBinomialGather:
    def test_aggregates_subtree_contributions(self):
        tracer = Tracer()
        m = 4 * KiB

        def program(comm):
            yield from GATHER_ALGORITHMS["binomial"](comm, 0, m)

        run_timed(MINICLUSTER, program, 8, tracer=tracer)
        # Total bytes received at the root equal (P-1) contributions.
        root_bytes = sum(
            e.nbytes for e in tracer.of_kind("recv_complete") if e.rank == 0
        )
        assert root_bytes == 7 * m

    def test_fewer_root_messages_than_linear(self):
        counts = {}
        for name in ("linear", "binomial"):
            tracer = Tracer()

            def program(comm, name=name):
                yield from GATHER_ALGORITHMS[name](comm, 0, 4 * KiB)

            run_timed(MINICLUSTER, program, 16, tracer=tracer)
            counts[name] = len(
                [e for e in tracer.of_kind("recv_complete") if e.rank == 0]
            )
        assert counts["binomial"] < counts["linear"]


@pytest.mark.parametrize("name", sorted(BARRIER_ALGORITHMS))
class TestBarriers:
    def test_completes_for_various_sizes(self, name):
        for procs in (1, 2, 3, 4, 7, 8, 13, 16):
            def program(comm):
                yield from BARRIER_ALGORITHMS[name](comm)

            elapsed = run_timed(MINICLUSTER, program, procs)
            assert elapsed >= 0.0

    def test_no_rank_exits_before_last_rank_enters(self, name):
        """The barrier property: exit time >= every rank's entry time."""
        procs = 8
        entry_times = {}
        exit_times = {}
        stagger = 37e-6

        def program(comm):
            yield comm.sim.timeout(comm.rank * stagger)
            entry_times[comm.rank] = comm.now
            yield from BARRIER_ALGORITHMS[name](comm)
            exit_times[comm.rank] = comm.now

        run_timed(MINICLUSTER, program, procs)
        last_entry = max(entry_times.values())
        assert min(exit_times.values()) >= last_entry

    def test_two_barriers_back_to_back(self, name):
        def program(comm):
            yield from BARRIER_ALGORITHMS[name](comm)
            yield from BARRIER_ALGORITHMS[name](comm)

        elapsed = run_timed(MINICLUSTER, program, 6)
        assert elapsed > 0.0
