"""Declarative multi-level fabric descriptions.

The simulator's base :class:`~repro.sim.network.Fabric` models the
paper's experimental platforms: every host hangs off one non-blocking
switch, so any two NICs enjoy the full link bandwidth.  Real clusters
rarely look like that — hosts sit in racks behind leaf switches whose
uplinks into the spine are *oversubscribed* (Barchet-Estefanel & Mounié
characterise collectives by exactly this decomposition into homogeneous
subnets).  A :class:`FabricSpec` describes that hierarchy declaratively:

* nodes are assigned to racks in blocks of ``nodes_per_rack`` (matching
  the block rank placement of :meth:`ClusterSpec.rank_to_node`, so rack
  locality and rank locality coincide the way a real scheduler would
  allocate them);
* each rack reaches the spine through an :class:`Uplink` — a serially
  reserved resource with its own latency and per-byte cost, optionally
  several parallel ones (``count``);
* racks may be grouped into *pods* behind a second uplink level
  (``pod_racks``/``pod_uplink``), giving a three-level oversubscribed
  fat-tree;
* per-rack overrides (``rack_uplinks``) describe heterogeneous fabrics
  where some racks have newer or degraded uplinks.

A spec with ``nodes_per_rack == 0`` is *flat*: it describes exactly the
single-switch fabric the simulator already models, participates in no
routing, and — crucially — folds nothing into
:meth:`ClusterSpec.fingerprint`, so flat configurations remain
bit-identical to the pre-fabric pipeline.

This module is purely declarative; the routing/reservation mechanics
live in :mod:`repro.sim.network` (see ``_TopologyState``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(frozen=True)
class Uplink:
    """One rack- or pod-level link into the next switch tier.

    ``byte_time`` is the serialised per-byte cost of the link (seconds
    per byte); ``latency`` is the extra one-way hop latency a message
    pays for traversing it; ``count`` models ``count`` parallel physical
    links (traffic takes the least-loaded one).
    """

    #: Extra one-way latency of traversing this link (seconds).
    latency: float
    #: Per-byte serialisation cost on the link (seconds/byte).
    byte_time: float
    #: Number of parallel physical links (ECMP-style spreading).
    count: int = 1

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise SimulationError("uplink latency must be >= 0")
        if self.byte_time < 0:
            raise SimulationError("uplink byte_time must be >= 0")
        if self.count < 1:
            raise SimulationError("uplink needs at least one physical link")

    def payload(self) -> dict:
        """Canonical JSON-ready form (for fingerprint folding)."""
        return {
            "latency": self.latency,
            "byte_time": self.byte_time,
            "count": self.count,
        }


@dataclass(frozen=True)
class FabricSpec:
    """A declarative multi-level network fabric.

    ``nodes_per_rack == 0`` is the *flat* sentinel: one big switch, no
    uplinks, identical to the pre-fabric simulator.  Otherwise node
    ``n`` lives in rack ``n // nodes_per_rack`` and inter-rack traffic
    serialises on the racks' :class:`Uplink` resources; with
    ``pod_racks > 0`` rack ``r`` additionally lives in pod
    ``r // pod_racks`` and inter-pod traffic pays the ``pod_uplink``
    tier too (the oversubscribed fat-tree shape).
    """

    #: Human-readable builder name (``"leaf_spine_4to1"``, ...).
    name: str
    #: Nodes per leaf switch; 0 marks the flat single-switch fabric.
    nodes_per_rack: int
    #: The default rack-to-spine uplink (required unless flat).
    uplink: Uplink | None = None
    #: Heterogeneous per-rack overrides: ``rack_uplinks[r]`` replaces
    #: ``uplink`` for rack ``r``; stored sorted for determinism.
    rack_uplinks: tuple[tuple[int, Uplink], ...] = ()
    #: Racks per pod; 0 disables the third (pod/spine) level.
    pod_racks: int = 0
    #: The pod-to-core uplink tier (required when ``pod_racks > 0``).
    pod_uplink: Uplink | None = None
    _overrides: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.nodes_per_rack < 0:
            raise SimulationError("nodes_per_rack must be >= 0")
        if self.nodes_per_rack > 0 and self.uplink is None:
            raise SimulationError(
                f"fabric {self.name!r}: racked fabrics need an uplink"
            )
        if self.pod_racks < 0:
            raise SimulationError("pod_racks must be >= 0")
        if self.pod_racks > 0 and self.pod_uplink is None:
            raise SimulationError(
                f"fabric {self.name!r}: pod level needs a pod_uplink"
            )
        for rack, _uplink in self.rack_uplinks:
            if rack < 0:
                raise SimulationError(f"rack override for negative rack {rack}")
        object.__setattr__(
            self, "rack_uplinks", tuple(sorted(self.rack_uplinks))
        )
        self._overrides.update(dict(self.rack_uplinks))

    def is_flat(self) -> bool:
        """True when this spec describes the plain single-switch fabric."""
        return self.nodes_per_rack == 0

    def rack_of(self, node: int) -> int:
        """The rack hosting ``node`` (0 for every node when flat)."""
        if self.is_flat():
            return 0
        return node // self.nodes_per_rack

    def pod_of(self, rack: int) -> int:
        """The pod containing ``rack`` (0 for every rack without pods)."""
        if self.pod_racks <= 0:
            return 0
        return rack // self.pod_racks

    def uplink_of(self, rack: int) -> Uplink:
        """The effective uplink of ``rack`` (override or default)."""
        if self.uplink is None:
            raise SimulationError(f"flat fabric {self.name!r} has no uplinks")
        return self._overrides.get(rack, self.uplink)

    def racks_for(self, num_nodes: int) -> int:
        """Number of racks covering the first ``num_nodes`` nodes."""
        if self.is_flat() or num_nodes <= 0:
            return 1
        return (num_nodes + self.nodes_per_rack - 1) // self.nodes_per_rack

    def payload(self) -> dict:
        """Canonical JSON-ready form, folded into cluster fingerprints.

        Only *non-flat* specs are ever folded (see
        :meth:`ClusterSpec.fingerprint`), so the flat sentinel needs no
        canonical form of its own.
        """
        doc: dict = {
            "name": self.name,
            "nodes_per_rack": self.nodes_per_rack,
        }
        if self.uplink is not None:
            doc["uplink"] = self.uplink.payload()
        if self.rack_uplinks:
            doc["rack_uplinks"] = [
                [rack, uplink.payload()] for rack, uplink in self.rack_uplinks
            ]
        if self.pod_racks > 0:
            doc["pod_racks"] = self.pod_racks
            doc["pod_uplink"] = self.pod_uplink.payload()
        return doc

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        if self.is_flat():
            return f"{self.name}: flat single-switch fabric"
        parts = [f"{self.name}: {self.nodes_per_rack} nodes/rack"]
        up = self.uplink
        parts.append(
            f"uplink {up.count}x {1e-9 / up.byte_time if up.byte_time else 0:.0f} GB/s"
            f" +{up.latency * 1e6:.1f}us"
        )
        if self.rack_uplinks:
            parts.append(f"{len(self.rack_uplinks)} rack overrides")
        if self.pod_racks > 0:
            parts.append(f"pods of {self.pod_racks} racks")
        return ", ".join(parts)


#: The canonical flat fabric: explicit "no hierarchy" marker.
FLAT_FABRIC = FabricSpec(name="flat", nodes_per_rack=0)
