"""Sharded front end: ``SO_REUSEPORT`` workers behind one port.

A single :class:`~repro.service.server.HttpServer` process tops out at
one core.  ``repro serve --workers N`` forks N worker processes that
each bind their *own* listening socket to the same ``(host, port)`` with
``SO_REUSEPORT`` — the kernel then load-balances accepted connections
across workers with no userspace proxy in the data path.  Each worker
holds its own read-only :class:`~repro.service.artifact.ArtifactRegistry`
and answers queries exactly like the single-process server.

The :class:`ShardSupervisor` owns the fleet:

* it reserves the shared port up front with a bound (non-listening)
  placeholder socket, so an ephemeral ``port=0`` resolves once and every
  worker binds the same number;
* a monitor thread restarts workers that die, with exponential backoff
  when a worker keeps dying immediately (a crash loop must not spin a
  core);
* each worker also serves an ephemeral *admin* port; the supervisor
  scrapes those and merges the per-worker Prometheus text with
  :func:`~repro.service.metrics.merge_metrics_texts` into one fleet view,
  plus two supervisor-level series (``repro_shard_workers``,
  ``repro_shard_worker_restarts_total``);
* the supervisor's own admin HTTP endpoint (stdlib, thread-based — it is
  off the hot path) exposes the aggregate ``/metrics``, ``/healthz`` and
  ``/workers``, and forwards ``POST /reload`` to the fleet as SIGHUP.

Workers are started with the ``spawn`` context so they never inherit the
supervisor's threads or event loops; the worker entry point rebuilds the
registry from the artifact directory.
"""

from __future__ import annotations

import asyncio
import errno
import json
import logging
import multiprocessing
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import PortInUseError, ServiceError
from repro.service.artifact import ArtifactRegistry
from repro.service.metrics import merge_metrics_texts
from repro.service.server import HttpServer, SelectionService

_logger = logging.getLogger("repro.service.shard")

#: A worker that dies within this many seconds of starting counts as a
#: rapid death; consecutive rapid deaths back the restart loop off.
RAPID_DEATH_SECONDS = 1.0


def reuseport_socket(host: str, port: int) -> socket.socket:
    """A TCP socket bound to ``(host, port)`` with ``SO_REUSEPORT`` set.

    Every worker calls this with the same address; the kernel balances
    incoming connections across all sockets in the reuseport group.
    Raises :class:`~repro.errors.ServiceError` on platforms without
    ``SO_REUSEPORT`` and :class:`~repro.errors.PortInUseError` when the
    port is held by a socket outside the group.
    """
    if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - linux CI
        raise ServiceError(
            "sharded serving needs SO_REUSEPORT, which this platform "
            "does not support; run with --workers 1"
        )
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except OSError as error:
        sock.close()
        if error.errno == errno.EADDRINUSE:
            raise PortInUseError(
                f"cannot bind {host}:{port}: address already in use"
            ) from error
        raise
    return sock


# -- worker process ----------------------------------------------------------


async def _worker_async(
    service: SelectionService,
    host: str,
    port: int,
    worker_index: int,
    conn,
) -> None:
    sock = reuseport_socket(host, port)
    server = HttpServer(service, host, port, sock=sock)
    # The admin server answers supervisor scrapes on an ephemeral port,
    # off the shared reuseport group — a scrape must hit *this* worker,
    # never be balanced to a sibling.
    admin = HttpServer(service, host, 0)
    await server.start()
    await admin.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        loop.add_signal_handler(signal.SIGHUP, service.reload)
    except (NotImplementedError, RuntimeError, AttributeError):  # pragma: no cover
        pass
    conn.send({
        "worker": worker_index,
        "pid": os.getpid(),
        "port": server.port,
        "admin_port": admin.port,
    })
    conn.close()
    await server.serve_until_shutdown()
    await admin.drain()


def _worker_main(
    directory: str,
    host: str,
    port: int,
    cache_size: int,
    worker_index: int,
    conn,
) -> None:
    """Entry point of one worker process (spawn-safe, module-level)."""
    registry = ArtifactRegistry(directory)
    service = SelectionService(registry, cache_size=cache_size)
    asyncio.run(_worker_async(service, host, port, worker_index, conn))


# -- supervisor --------------------------------------------------------------


@dataclass
class WorkerHandle:
    """One live worker as the supervisor sees it."""

    index: int
    process: "multiprocessing.process.BaseProcess"
    pid: int
    port: int
    admin_port: int
    started_at: float = field(default_factory=time.monotonic)
    rapid_deaths: int = 0

    def summary(self) -> dict:
        return {
            "worker": self.index,
            "pid": self.pid,
            "admin_port": self.admin_port,
            "alive": self.process.is_alive(),
        }


class ShardSupervisor:
    """Spawn, monitor and aggregate a fleet of reuseport workers."""

    def __init__(
        self,
        directory: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        workers: int = 2,
        cache_size: int = 4096,
        start_timeout: float = 30.0,
    ):
        if workers < 1:
            raise ServiceError(f"need at least one worker, got {workers}")
        self.directory = str(directory)
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_size = cache_size
        self.start_timeout = start_timeout
        self.restarts = 0
        self._ctx = multiprocessing.get_context("spawn")
        self._handles: list[WorkerHandle] = []
        self._placeholder: socket.socket | None = None
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Reserve the port, spawn the fleet, start the monitor."""
        # Bound but never listening: reserves the address (resolving an
        # ephemeral port 0 exactly once) without joining the accept
        # group, so every worker binds the same resolved number even
        # across restarts.
        self._placeholder = reuseport_socket(self.host, self.port)
        self.port = self._placeholder.getsockname()[1]
        try:
            for index in range(self.workers):
                self._handles.append(self._spawn(index))
        except Exception:
            self.stop()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()

    def _spawn(self, index: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.directory, self.host, self.port,
                self.cache_size, index, child_conn,
            ),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.start_timeout):
            process.terminate()
            raise ServiceError(
                f"worker {index} did not report ready within "
                f"{self.start_timeout:.0f}s"
            )
        info = parent_conn.recv()
        parent_conn.close()
        _logger.info(
            "worker %d up: pid=%d port=%d admin=%d",
            index, info["pid"], info["port"], info["admin_port"],
        )
        return WorkerHandle(
            index=index,
            process=process,
            pid=info["pid"],
            port=info["port"],
            admin_port=info["admin_port"],
        )

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(0.2):
            with self._lock:
                handles = list(self._handles)
            for position, handle in enumerate(handles):
                if handle.process.is_alive() or self._stopping.is_set():
                    continue
                lifetime = time.monotonic() - handle.started_at
                rapid = handle.rapid_deaths + 1 if (
                    lifetime < RAPID_DEATH_SECONDS
                ) else 0
                if rapid:
                    # Crash loop: back off exponentially so a broken
                    # artifact directory cannot spin a core forever.
                    delay = min(0.5 * (2 ** (rapid - 1)), 5.0)
                    _logger.warning(
                        "worker %d died %.2fs after start (%d rapid "
                        "deaths); backing off %.1fs",
                        handle.index, lifetime, rapid, delay,
                    )
                    if self._stopping.wait(delay):
                        return
                else:
                    _logger.warning(
                        "worker %d (pid %d) died after %.1fs; restarting",
                        handle.index, handle.pid, lifetime,
                    )
                try:
                    replacement = self._spawn(handle.index)
                except Exception:
                    _logger.exception(
                        "failed to restart worker %d", handle.index
                    )
                    continue
                replacement.rapid_deaths = rapid
                with self._lock:
                    self._handles[position] = replacement
                    self.restarts += 1

    def stop(self) -> None:
        """SIGTERM the fleet, join, escalate to kill, release the port."""
        self._stopping.set()
        if self._monitor is not None and self._monitor.is_alive():
            self._monitor.join(timeout=10)
        with self._lock:
            handles = list(self._handles)
            self._handles = []
        for handle in handles:
            if handle.process.is_alive():
                try:
                    os.kill(handle.pid, signal.SIGTERM)
                except ProcessLookupError:  # pragma: no cover - racing exit
                    pass
        for handle in handles:
            handle.process.join(timeout=10)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(timeout=5)
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    # -- fleet operations --------------------------------------------------

    def handles(self) -> list[WorkerHandle]:
        with self._lock:
            return list(self._handles)

    def reload(self) -> dict:
        """Forward a hot reload (SIGHUP) to every live worker."""
        signalled = 0
        for handle in self.handles():
            if not handle.process.is_alive():
                continue
            try:
                os.kill(handle.pid, signal.SIGHUP)
                signalled += 1
            except ProcessLookupError:  # pragma: no cover - racing exit
                pass
        return {"reloaded": signalled, "workers": self.workers}

    def health(self) -> dict:
        handles = self.handles()
        alive = sum(1 for handle in handles if handle.process.is_alive())
        return {
            "status": "ok" if alive == self.workers else "degraded",
            "workers": self.workers,
            "alive": alive,
            "restarts": self.restarts,
            "port": self.port,
        }

    def _scrape(self, handle: WorkerHandle) -> str | None:
        url = f"http://{self.host}:{handle.admin_port}/metrics"
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, TimeoutError):
            _logger.warning(
                "failed to scrape worker %d at %s", handle.index, url
            )
            return None

    def metrics_text(self) -> str:
        """Fleet-wide Prometheus text: per-worker scrapes merged, plus
        the supervisor's own series."""
        texts = [
            text
            for handle in self.handles()
            if handle.process.is_alive()
            and (text := self._scrape(handle)) is not None
        ]
        merged = merge_metrics_texts(texts) if texts else ""
        alive = sum(
            1 for handle in self.handles() if handle.process.is_alive()
        )
        supervisor = (
            "# HELP repro_shard_workers Live worker processes in the "
            "reuseport group.\n"
            "# TYPE repro_shard_workers gauge\n"
            f"repro_shard_workers {float(alive)}\n"
            "# HELP repro_shard_worker_restarts_total Workers restarted "
            "by the supervisor after dying.\n"
            "# TYPE repro_shard_worker_restarts_total counter\n"
            f"repro_shard_worker_restarts_total {float(self.restarts)}\n"
        )
        return merged + supervisor


# -- supervisor admin endpoint ----------------------------------------------


class _AdminHandler(BaseHTTPRequestHandler):
    """Supervisor admin API: aggregate /metrics, /healthz, /workers,
    and POST /reload fan-out.  Stdlib and threaded — it is a control
    plane, never on the query hot path."""

    supervisor: ShardSupervisor  # set by _make_admin_server

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(
                200,
                self.supervisor.metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4",
            )
        elif path == "/healthz":
            self._send_json(200, self.supervisor.health())
        elif path == "/workers":
            self._send_json(
                200,
                {"workers": [
                    handle.summary() for handle in self.supervisor.handles()
                ]},
            )
        elif path == "/reload":
            self._send_json(405, {"error": {
                "code": "method_not_allowed",
                "message": "GET not allowed on /reload",
            }})
        else:
            self._send_json(404, {"error": {
                "code": "not_found", "message": f"no such endpoint: {path}",
            }})

    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        path = self.path.split("?", 1)[0]
        if path == "/reload":
            self._send_json(200, self.supervisor.reload())
        elif path in ("/metrics", "/healthz", "/workers"):
            self._send_json(405, {"error": {
                "code": "method_not_allowed",
                "message": f"POST not allowed on {path}",
            }})
        else:
            self._send_json(404, {"error": {
                "code": "not_found", "message": f"no such endpoint: {path}",
            }})

    def log_message(self, format, *args):  # noqa: A002 - stdlib API
        _logger.debug("admin: " + format, *args)


def _make_admin_server(
    supervisor: ShardSupervisor, host: str, port: int
) -> ThreadingHTTPServer:
    handler = type("BoundAdminHandler", (_AdminHandler,), {
        "supervisor": supervisor,
    })
    try:
        return ThreadingHTTPServer((host, port), handler)
    except OSError as error:
        if error.errno == errno.EADDRINUSE:
            raise PortInUseError(
                f"cannot bind admin endpoint {host}:{port}: "
                "address already in use"
            ) from error
        raise


def serve_sharded(
    directory: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 2,
    admin_port: int | None = None,
    cache_size: int = 4096,
) -> int:
    """Blocking entry point for ``repro serve --workers N``.

    SIGTERM/SIGINT stop the fleet (each worker drains); SIGHUP hot
    reloads every worker.  The admin endpoint defaults to ``port + 1``.
    """
    supervisor = ShardSupervisor(
        directory, host=host, port=port, workers=workers,
        cache_size=cache_size,
    )
    supervisor.start()
    admin = _make_admin_server(
        supervisor, host, port + 1 if admin_port is None else admin_port
    )
    admin_thread = threading.Thread(
        target=admin.serve_forever, name="repro-shard-admin", daemon=True
    )
    admin_thread.start()
    done = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: done.set())
    signal.signal(signal.SIGINT, lambda *_: done.set())
    signal.signal(signal.SIGHUP, lambda *_: supervisor.reload())
    print(
        f"repro selection service on http://{supervisor.host}:"
        f"{supervisor.port} ({workers} workers, SO_REUSEPORT); admin on "
        f"http://{host}:{admin.server_address[1]}; "
        "SIGTERM drains, SIGHUP reloads"
    )
    try:
        done.wait()
    finally:
        admin.shutdown()
        admin.server_close()
        supervisor.stop()
    print("fleet stopped; bye")
    return 0
