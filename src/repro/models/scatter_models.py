"""Models of the scatter algorithms.

``nbytes`` is the per-rank block size.  Scatter is the mirror image of
gather — the root's egress NIC must emit ``(P-1)·m`` bytes either way —
so the coefficient forms mirror :mod:`repro.models.gather_models`:

* linear: the root pushes ``P-1`` direct messages of ``m`` bytes through
  its single NIC, ``T = (P-1)·(α + m·β)``;
* binomial: the root sends whole-subtree blocks down the binomial tree.
  The critical path is ``ceil(log2 P)`` store-and-forward hops, while
  the payload — subtree blocks summing to ``(P-1)·m`` bytes — still
  leaves through the root's NIC, so ``T = ceil(log2 P)·α + (P-1)·m·β``.
"""

from __future__ import annotations

from math import ceil, log2

from repro.models.base import BcastModel, LinearCoefficients


class _ScatterModel(BcastModel):
    """Scatters are unsegmented: the segment size is ignored."""


class LinearScatterModel(_ScatterModel):
    """Linear scatter: P-1 direct root sends."""

    algorithm = "linear"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        peers = float(procs - 1)
        return LinearCoefficients(peers, peers * nbytes)


class BinomialScatterModel(_ScatterModel):
    """Binomial-tree scatter: log hops, root-NIC-bound payload."""

    algorithm = "binomial"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        stages = float(ceil(log2(procs)))
        return LinearCoefficients(stages, (procs - 1) * float(nbytes))


#: Derived scatter models keyed by the algorithm they describe.
DERIVED_SCATTER_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (LinearScatterModel, BinomialScatterModel)
}
