"""A uniform registry over all collective operations and their algorithms.

The selection modules and the CLI address algorithms as
``(operation, name)`` pairs; this module is the single lookup point.
"""

from __future__ import annotations

from typing import Union

from repro.collectives.allgather import ALLGATHER_ALGORITHMS, AllgatherAlgorithm
from repro.collectives.allreduce import ALLREDUCE_ALGORITHMS, AllreduceAlgorithm
from repro.collectives.alltoall import ALLTOALL_ALGORITHMS, AlltoallAlgorithm
from repro.collectives.barrier import BARRIER_ALGORITHMS, BarrierAlgorithm
from repro.collectives.bcast import BCAST_ALGORITHMS, BcastAlgorithm
from repro.collectives.gather import GATHER_ALGORITHMS, GatherAlgorithm
from repro.collectives.reduce import REDUCE_ALGORITHMS, ReduceAlgorithm
from repro.collectives.scatter import SCATTER_ALGORITHMS, ScatterAlgorithm
from repro.errors import SelectionError

#: Any catalogue entry type.
CollectiveAlgorithm = Union[
    AllgatherAlgorithm,
    AllreduceAlgorithm,
    AlltoallAlgorithm,
    BarrierAlgorithm,
    BcastAlgorithm,
    GatherAlgorithm,
    ReduceAlgorithm,
    ScatterAlgorithm,
]

_CATALOGUES: dict[str, dict[str, CollectiveAlgorithm]] = {
    "allgather": ALLGATHER_ALGORITHMS,
    "allreduce": ALLREDUCE_ALGORITHMS,
    "alltoall": ALLTOALL_ALGORITHMS,
    "barrier": BARRIER_ALGORITHMS,
    "bcast": BCAST_ALGORITHMS,
    "gather": GATHER_ALGORITHMS,
    "reduce": REDUCE_ALGORITHMS,
    "scatter": SCATTER_ALGORITHMS,
}


def register_operation(operation: str, catalogue: dict) -> None:
    """Register an additional operation's algorithm catalogue.

    Used by the extension collectives (reduce, scatter, allgather) so they
    appear in the CLI without the registry importing them eagerly.
    """
    if operation in _CATALOGUES:
        raise SelectionError(f"operation {operation!r} already registered")
    _CATALOGUES[operation] = catalogue


def operations() -> list[str]:
    """Names of all registered collective operations."""
    return sorted(_CATALOGUES)


def algorithm_names(operation: str) -> list[str]:
    """Algorithm names available for ``operation``."""
    return sorted(_catalogue(operation))


def get_algorithm(operation: str, name: str) -> CollectiveAlgorithm:
    """Look up one algorithm; raises :class:`SelectionError` if unknown."""
    catalogue = _catalogue(operation)
    try:
        return catalogue[name]
    except KeyError:
        known = ", ".join(sorted(catalogue))
        raise SelectionError(
            f"unknown {operation} algorithm {name!r}; known: {known}"
        ) from None


def _catalogue(operation: str) -> dict[str, CollectiveAlgorithm]:
    try:
        return _CATALOGUES[operation]
    except KeyError:
        known = ", ".join(sorted(_CATALOGUES))
        raise SelectionError(
            f"unknown collective operation {operation!r}; known: {known}"
        ) from None
