"""LogP-family point-to-point models (related work, paper §2.2).

The survey part of the paper lists the classical alternatives to Hockney:

* **LogP** (Culler et al.): latency ``L``, send/receive overheads
  ``o_s``/``o_r``, and gap ``g`` — the minimum interval between
  consecutive message transmissions, for *short* messages;
* **LogGP** (Alexandrov et al.): adds a per-byte gap ``G`` for long
  messages;
* **PLogP** (Kielmann et al.): makes the overheads and gap functions of
  the message size.

They are implemented here as point-to-point comparators (with measurement
procedures in :mod:`repro.estimation.logp_params`) to reproduce the
related-work context; the broadcast models of the paper itself are built on
Hockney.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class LogPParams:
    """LogP: ``T_p2p = o_s + L + o_r`` with rate cap ``1/g``."""

    latency: float
    send_overhead: float
    recv_overhead: float
    gap: float

    def p2p_time(self, nbytes: int = 0) -> float:
        """End-to-end time of one (short) message; size is ignored."""
        del nbytes
        return self.send_overhead + self.latency + self.recv_overhead

    def issue_interval(self) -> float:
        """Minimum spacing between consecutive sends from one process."""
        return max(self.gap, self.send_overhead)

    def linear_bcast_time(self, procs: int) -> float:
        """LogP estimate of the non-blocking linear broadcast.

        The root issues ``P-1`` sends spaced by the gap; the last message
        then needs ``L + o_r`` to land — the LogP view of what the paper's
        γ(P) measures.
        """
        if procs < 2:
            return 0.0
        return (
            self.send_overhead
            + (procs - 2) * self.issue_interval()
            + self.latency
            + self.recv_overhead
        )


@dataclass(frozen=True)
class LogGPParams:
    """LogGP: LogP plus a per-byte gap ``G`` for long messages."""

    latency: float
    send_overhead: float
    recv_overhead: float
    gap: float
    gap_per_byte: float

    def p2p_time(self, nbytes: int) -> float:
        """``o_s + (m-1)G + L + o_r`` (the classical LogGP long-message form)."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        stretched = max(nbytes - 1, 0) * self.gap_per_byte
        return self.send_overhead + stretched + self.latency + self.recv_overhead

    def to_hockney(self):
        """The Hockney parameters this LogGP model degenerates to."""
        from repro.models.hockney import HockneyParams

        return HockneyParams(
            alpha=self.send_overhead + self.latency + self.recv_overhead,
            beta=self.gap_per_byte,
        )


@dataclass(frozen=True)
class PLogPParams:
    """PLogP: size-dependent overheads and gap.

    ``os_fn``, ``or_fn`` and ``g_fn`` map message size to seconds; ``L`` is
    the only scalar, as Kielmann et al. define it.
    """

    latency: float
    os_fn: Callable[[int], float]
    or_fn: Callable[[int], float]
    g_fn: Callable[[int], float]

    def p2p_time(self, nbytes: int) -> float:
        """Kielmann's end-to-end time: ``L + g(m)`` with ``g >= os, or``."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        return self.latency + self.g_fn(nbytes)

    def saturation_rate(self, nbytes: int) -> float:
        """Messages per second a sender can sustain at this size."""
        gap = self.g_fn(nbytes)
        if gap <= 0:
            raise ValueError("gap must be positive")
        return 1.0 / gap
