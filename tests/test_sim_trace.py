"""Tests for the event tracer."""

import json

import pytest

from repro.sim.trace import NULL_TRACER, TraceEvent, Tracer


class TestTracer:
    def test_records_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.record(2.0, "recv_complete", 1, 0, 7, 100)
        assert len(tracer) == 2
        assert [e.kind for e in tracer] == ["send_post", "recv_complete"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        assert len(tracer) == 0

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled

    def test_of_kind_filters(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.record(2.0, "send_post", 0, 2, 7, 100)
        tracer.record(3.0, "recv_complete", 1, 0, 7, 100)
        assert len(tracer.of_kind("send_post")) == 2
        assert len(tracer.of_kind("recv_post")) == 0

    def test_for_rank_filters(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.record(2.0, "send_post", 3, 1, 7, 100)
        assert [e.rank for e in tracer.for_rank(3)] == [3]

    def test_total_bytes_counts_only_send_posts(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.record(2.0, "recv_complete", 1, 0, 7, 100)
        tracer.record(3.0, "send_post", 1, 0, 7, 50)
        assert tracer.total_bytes_sent() == 150

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.clear()
        assert len(tracer) == 0

    def test_empty_tracer_is_truthy(self):
        """Guards against the ``tracer or default`` footgun."""
        assert bool(Tracer())
        assert bool(Tracer(enabled=False))

    def test_events_are_immutable_records(self):
        event = TraceEvent(1.0, "send_post", 0, 1, 2, 3)
        try:
            event.time = 5.0
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestChromeTraceExport:
    def make_tracer(self):
        tracer = Tracer()
        tracer.record(1e-6, "send_post", 0, 1, 7, 100)
        tracer.record(2e-6, "recv_post", 1, 0, 7, -1)
        tracer.record(4e-6, "send_complete", 0, 1, 7, 100)
        tracer.record(5e-6, "recv_complete", 1, 0, 7, 100)
        return tracer

    def durations(self, tracer):
        events = json.loads(tracer.to_chrome_json())["traceEvents"]
        return [e for e in events if e["ph"] == "X"]

    def test_post_complete_pairs_become_duration_events(self):
        spans = self.durations(self.make_tracer())
        assert len(spans) == 2
        send = next(e for e in spans if e["cat"] == "send")
        assert send["tid"] == 0
        assert send["ts"] == pytest.approx(1.0)  # microseconds
        assert send["dur"] == pytest.approx(3.0)
        recv = next(e for e in spans if e["cat"] == "recv")
        assert recv["tid"] == 1 and recv["dur"] == pytest.approx(3.0)

    def test_recv_size_taken_from_completion(self):
        recv = next(
            e for e in self.durations(self.make_tracer())
            if e["cat"] == "recv"
        )
        assert recv["args"]["nbytes"] == 100  # not the posted -1

    def test_thread_metadata_names_every_rank(self):
        events = json.loads(self.make_tracer().to_chrome_json())["traceEvents"]
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {0: "rank 0", 1: "rank 1"}

    def test_unmatched_post_is_zero_duration(self):
        tracer = Tracer()
        tracer.record(3e-6, "send_post", 2, 5, 9, 64)
        [span] = self.durations(tracer)
        assert span["dur"] == 0.0 and span["tid"] == 2

    def test_unmatched_complete_is_instant_event(self):
        tracer = Tracer()
        tracer.record(3e-6, "recv_complete", 4, 0, 9, 64)
        events = json.loads(tracer.to_chrome_json())["traceEvents"]
        [instant] = [e for e in events if e["ph"] == "i"]
        assert instant["tid"] == 4

    def test_document_shape_and_save(self, tmp_path):
        tracer = self.make_tracer()
        document = json.loads(tracer.to_chrome_json())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        path = tmp_path / "trace.json"
        tracer.save_chrome_trace(path)
        assert json.loads(path.read_text()) == document

    def test_real_simulation_trace_is_consistent(self):
        """A real broadcast's trace exports with conserved byte counts."""
        from repro.clusters import MINICLUSTER
        from repro.measure import time_bcast
        from repro.units import KiB

        tracer = Tracer()
        time_bcast(MINICLUSTER, "binomial", 8, 24 * KiB, 8 * KiB,
                   tracer=tracer)
        spans = self.durations(tracer)
        assert all(e["dur"] >= 0 for e in spans)
        sends = [e for e in spans if e["cat"] == "send"]
        assert sum(e["args"]["nbytes"] for e in sends) == (
            tracer.total_bytes_sent()
        )
        # 7 receiving ranks, 3 segments each: every transfer has a bar.
        assert len(sends) == 7 * 3
