"""The six Open MPI broadcast algorithms, re-implemented on the simulator.

Each algorithm is a generator function with signature
``algorithm(comm, root, nbytes, segment_size)`` executed by every rank of
the communicator.  The implementations mirror Open MPI 3.1's
``coll_base_bcast.c``:

* ``bcast_linear`` — ``bcast_intra_basic_linear``: the root posts one
  non-blocking send of the whole message per peer and waits for all of
  them; never segmented.
* ``bcast_chain`` / ``bcast_k_chain`` / ``bcast_binary`` /
  ``bcast_binomial`` — ``bcast_intra_generic`` over the chain (1 or K
  chains), balanced-binary and binomial topologies: the root pushes each
  segment to all children with non-blocking sends (the *non-blocking linear
  broadcast* whose cost the paper models as ``γ(P)·(α+βm)``), interior
  nodes run a double-buffered receive/forward pipeline.
* ``bcast_split_binary`` — ``bcast_intra_split_bintree``: the message is
  split in two halves pipelined down the left and right subtrees of the
  binary tree, then mirror nodes of the two subtrees exchange halves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mpi.communicator import Communicator
from repro.mpi.segmentation import plan_segments
from repro.sim.engine import SimGen
from repro.topology import (
    Tree,
    build_binary_tree,
    build_binomial_tree,
    build_chain_tree,
    build_hierarchy_tree,
    comm_group_of,
)

#: Base tag for broadcast traffic; segment ``i`` uses ``TAG_BCAST + i``.
TAG_BCAST = 1_000
#: Tag for the split-binary exchange phase.
TAG_BCAST_XCHG = 900_000

#: Open MPI's default number of chains for the chain ("K-chain") algorithm.
DEFAULT_CHAIN_FANOUT = 4


def bcast_linear(
    comm: Communicator, root: int, nbytes: int, segment_size: int = 0
) -> SimGen:
    """Linear-tree broadcast with non-blocking sends, never segmented.

    Port of ``ompi_coll_base_bcast_intra_basic_linear``: the root isends the
    full message to every other rank and waits for all sends; every other
    rank receives once.  ``segment_size`` is accepted for interface
    uniformity and ignored, like Open MPI ignores it for this algorithm.
    """
    del segment_size  # the linear algorithm is never segmented
    if comm.size == 1 or nbytes == 0:
        return
    if comm.rank == root:
        requests = []
        for peer in range(comm.size):
            if peer == root:
                continue
            request = yield from comm.isend(peer, nbytes, tag=TAG_BCAST)
            requests.append(request)
        yield from comm.waitall(requests)
    else:
        yield from comm.recv(root, tag=TAG_BCAST)


def _generic_tree_bcast(
    comm: Communicator, tree: Tree, nbytes: int, segment_size: int
) -> SimGen:
    """Port of ``ompi_coll_base_bcast_intra_generic``.

    Root: for each segment, non-blocking sends to all children, then wait
    for that round (the per-stage *non-blocking linear broadcast*).
    Interior: double-buffered pipeline — post the receive for segment
    ``i+1``, wait for segment ``i``, forward it to all children, wait for
    those sends.  Leaf: receive the segments in order.
    """
    plan = plan_segments(nbytes, segment_size)
    if plan.num_segments == 0:  # m = 0 is a no-op (see plan_segments)
        return
    rank = comm.rank
    children = tree.children[rank]
    parent = tree.parent[rank]

    if rank == tree.root:
        for index, size in enumerate(plan.sizes):
            requests = []
            for child in children:
                request = yield from comm.isend(child, size, tag=TAG_BCAST + index)
                requests.append(request)
            yield from comm.waitall(requests)
        return

    if children:
        previous = yield from comm.irecv(parent, tag=TAG_BCAST + 0)
        for index in range(1, plan.num_segments):
            upcoming = yield from comm.irecv(parent, tag=TAG_BCAST + index)
            yield from comm.wait(previous)
            requests = []
            for child in children:
                request = yield from comm.isend(
                    child, plan.sizes[index - 1], tag=TAG_BCAST + index - 1
                )
                requests.append(request)
            yield from comm.waitall(requests)
            previous = upcoming
        yield from comm.wait(previous)
        last = plan.num_segments - 1
        requests = []
        for child in children:
            request = yield from comm.isend(
                child, plan.sizes[last], tag=TAG_BCAST + last
            )
            requests.append(request)
        yield from comm.waitall(requests)
        return

    # Leaf: double-buffered receives, as in Open MPI.
    previous = yield from comm.irecv(parent, tag=TAG_BCAST + 0)
    for index in range(1, plan.num_segments):
        upcoming = yield from comm.irecv(parent, tag=TAG_BCAST + index)
        yield from comm.wait(previous)
        previous = upcoming
    yield from comm.wait(previous)


def bcast_chain(
    comm: Communicator, root: int, nbytes: int, segment_size: int
) -> SimGen:
    """Chain (pipeline) broadcast: one chain through all ranks, segmented.

    Port of ``ompi_coll_base_bcast_intra_pipeline``.
    """
    if comm.size == 1 or nbytes == 0:
        return
    tree = build_chain_tree(comm.size, root, chains=1)
    yield from _generic_tree_bcast(comm, tree, nbytes, segment_size)


def bcast_k_chain(
    comm: Communicator,
    root: int,
    nbytes: int,
    segment_size: int,
    chains: int = DEFAULT_CHAIN_FANOUT,
) -> SimGen:
    """K-chain broadcast: ``chains`` parallel pipelines off the root.

    Port of ``ompi_coll_base_bcast_intra_chain`` with Open MPI's default
    fanout of 4 chains.
    """
    if comm.size == 1 or nbytes == 0:
        return
    tree = build_chain_tree(comm.size, root, chains=chains)
    yield from _generic_tree_bcast(comm, tree, nbytes, segment_size)


def bcast_binary(
    comm: Communicator, root: int, nbytes: int, segment_size: int
) -> SimGen:
    """Balanced-binary-tree broadcast, segmented.

    Port of ``ompi_coll_base_bcast_intra_bintree``.
    """
    if comm.size == 1 or nbytes == 0:
        return
    tree = build_binary_tree(comm.size, root)
    yield from _generic_tree_bcast(comm, tree, nbytes, segment_size)


def bcast_binomial(
    comm: Communicator, root: int, nbytes: int, segment_size: int
) -> SimGen:
    """Binomial-tree broadcast, segmented (paper §3.1).

    Port of ``ompi_coll_base_bcast_intra_binomial``.
    """
    if comm.size == 1 or nbytes == 0:
        return
    tree = build_binomial_tree(comm.size, root)
    yield from _generic_tree_bcast(comm, tree, nbytes, segment_size)


def bcast_hierarchical(
    comm: Communicator, root: int, nbytes: int, segment_size: int
) -> SimGen:
    """Topology-aware broadcast: inter-rack binomial + intra-rack linear.

    One leader per rack receives the message over a binomial tree among
    leaders, then fans it out linearly to its rack-local members.  Each
    segment crosses every rack's uplink exactly once, which is what wins
    on oversubscribed fabrics where the flat trees cross the same uplink
    several times (Barchet-Estefanel & Mounié's subnet decomposition).
    On flat fabrics ranks group by node instead, so the algorithm is
    runnable — just rarely optimal — everywhere.
    """
    if comm.size == 1 or nbytes == 0:
        return
    tree = build_hierarchy_tree(comm_group_of(comm), root)
    yield from _generic_tree_bcast(comm, tree, nbytes, segment_size)


def _split_halves(nbytes: int, segment_size: int) -> tuple[int, int]:
    """Sizes of the two message halves, aligned to segment boundaries.

    The left subtree's half gets the extra segment when the segment count
    is odd, as in ``bcast_intra_split_bintree``.
    """
    plan = plan_segments(nbytes, segment_size)
    left_segments = (plan.num_segments + 1) // 2
    left = sum(plan.sizes[:left_segments])
    return left, nbytes - left


def _subtree_members(tree: Tree, subtree_root: int) -> list[int]:
    """Ranks of the subtree rooted at ``subtree_root``, in BFS order."""
    members = [subtree_root]
    frontier = [subtree_root]
    while frontier:
        nxt: list[int] = []
        for rank in frontier:
            nxt.extend(tree.children[rank])
        members.extend(nxt)
        frontier = nxt
    return members


def bcast_split_binary(
    comm: Communicator, root: int, nbytes: int, segment_size: int
) -> SimGen:
    """Split-binary-tree broadcast, segmented.

    Port of ``ompi_coll_base_bcast_intra_split_bintree``: phase one pipelines
    the first half of the message down the root's left subtree and the second
    half down the right subtree; phase two pairs each node of the left
    subtree with its mirror node in the right subtree for a half exchange
    (this is the "large number of independent pairs of processes" whose
    parallelism the paper credits for the algorithm's low effective α/β).
    When the two subtrees differ in size, surplus nodes wrap around to
    mirrors that serve at most one extra partner, keeping the exchange
    parallel for every communicator size.

    Falls back to the linear algorithm when the communicator or the message
    cannot be split (size < 3 or fewer than two segments), as Open MPI does.
    """
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    plan = plan_segments(nbytes, segment_size)
    if size < 3 or plan.num_segments < 2:
        yield from bcast_linear(comm, root, nbytes)
        return

    tree = build_binary_tree(size, root)
    left_root, right_root = tree.children[root][0], tree.children[root][1]
    left_half, right_half = _split_halves(nbytes, segment_size)
    left_members = _subtree_members(tree, left_root)
    right_members = _subtree_members(tree, right_root)
    # Pair the i-th node of each subtree (BFS order puts mirrors together);
    # when the subtrees are unbalanced (any size that is not 2^k - 1), the
    # surplus nodes of the larger subtree wrap around, so a node of the
    # smaller subtree serves at most ceil(larger/smaller) partners and the
    # exchange stays parallel.
    pair_of: dict[int, int] = {}
    customers: dict[int, list[int]] = {}
    for i, left_rank in enumerate(left_members):
        partner = right_members[i % len(right_members)]
        pair_of[left_rank] = partner
        customers.setdefault(partner, []).append(left_rank)
    for j, right_rank in enumerate(right_members):
        partner = left_members[j % len(left_members)]
        pair_of[right_rank] = partner
        customers.setdefault(partner, []).append(right_rank)

    rank = comm.rank
    left_set = set(left_members)
    my_half = 0 if rank in left_set else 1
    halves = (left_half, right_half)

    if rank == root:
        # Phase 1: alternate segment sends into the two subtrees.
        left_plan = plan_segments(left_half, segment_size)
        right_plan = plan_segments(right_half, segment_size)
        rounds = max(left_plan.num_segments, right_plan.num_segments)
        for index in range(rounds):
            requests = []
            if index < left_plan.num_segments:
                request = yield from comm.isend(
                    left_root, left_plan.sizes[index], tag=TAG_BCAST + index
                )
                requests.append(request)
            if index < right_plan.num_segments:
                request = yield from comm.isend(
                    right_root, right_plan.sizes[index], tag=TAG_BCAST + index
                )
                requests.append(request)
            yield from comm.waitall(requests)
        # The root holds both halves; it takes no part in the exchange.
        return

    # Phase 1: receive own half down the subtree (generic pipeline shape).
    half_plan = plan_segments(halves[my_half], segment_size)
    children = tree.children[rank]
    parent = tree.parent[rank]
    previous = yield from comm.irecv(parent, tag=TAG_BCAST + 0)
    for index in range(1, half_plan.num_segments):
        upcoming = yield from comm.irecv(parent, tag=TAG_BCAST + index)
        yield from comm.wait(previous)
        requests = []
        for child in children:
            request = yield from comm.isend(
                child, half_plan.sizes[index - 1], tag=TAG_BCAST + index - 1
            )
            requests.append(request)
        yield from comm.waitall(requests)
        previous = upcoming
    yield from comm.wait(previous)
    last = half_plan.num_segments - 1
    requests = []
    for child in children:
        request = yield from comm.isend(
            child, half_plan.sizes[last], tag=TAG_BCAST + last
        )
        requests.append(request)
    yield from comm.waitall(requests)

    # Phase 2: exchange halves with mirror node(s) of the other subtree.
    partner = pair_of[rank]
    requests = [(yield from comm.irecv(partner, tag=TAG_BCAST_XCHG))]
    for customer in customers.get(rank, ()):
        request = yield from comm.isend(
            customer, halves[my_half], tag=TAG_BCAST_XCHG
        )
        requests.append(request)
    yield from comm.waitall(requests)


def bcast_scatter_allgather(
    comm: Communicator, root: int, nbytes: int, segment_size: int = 0
) -> SimGen:
    """Scatter-allgather (Van de Geijn) broadcast — an *extension* algorithm.

    The long-message broadcast of Chan et al. / MPICH, absent from Open MPI
    3.1's tuned set (and hence from the paper's six): a binomial scatter of
    ``P`` blocks followed by a ring allgather.  Bandwidth-optimal — every
    rank sends and receives ~``2 m (P-1)/P`` bytes — at the price of
    ``P - 1`` latency-bound ring steps.  ``segment_size`` is ignored: the
    block structure already bounds message sizes.

    Included to show the selection framework absorbing a new algorithm
    (see ``benchmarks/test_extension_seventh_algorithm.py``); not part of
    :data:`PAPER_BCAST_ALGORITHMS`.
    """
    del segment_size
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    if size == 2 or nbytes < size:
        # Degenerate block structure: fall back to the linear algorithm.
        yield from bcast_linear(comm, root, nbytes)
        return

    # Block b goes to the rank with virtual rank b (root holds block 0...).
    base, extra = divmod(nbytes, size)
    block_of = [base + (1 if index < extra else 0) for index in range(size)]
    tree = build_binomial_tree(size, root)

    def vrank(rank: int) -> int:
        return (rank - root) % size

    def subtree_bytes(rank: int) -> int:
        total = block_of[vrank(rank)]
        for child in tree.children[rank]:
            total += subtree_bytes(child)
        return total

    rank = comm.rank
    # Phase 1: binomial scatter of the blocks.
    if rank != root:
        yield from comm.recv(tree.parent[rank], tag=TAG_BCAST)
    requests = []
    for child in tree.children[rank]:
        request = yield from comm.isend(
            child, subtree_bytes(child), tag=TAG_BCAST
        )
        requests.append(request)
    if requests:
        yield from comm.waitall(requests)

    # Phase 2: ring allgather of the blocks.
    right = (rank + 1) % size
    left = (rank - 1 + size) % size
    for step in range(size - 1):
        send_block = block_of[(vrank(rank) - step) % size]
        yield from comm.sendrecv(
            dest=right,
            nbytes=send_block,
            source=left,
            sendtag=TAG_BCAST_XCHG + 1 + step,
            recvtag=TAG_BCAST_XCHG + 1 + step,
        )


#: Signature shared by all broadcast algorithm callables.
BcastFn = Callable[[Communicator, int, int, int], SimGen]


@dataclass(frozen=True)
class BcastAlgorithm:
    """Catalogue entry for one broadcast algorithm."""

    #: Stable identifier used in tables, CLIs and the selection modules.
    name: str
    #: Human-readable name as the paper's tables print it.
    display_name: str
    #: Whether the algorithm pipelines fixed-size segments.
    segmented: bool
    #: The per-rank generator implementing the algorithm.
    func: BcastFn

    def __call__(
        self, comm: Communicator, root: int, nbytes: int, segment_size: int
    ) -> SimGen:
        return self.func(comm, root, nbytes, segment_size)


#: The paper's six Open MPI broadcast algorithms, in the paper's order.
PAPER_BCAST_ALGORITHMS: tuple[str, ...] = (
    "linear",
    "k_chain",
    "chain",
    "split_binary",
    "binary",
    "binomial",
)

#: All broadcast algorithms, keyed by stable name: the paper's six plus the
#: scatter-allgather extension.
BCAST_ALGORITHMS: dict[str, BcastAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        BcastAlgorithm("linear", "Linear tree", False, bcast_linear),
        BcastAlgorithm("chain", "Chain tree", True, bcast_chain),
        BcastAlgorithm("k_chain", "K-Chain tree", True, bcast_k_chain),
        BcastAlgorithm("binary", "Binary tree", True, bcast_binary),
        BcastAlgorithm("split_binary", "Split-binary tree", True, bcast_split_binary),
        BcastAlgorithm("binomial", "Binomial tree", True, bcast_binomial),
        BcastAlgorithm(
            "scatter_allgather",
            "Scatter-allgather (Van de Geijn)",
            False,
            bcast_scatter_allgather,
        ),
        # Topology-aware extension; deliberately NOT in
        # PAPER_BCAST_ALGORITHMS, so flat-fabric defaults are unchanged.
        BcastAlgorithm(
            "hierarchical",
            "Hierarchical (rack leaders)",
            True,
            bcast_hierarchical,
        ),
    )
}
