"""Selection primitives and the measured oracle (ground truth).

A :class:`Selection` names an algorithm plus the segment size it should run
with — the same pair Open MPI's decision functions produce.  The
:class:`MeasuredOracle` runs every candidate algorithm on the simulated
cluster and returns the empirically best one; Table 3's "Best" column and
the green curve of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS
from repro.errors import SelectionError
from repro.estimation.statistics import adaptive_measure
from repro.measure import time_bcast
from repro.units import KiB


@dataclass(frozen=True)
class Selection:
    """An algorithm choice: name plus segment size (0 = unsegmented).

    ``operation`` names the collective the choice belongs to (``"bcast"``
    unless the future-work reduce selection produced it); the algorithm
    name is validated against that operation's catalogue.
    """

    algorithm: str
    segment_size: int
    operation: str = "bcast"

    def __post_init__(self) -> None:
        from repro.collectives.registry import algorithm_names

        known = algorithm_names(self.operation)
        if self.algorithm not in known:
            raise SelectionError(
                f"unknown {self.operation} algorithm {self.algorithm!r}; "
                f"known: {', '.join(known)}"
            )
        if self.segment_size < 0:
            raise SelectionError(f"negative segment size {self.segment_size}")

    def describe(self) -> str:
        if self.segment_size:
            return f"{self.algorithm} ({self.segment_size // 1024} KB segments)"
        return f"{self.algorithm} (no segmentation)"


class MeasuredOracle:
    """Exhaustive measurement: the empirically optimal algorithm.

    Results are memoised per ``(procs, nbytes, algorithm, segment_size)``
    so Table 3 and Fig. 5 share measurements.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        algorithms: Sequence[str] | None = None,
        segment_size: int = 8 * KiB,
        precision: float = 0.025,
        max_reps: int = 12,
        seed: int = 0,
    ):
        self.spec = spec
        # Default to the paper's six algorithms so Table 3 / Fig. 5 stay
        # faithful; pass an explicit list to include extension algorithms.
        self.algorithms = (
            sorted(PAPER_BCAST_ALGORITHMS)
            if algorithms is None
            else list(algorithms)
        )
        self.segment_size = segment_size
        self.precision = precision
        self.max_reps = max_reps
        self.seed = seed
        self._cache: dict[tuple[int, int, str, int], float] = {}

    def measure(
        self,
        procs: int,
        nbytes: int,
        algorithm: str,
        segment_size: int | None = None,
    ) -> float:
        """Mean measured time of one algorithm (memoised)."""
        seg = self.segment_size if segment_size is None else segment_size
        key = (procs, nbytes, algorithm, seg)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        def measure_once(rep_seed: int) -> float:
            return time_bcast(
                self.spec, algorithm, procs, nbytes, seg, seed=rep_seed
            )

        stats = adaptive_measure(
            measure_once,
            precision=self.precision,
            max_reps=self.max_reps,
            seed=self.seed + hash(key) % 1_000_000,
        )
        self._cache[key] = stats.mean
        return stats.mean

    def measure_selection(self, procs: int, nbytes: int, choice: Selection) -> float:
        """Measured time of an arbitrary (algorithm, segment size) choice."""
        return self.measure(procs, nbytes, choice.algorithm, choice.segment_size)

    def sweep(self, procs: int, nbytes: int) -> dict[str, float]:
        """Measured time of every candidate algorithm at ``(procs, nbytes)``."""
        return {
            name: self.measure(procs, nbytes, name) for name in self.algorithms
        }

    def best(self, procs: int, nbytes: int) -> tuple[Selection, float]:
        """The empirically best algorithm and its measured time."""
        times = self.sweep(procs, nbytes)
        winner = min(times, key=times.get)
        return Selection(winner, self.segment_size), times[winner]

    def degradation(
        self, procs: int, nbytes: int, choice: Selection
    ) -> float:
        """Relative slowdown of ``choice`` versus the best, in percent.

        This is the figure Table 3 prints in braces.
        """
        _, best_time = self.best(procs, nbytes)
        chosen_time = self.measure_selection(procs, nbytes, choice)
        if best_time <= 0:
            raise SelectionError("best time measured as non-positive")
        return 100.0 * (chosen_time - best_time) / best_time
