"""Tests for the bench harness: runner, tables, figures."""

import pytest

from repro.bench.figures import ascii_plot, fig1_series, fig5_series, write_csv
from repro.bench.runner import SelectionRow, selection_comparison
from repro.bench.tables import format_table1, format_table2, format_table3
from repro.clusters import MINICLUSTER
from repro.estimation.gamma import estimate_gamma
from repro.estimation.p2p import estimate_hockney_p2p
from repro.selection.oracle import MeasuredOracle, Selection
from repro.units import KiB


@pytest.fixture(scope="module")
def rows(mini_platform_module):
    return selection_comparison(
        MINICLUSTER,
        mini_platform_module,
        procs=10,
        sizes=[8 * KiB, 64 * KiB, 512 * KiB],
        max_reps=3,
    )


@pytest.fixture(scope="module")
def mini_platform_module():
    from repro.estimation.workflow import calibrate_platform
    from repro.units import MiB, log_spaced_sizes

    return calibrate_platform(
        MINICLUSTER,
        procs=8,
        sizes=log_spaced_sizes(8 * KiB, 1 * MiB, 5),
        gamma_max_procs=5,
        max_reps=3,
    ).platform


class TestSelectionComparison:
    def test_one_row_per_size(self, rows):
        assert [row.nbytes for row in rows] == [8 * KiB, 64 * KiB, 512 * KiB]

    def test_best_time_is_lower_bound(self, rows):
        for row in rows:
            assert row.best_time <= row.model_time + 1e-12
            assert row.best_time <= row.ompi_time + 1e-12

    def test_degradations_non_negative(self, rows):
        for row in rows:
            assert row.model_degradation >= -1e-9
            assert row.ompi_degradation >= -1e-9

    def test_shared_oracle_reuses_measurements(self, mini_platform_module):
        oracle = MeasuredOracle(MINICLUSTER, max_reps=3)
        selection_comparison(
            MINICLUSTER, mini_platform_module, 8, [8 * KiB], oracle=oracle
        )
        cached = len(oracle._cache)
        selection_comparison(
            MINICLUSTER, mini_platform_module, 8, [8 * KiB], oracle=oracle
        )
        assert len(oracle._cache) == cached  # nothing re-measured


class TestTables:
    def test_table1_layout(self):
        estimates = {
            "grisou": estimate_gamma(MINICLUSTER, max_procs=4),
            "gros": estimate_gamma(MINICLUSTER, max_procs=4, seed=1),
        }
        text = format_table1(estimates)
        assert "Table 1" in text
        assert "grisou" in text and "gros" in text
        assert "3" in text and "4" in text

    def test_table2_layout(self, mini_platform_module):
        from repro.estimation.alphabeta import estimate_alpha_beta
        from repro.models.derived import ChainTreeModel

        estimate = estimate_alpha_beta(
            MINICLUSTER,
            ChainTreeModel(mini_platform_module.gamma),
            procs=6,
            sizes=[8 * KiB, 64 * KiB],
        )
        text = format_table2({"mini": {"chain": estimate}})
        assert "alpha" in text and "beta" in text
        assert "chain" in text

    def test_table3_contains_percentages(self, rows):
        text = format_table3(rows, title="P=10, MPI_Bcast, minicluster")
        assert "P=10" in text
        assert "(" in text and ")" in text
        assert "8 KB" in text and "512 KB" in text


class TestFigures:
    def test_fig5_series_has_three_curves(self, rows):
        series = fig5_series(rows)
        assert set(series) == {"ompi", "model_based", "best"}
        for curve in series.values():
            assert len(curve) == len(rows)

    def test_fig1_series_model_vs_measured(self):
        p2p = estimate_hockney_p2p(
            MINICLUSTER, sizes=[8 * KiB, 64 * KiB, 256 * KiB]
        )
        series = fig1_series(
            MINICLUSTER,
            p2p.params,
            procs=8,
            sizes=[8 * KiB, 64 * KiB],
            algorithms=("binomial",),
        )
        assert set(series) == {"binomial_model", "binomial_measured"}
        assert all(v > 0 for v in series["binomial_model"].values())

    def test_write_csv(self, rows, tmp_path):
        series = fig5_series(rows)
        path = tmp_path / "fig5.csv"
        write_csv(path, series)
        content = path.read_text().splitlines()
        assert content[0] == "message_bytes,ompi,model_based,best"
        assert len(content) == 1 + len(rows)

    def test_ascii_plot_renders(self, rows):
        text = ascii_plot(fig5_series(rows), title="panel")
        assert "panel" in text
        assert "a=ompi" in text

    def test_ascii_plot_empty(self):
        assert "(no data)" in ascii_plot({"x": {}})


class TestRunnerDefaults:
    def test_selection_comparison_creates_its_own_oracle(self, mini_platform_module):
        rows = selection_comparison(
            MINICLUSTER, mini_platform_module, 6, [8 * KiB], max_reps=3
        )
        assert len(rows) == 1
        assert rows[0].best_time > 0

    def test_row_degradation_consistency(self, mini_platform_module):
        rows = selection_comparison(
            MINICLUSTER, mini_platform_module, 8, [64 * KiB], max_reps=3
        )
        row = rows[0]
        assert row.model_degradation == pytest.approx(
            100.0 * (row.model_time - row.best_time) / row.best_time
        )
        assert row.ompi_degradation == pytest.approx(
            100.0 * (row.ompi_time - row.best_time) / row.best_time
        )

    def test_best_selection_is_among_paper_algorithms(self, mini_platform_module):
        from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS

        rows = selection_comparison(
            MINICLUSTER, mini_platform_module, 8, [8 * KiB], max_reps=3
        )
        assert rows[0].best.algorithm in PAPER_BCAST_ALGORITHMS
