"""Implementation-derived analytical models (paper §3, contribution 1).

Every model below is read off the *code* of the corresponding algorithm in
:mod:`repro.collectives.bcast` (itself a port of Open MPI's
``coll_base_bcast.c``), not from the algorithm's textbook definition.  The
recurring building block is the per-stage **non-blocking linear broadcast**:
an interior node with ``k`` children pushes one segment to all of them with
non-blocking sends, which costs ``γ(k+1)·τ`` where ``τ = α + m_s·β`` is the
Hockney cost of one segment and γ is the platform function of
:mod:`repro.models.gamma` (paper Eq. 2).

Shared notation: ``P`` processes, message ``m``, segment size ``m_s``,
``n_s = ceil(m / m_s)`` segments, effective segment ``m/n_s`` (the paper
assumes ``m = n_s·m_s``).

Pipelining argument used throughout (visible in Fig. 3 of the paper): in the
generic tree broadcast the root emits one segment per ``γ(k_root+1)·τ``;
the *last* segment leaves the root after ``n_s`` such stage times and then
trickles down the deepest path, paying one stage time per level.  Stages of
different tree levels overlap, so the total is the root's emission time plus
the drain of the final segment — never the product of the two.
"""

from __future__ import annotations

from math import ceil, floor, log2

from repro.collectives.bcast import DEFAULT_CHAIN_FANOUT
from repro.models.base import BcastModel, LinearCoefficients, segment_count
from repro.models.hierarchical import (
    HierarchicalBcastModel as _HierarchicalBcastModel,
)


class LinearTreeModel(BcastModel):
    """Linear tree with non-blocking sends, never segmented.

    The root posts ``P-1`` isends of the whole message and waits for all.
    The wire latency of the concurrent transfers overlaps but their
    injection serialises at the root, so for the large ``P`` this algorithm
    is used at the cost is the serial emission of ``P-1`` messages:

        T = (P - 1) · (α + m·β)

    (the same structure as the paper's linear gather model, Eq. 8, with the
    direction reversed).  For small ``P`` the overlap is what γ captures;
    γ is measured *from* this very algorithm, so the model intentionally
    stays in the simple ``(P-1)`` form and lets the in-context α absorb the
    constant offset.
    """

    algorithm = "linear"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        del segment_size  # the linear algorithm never segments
        peers = max(procs - 1, 0)
        return LinearCoefficients(peers, peers * nbytes)


class ChainTreeModel(BcastModel):
    """Chain (pipeline): one chain through all ``P`` ranks, segmented.

    Every interior node has exactly one child, so each per-stage linear
    broadcast is a plain point-to-point send (``γ(2) = 1``).  Reading the
    implementation (double-buffered ``irecv`` pipeline in
    ``bcast_intra_generic``): the *first* segment pays the full
    point-to-point cost ``α + m_s·β`` on each of the ``P-2`` hops after the
    root's first send (pipeline fill), but in steady state the receive of
    segment ``i+1`` overlaps the forwarding of segment ``i``, so each
    further segment costs only the serialised injection — the byte term —
    not another latency:

        T = (P - 2)·(α + m_s·β)  +  n_s·(α·0 + m_s·β)  + α
          →  c_α = P - 1,   c_β = (n_s + P - 2)·m_s

    (one α for the root's initial send; the textbook form that charges α on
    every segment is kept in :mod:`repro.models.traditional` for contrast).
    """

    algorithm = "chain"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        segment_bytes = nbytes / segments
        c_alpha = procs - 1.0
        c_beta = (segments + procs - 2.0) * segment_bytes
        return LinearCoefficients(c_alpha, c_beta)


class KChainTreeModel(BcastModel):
    """K chains hanging off the root (Open MPI's chain algorithm, K = 4).

    The root performs a ``K``-child linear broadcast per segment —
    ``γ(K+1)`` point-to-point injections' worth — while the chains drain
    with single-child stages.  As with the chain model, the implementation
    overlaps latency in steady state: the fill phase pays full
    point-to-point cost along the longest chain (``ceil((P-1)/K)`` nodes),
    the steady-state rate is the γ-weighted byte term of the root's
    per-segment fan-out:

        c_α = ceil((P-1)/K),
        c_β = (n_s·γ(K+1) + ceil((P-1)/K) - 1) · m_s
    """

    algorithm = "k_chain"

    def __init__(self, gamma, chains: int = DEFAULT_CHAIN_FANOUT):
        super().__init__(gamma)
        self.chains = chains

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        chains = min(self.chains, procs - 1)
        chain_length = ceil((procs - 1) / chains)
        segment_bytes = nbytes / segments
        c_alpha = float(chain_length)
        c_beta = (
            segments * self.gamma(chains + 1) + chain_length - 1
        ) * segment_bytes
        return LinearCoefficients(c_alpha, c_beta)


class BinaryTreeModel(BcastModel):
    """Balanced binary tree, segmented.

    The heap-shaped tree of height ``H = ceil(log2(P+1)) - 1`` gives every
    interior node two children, so each stage is a 2-child linear broadcast
    costing ``γ(3)·τ``.  Root emission takes ``n_s`` stages, the final
    segment drains through ``H - 1`` further levels:

        T = (n_s + H - 1) · γ(3) · (α + (m/n_s)·β)
    """

    algorithm = "binary"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        height = ceil(log2(procs + 1)) - 1
        stages = (segments + height - 1) * self.gamma(3)
        return LinearCoefficients(stages, stages * (nbytes / segments))


class SplitBinaryTreeModel(BcastModel):
    """Split-binary tree, segmented.

    Phase one is a binary-tree pipeline of *half* the message
    (``n_s/2`` segments) down each subtree — the two subtrees work
    concurrently and each stage still costs ``γ(3)·τ`` because the root
    alternates a send into each subtree per stage and interior nodes
    forward to two children.  Phase two exchanges the halves between mirror
    nodes of the two subtrees: one point-to-point message of ``m/2`` in
    each direction, running on a large number of independent pairs, i.e.
    one Hockney term:

        T = (n_s/2 + H - 1) · γ(3) · (α + (m/n_s)·β)  +  (α + (m/2)·β)
    """

    algorithm = "split_binary"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        if procs < 3 or segments < 2:
            # The implementation falls back to the linear algorithm.
            peers = procs - 1
            return LinearCoefficients(peers, peers * nbytes)
        height = ceil(log2(procs + 1)) - 1
        stages = (ceil(segments / 2) + height - 1) * self.gamma(3)
        pipeline = LinearCoefficients(stages, stages * (nbytes / segments))
        exchange = LinearCoefficients(1.0, nbytes / 2)
        return pipeline + exchange


class BinomialTreeModel(BcastModel):
    """Balanced binomial tree, segmented (paper §3.1, Eq. 6).

    The root has ``ceil(log2 P)`` children, so emits one segment per
    ``γ(ceil(log2 P) + 1)·τ``; the number of children halves level by
    level down the deepest path, so the final segment pays
    ``γ(ceil(log2 P) - i + 1)·τ`` at depth ``i``.  Substituting into the
    stage sum (paper Eq. 5) gives Eq. 6:

        T = ( n_s·γ(⌈log2 P⌉ + 1)
              + Σ_{i=1}^{⌊log2 P⌋ - 1} γ(⌈log2 P⌉ - i + 1)
              - 1 ) · (α + (m/n_s)·β)
    """

    algorithm = "binomial"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        ceil_log = ceil(log2(procs))
        floor_log = floor(log2(procs))
        stages = segments * self.gamma(ceil_log + 1) - 1.0
        for i in range(1, floor_log):
            stages += self.gamma(ceil_log - i + 1)
        # Eq. 6's "-1" overlap correction assumes a tree of depth >= 2; at
        # P = 2 with a single segment it would yield zero stages, while the
        # implementation still performs n_s sends.
        stages = max(stages, float(segments))
        return LinearCoefficients(stages, stages * (nbytes / segments))


class ScatterAllgatherModel(BcastModel):
    """Scatter-allgather (Van de Geijn) broadcast — extension algorithm.

    Derived from :func:`repro.collectives.bcast.bcast_scatter_allgather`:
    a binomial scatter whose deepest path forwards ``m·(P-1)/P`` bytes over
    ``ceil(log2 P)`` latency-bearing hops, then a ring allgather of ``P-1``
    steps moving one ``m/P`` block each:

        c_α = ceil(log2 P) + (P - 1)
        c_β = 2·m·(P - 1)/P

    Falls back to the linear coefficients when the implementation falls
    back (P = 2 or fewer bytes than ranks).
    """

    algorithm = "scatter_allgather"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        del segment_size  # block structure is fixed by P, not by segments
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        if procs == 2 or nbytes < procs:
            peers = procs - 1
            return LinearCoefficients(peers, peers * nbytes)
        c_alpha = ceil(log2(procs)) + procs - 1.0
        c_beta = 2.0 * nbytes * (procs - 1) / procs
        return LinearCoefficients(c_alpha, c_beta)


#: Derived model classes keyed by the algorithm they describe.
DERIVED_BCAST_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (
        LinearTreeModel,
        ChainTreeModel,
        KChainTreeModel,
        BinaryTreeModel,
        SplitBinaryTreeModel,
        BinomialTreeModel,
        ScatterAllgatherModel,
        _HierarchicalBcastModel,
    )
}
