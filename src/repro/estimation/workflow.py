"""One-call platform calibration and the resulting platform model.

:func:`calibrate_platform` runs the paper's full §4 procedure on a cluster:

1. estimate γ(P) from non-blocking linear broadcast experiments (§4.1);
2. for each broadcast algorithm, estimate α and β from broadcast+gather
   experiments solved by Huber regression (§4.2).

The result, a :class:`PlatformModel`, is everything the runtime selector
needs: it predicts any algorithm's time for any ``(P, m)`` in microseconds
of arithmetic, and serialises to/from JSON so a calibration can be done
once per cluster and shipped with the MPI library — the deployment model
the paper proposes.

For the ablation studies the calibration can swap the model family
(``"derived"`` vs ``"traditional"``) and the estimation method
(``"collective"`` in-context experiments vs classical ``"p2p"``
ping-pongs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.alphabeta import (
    DEFAULT_GATHER_BYTES,
    DEFAULT_SIZES,
    AlphaBeta,
    FitQuality,
    alphabeta_prefetch_jobs,
    estimate_alpha_beta,
)
from repro.estimation.gamma import (
    DEFAULT_MAX_PROCS,
    DEFAULT_SEGMENT_SIZE,
    GammaEstimate,
    estimate_gamma,
    gamma_prefetch_jobs,
)
from repro.estimation.p2p import (
    P2pEstimate,
    estimate_hockney_p2p,
    p2p_prefetch_jobs,
)
from repro.exec.runner import ParallelRunner, default_runner
from repro.models.base import BcastModel
from repro.models.derived import DERIVED_BCAST_MODELS
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams
from repro.models.allgather_models import DERIVED_ALLGATHER_MODELS
from repro.models.allreduce_models import DERIVED_ALLREDUCE_MODELS
from repro.models.alltoall_models import DERIVED_ALLTOALL_MODELS
from repro.models.barrier_models import DERIVED_BARRIER_MODELS
from repro.models.gather_models import DERIVED_GATHER_MODELS
from repro.models.reduce_models import DERIVED_REDUCE_MODELS
from repro.models.scatter_models import DERIVED_SCATTER_MODELS
from repro.models.traditional import TRADITIONAL_BCAST_MODELS

MODEL_FAMILIES = {
    "derived": DERIVED_BCAST_MODELS,
    "traditional": TRADITIONAL_BCAST_MODELS,
    "reduce_derived": DERIVED_REDUCE_MODELS,
    "gather_derived": DERIVED_GATHER_MODELS,
    "barrier_derived": DERIVED_BARRIER_MODELS,
    "allreduce_derived": DERIVED_ALLREDUCE_MODELS,
    "allgather_derived": DERIVED_ALLGATHER_MODELS,
    "alltoall_derived": DERIVED_ALLTOALL_MODELS,
    "scatter_derived": DERIVED_SCATTER_MODELS,
}

#: Which collective operation each model family describes.
FAMILY_OPERATION = {
    "derived": "bcast",
    "traditional": "bcast",
    "reduce_derived": "reduce",
    "gather_derived": "gather",
    "barrier_derived": "barrier",
    "allreduce_derived": "allreduce",
    "allgather_derived": "allgather",
    "alltoall_derived": "alltoall",
    "scatter_derived": "scatter",
}

ESTIMATION_METHODS = ("collective", "p2p")


def instantiate_model(
    factory: type[BcastModel], gamma: GammaFunction, model_params: dict
) -> BcastModel:
    """Construct a model, forwarding the ``extra_params`` it declares.

    Platform-dependent model constants (e.g. the hierarchical models'
    ``group_ranks``) travel in a ``model_params`` dict; each model class
    declares which keys it understands, so unrelated models ignore them.
    """
    kwargs = {
        key: model_params[key]
        for key in factory.extra_params
        if key in model_params
    }
    return factory(gamma, **kwargs)


@dataclass(frozen=True)
class PlatformModel:
    """A calibrated set of analytical models for one cluster.

    ``parameters`` maps algorithm names to their fitted Hockney parameters;
    ``gamma`` is the platform function; ``model_family`` selects which model
    equations to evaluate.
    """

    cluster: str
    segment_size: int
    gamma: GammaFunction
    parameters: dict[str, HockneyParams]
    model_family: str = "derived"
    #: Platform-dependent model constants forwarded to model
    #: constructors that declare them (``BcastModel.extra_params``),
    #: e.g. ``{"group_ranks": 5}`` on a racked fabric.  Serialised only
    #: when non-empty, so flat-fabric platforms round-trip byte-for-byte.
    model_params: dict = field(default_factory=dict)
    _models: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.model_family not in MODEL_FAMILIES:
            raise EstimationError(
                f"unknown model family {self.model_family!r}; "
                f"known: {sorted(MODEL_FAMILIES)}"
            )

    @property
    def algorithms(self) -> list[str]:
        """Algorithms this platform model can predict, sorted by name."""
        return sorted(self.parameters)

    @property
    def operation(self) -> str:
        """The collective operation this platform model describes."""
        return FAMILY_OPERATION[self.model_family]

    def model_for(self, algorithm: str) -> BcastModel:
        """The (cached) model instance for ``algorithm``."""
        model = self._models.get(algorithm)
        if model is None:
            family = MODEL_FAMILIES[self.model_family]
            try:
                model = instantiate_model(
                    family[algorithm], self.gamma, self.model_params
                )
            except KeyError:
                known = ", ".join(sorted(family))
                raise EstimationError(
                    f"no {self.model_family} model for {algorithm!r}; known: {known}"
                ) from None
            self._models[algorithm] = model
        return model

    def predict(
        self,
        algorithm: str,
        procs: int,
        nbytes: int,
        segment_size: int | None = None,
    ) -> float:
        """Predicted broadcast time of ``algorithm`` at ``(procs, nbytes)``."""
        try:
            params = self.parameters[algorithm]
        except KeyError:
            known = ", ".join(self.algorithms)
            raise EstimationError(
                f"no parameters for {algorithm!r}; calibrated: {known}"
            ) from None
        seg = self.segment_size if segment_size is None else segment_size
        return self.model_for(algorithm).predict(procs, nbytes, seg, params)

    def predict_all(self, procs: int, nbytes: int) -> dict[str, float]:
        """Predictions of every calibrated algorithm at ``(procs, nbytes)``."""
        return {
            name: self.predict(name, procs, nbytes) for name in self.algorithms
        }

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        doc = {
            "cluster": self.cluster,
            "segment_size": self.segment_size,
            "model_family": self.model_family,
            "gamma": {str(p): g for p, g in sorted(self.gamma.table.items())},
            "parameters": {
                name: {"alpha": p.alpha, "beta": p.beta}
                for name, p in sorted(self.parameters.items())
            },
        }
        if self.model_params:
            # Key present only when set: pre-fabric platform files (and
            # their artifact content hashes) stay byte-identical.
            doc["model_params"] = dict(sorted(self.model_params.items()))
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "PlatformModel":
        return cls(
            cluster=data["cluster"],
            segment_size=int(data["segment_size"]),
            model_family=data.get("model_family", "derived"),
            gamma=GammaFunction(
                {int(p): float(g) for p, g in data["gamma"].items()}
            ),
            parameters={
                name: HockneyParams(float(v["alpha"]), float(v["beta"]))
                for name, v in data["parameters"].items()
            },
            model_params=dict(data.get("model_params", {})),
        )

    def save(self, path: str | Path) -> None:
        """Write the calibration to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "PlatformModel":
        """Read a calibration from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class QualityThresholds:
    """Acceptance gate for calibration fits (the ``--strict`` build).

    ``max_relative_residual`` bounds the worst residual of a fit relative
    to the data scale; ``min_converged_fraction`` requires that share of a
    sweep's measurements to have met the paper's CI precision target.  The
    residual default is deliberately generous (0.5): some model-form error
    is inherent even on a noiseless cluster (e.g. split-binary on very
    small worlds), and the gate's job is to catch *noise-wrecked*
    calibrations, not to relitigate the model family.
    """

    max_relative_residual: float = 0.5
    min_converged_fraction: float = 0.5


#: Default gate used by ``repro artifact build --strict``.
DEFAULT_QUALITY = QualityThresholds()


@dataclass(frozen=True)
class CalibrationResult:
    """A :class:`PlatformModel` plus the raw estimates behind it."""

    platform: PlatformModel
    gamma_estimate: GammaEstimate
    alpha_beta: dict[str, AlphaBeta]
    p2p_estimate: P2pEstimate | None

    def quality_report(self) -> dict[str, dict]:
        """Per-algorithm fit diagnostics, JSON-ready (empty for p2p runs)."""
        return {
            name: estimate.quality.as_dict()
            for name, estimate in sorted(self.alpha_beta.items())
            if estimate.quality is not None
        }

    def check_quality(
        self, thresholds: QualityThresholds = DEFAULT_QUALITY
    ) -> list[str]:
        """Names of algorithms whose fit fails ``thresholds`` (empty = pass)."""
        return [
            name
            for name, estimate in sorted(self.alpha_beta.items())
            if estimate.quality is not None
            and not estimate.quality.ok(
                max_relative_residual=thresholds.max_relative_residual,
                min_converged_fraction=thresholds.min_converged_fraction,
            )
        ]


def calibrate_platform(
    spec: ClusterSpec,
    *,
    procs: int | None = None,
    algorithms: Sequence[str] | None = None,
    model_family: str = "derived",
    estimation: str = "collective",
    gamma_method: str = "direct",
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    sizes: Sequence[int] = DEFAULT_SIZES,
    gather_bytes=DEFAULT_GATHER_BYTES,
    gamma_max_procs: int = DEFAULT_MAX_PROCS,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    screen_mad: float | None = None,
    retry_budget: int = 0,
    strict: QualityThresholds | None = None,
    model_params: dict | None = None,
) -> CalibrationResult:
    """Run the paper's full calibration procedure on ``spec``.

    With the defaults this is exactly §4: γ from collective experiments,
    then per-algorithm α/β from broadcast+gather experiments fitted by
    Huber regression.  ``estimation="p2p"`` replaces step 2 with one
    ping-pong fit shared by all algorithms (the ablation baseline).

    All simulations route through ``runner`` (default: the process-wide
    runner).  The *entire* experiment schedule — γ plus every algorithm's
    sweep — is prefetched as one batch up front, so with a parallel runner
    the whole calibration's simulations run concurrently and the serial
    estimation stages replay from the memo.

    Robustness knobs (all default off; the vanilla calibration is
    bit-identical to earlier releases): ``screen_mad`` / ``retry_budget``
    are forwarded to :func:`estimate_alpha_beta`; passing ``strict``
    thresholds makes the calibration *fail* (:class:`EstimationError`)
    instead of silently returning fits that miss them.
    """
    if estimation not in ESTIMATION_METHODS:
        raise EstimationError(
            f"unknown estimation method {estimation!r}; use {ESTIMATION_METHODS}"
        )
    family = MODEL_FAMILIES[model_family]  # validates the family name
    if algorithms is None:
        # Default to the paper's six broadcast algorithms; extension models
        # (e.g. scatter_allgather) are opt-in via an explicit list.
        from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS

        algorithms = sorted(
            name for name in family if name in PAPER_BCAST_ALGORITHMS
        )

    with obs.span(
        "calibrate.platform",
        cluster=spec.name,
        estimation=estimation,
        model_family=model_family,
        algorithms=",".join(algorithms),
    ):
        runner = runner if runner is not None else default_runner()
        batch = gamma_prefetch_jobs(
            spec,
            segment_size=segment_size,
            max_procs=gamma_max_procs,
            method=gamma_method,
            seed=seed,
        )
        if estimation == "p2p":
            batch += p2p_prefetch_jobs(spec, sizes=sizes, seed=seed)
        else:
            ab_procs = procs if procs is not None else max(2, spec.max_procs // 2)
            for index, name in enumerate(algorithms):
                batch += alphabeta_prefetch_jobs(
                    spec,
                    name,
                    procs=ab_procs,
                    sizes=sizes,
                    segment_size=segment_size,
                    gather_bytes=gather_bytes,
                    seed=seed + 2_000_017 * (index + 1),
                )
        with obs.span(
            "calibrate.prefetch", jobs=len(batch), batched=runner.batch
        ):
            runner.prefetch(batch)

        gamma_estimate = estimate_gamma(
            spec,
            segment_size=segment_size,
            max_procs=gamma_max_procs,
            method=gamma_method,
            precision=precision,
            max_reps=max_reps,
            seed=seed,
            runner=runner,
            prefetch=False,
        )
        gamma = gamma_estimate.function()

        alpha_beta: dict[str, AlphaBeta] = {}
        parameters: dict[str, HockneyParams] = {}
        p2p_estimate: P2pEstimate | None = None

        if estimation == "p2p":
            p2p_estimate = estimate_hockney_p2p(
                spec,
                sizes=sizes,
                regressor=regressor,
                precision=precision,
                max_reps=max_reps,
                seed=seed,
                runner=runner,
                prefetch=False,
            )
            parameters = {name: p2p_estimate.params for name in algorithms}
        else:
            for index, name in enumerate(algorithms):
                model = instantiate_model(family[name], gamma, model_params or {})
                estimate = estimate_alpha_beta(
                    spec,
                    model,
                    procs=procs,
                    sizes=sizes,
                    segment_size=segment_size,
                    gather_bytes=gather_bytes,
                    regressor=regressor,
                    precision=precision,
                    max_reps=max_reps,
                    seed=seed + 2_000_017 * (index + 1),
                    runner=runner,
                    prefetch=False,
                    screen_mad=screen_mad,
                    retry_budget=retry_budget,
                )
                alpha_beta[name] = estimate
                parameters[name] = estimate.params

        platform = PlatformModel(
            cluster=spec.name,
            segment_size=segment_size,
            gamma=gamma,
            parameters=parameters,
            model_family=model_family,
            model_params=dict(model_params or {}),
        )
        result = CalibrationResult(
            platform=platform,
            gamma_estimate=gamma_estimate,
            alpha_beta=alpha_beta,
            p2p_estimate=p2p_estimate,
        )
        if strict is not None:
            failed = result.check_quality(strict)
            if failed:
                details = "; ".join(
                    f"{name}: {alpha_beta[name].quality.as_dict()}" for name in failed
                )
                raise EstimationError(
                    f"{spec.name}: calibration quality gate failed for "
                    f"{', '.join(failed)} ({details})"
                )
        return result
