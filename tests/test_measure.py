"""Tests for the timed-experiment layer (repro.measure)."""

import pytest

from repro.clusters import GRISOU, MINICLUSTER
from repro.errors import SimulationError
from repro.measure import (
    run_timed,
    time_bcast,
    time_bcast_then_gather,
    time_gather,
    time_repeated_barrier,
    time_repeated_bcast_with_barriers,
)
from repro.units import KiB


class TestRunTimed:
    def test_global_policy_returns_last_finisher(self):
        def program(comm):
            yield comm.sim.timeout(comm.rank * 1e-3)

        elapsed = run_timed(MINICLUSTER, program, 4, policy="global")
        assert elapsed == pytest.approx(3e-3)

    def test_root_policy_returns_roots_clock(self):
        def program(comm):
            yield comm.sim.timeout(comm.rank * 1e-3)

        elapsed = run_timed(MINICLUSTER, program, 4, root=0, policy="root")
        assert elapsed == pytest.approx(0.0)

    def test_unknown_policy_rejected(self):
        def program(comm):
            return
            yield

        with pytest.raises(SimulationError, match="policy"):
            run_timed(MINICLUSTER, program, 2, policy="median")

    def test_leftover_messages_detected(self):
        """A program that sends without a matching receive is flagged."""

        def program(comm):
            if comm.rank == 0:
                yield from comm.isend(1, 100, tag=1)

        with pytest.raises(SimulationError, match="unmatched"):
            run_timed(MINICLUSTER, program, 2)

    def test_spread_mapping_changes_timing_on_multislot_cluster(self):
        block = time_bcast(
            GRISOU.with_noise(0.0), "linear", 2, 8 * KiB, 0, mapping="block"
        )
        spread = time_bcast(
            GRISOU.with_noise(0.0), "linear", 2, 8 * KiB, 0, mapping="spread"
        )
        assert spread > block  # shm pair vs network pair


class TestBcastExperiments:
    def test_root_policy_faster_or_equal_to_global(self):
        spec = MINICLUSTER
        at_root = time_bcast(spec, "binomial", 8, 64 * KiB, 8 * KiB, policy="root")
        overall = time_bcast(spec, "binomial", 8, 64 * KiB, 8 * KiB, policy="global")
        assert at_root <= overall

    def test_bcast_then_gather_exceeds_both_parts(self):
        """Eq. 7: the composite experiment costs at least the bcast and at
        least the gather."""
        spec = MINICLUSTER
        procs, nbytes, m_g = 8, 128 * KiB, 2 * KiB
        composite = time_bcast_then_gather(
            spec, "binomial", procs, nbytes, 8 * KiB, m_g
        )
        bcast_only = time_bcast(spec, "binomial", procs, nbytes, 8 * KiB)
        gather_only = time_gather(spec, "linear", procs, m_g)
        assert composite > bcast_only
        assert composite > gather_only

    def test_composite_experiment_root_timed_includes_global_bcast(self):
        """The gather cannot finish before every rank got the broadcast, so
        the root clock captures the full broadcast even though the bcast
        call returns locally earlier — the reason the paper appends the
        gather."""
        spec = MINICLUSTER
        procs, nbytes = 8, 128 * KiB
        composite = time_bcast_then_gather(
            spec, "binomial", procs, nbytes, 8 * KiB, 1 * KiB
        )
        bcast_global = time_bcast(
            spec, "binomial", procs, nbytes, 8 * KiB, policy="global"
        )
        assert composite >= bcast_global


class TestRepeatedExperiments:
    def test_t1_scales_with_call_count(self):
        spec = MINICLUSTER
        one = time_repeated_bcast_with_barriers(spec, "binomial", 6, 8 * KiB, 0, 1)
        four = time_repeated_bcast_with_barriers(spec, "binomial", 6, 8 * KiB, 0, 4)
        assert four == pytest.approx(4 * one, rel=0.25)

    def test_barrier_only_cheaper_than_bcast_plus_barrier(self):
        spec = MINICLUSTER
        with_bcast = time_repeated_bcast_with_barriers(
            spec, "binomial", 6, 8 * KiB, 0, 3
        )
        barriers = time_repeated_barrier(spec, 6, 3)
        assert barriers < with_bcast

    def test_zero_calls_rejected(self):
        with pytest.raises(SimulationError):
            time_repeated_bcast_with_barriers(MINICLUSTER, "binomial", 4, 8 * KiB, 0, 0)
