"""Tests for the six broadcast algorithms.

Correctness (every rank receives the whole message), structural fidelity to
the Open MPI implementations (segment counts, pipelining, per-stage
non-blocking fan-out), and cross-algorithm sanity at paper scales.
"""

import collections

import pytest

from repro.clusters import MINICLUSTER
from repro.collectives.bcast import (
    BCAST_ALGORITHMS,
    PAPER_BCAST_ALGORITHMS,
    TAG_BCAST_XCHG,
    _split_halves,
)
from repro.measure import time_bcast
from repro.mpi.segmentation import plan_segments
from repro.sim.trace import Tracer
from repro.units import KiB

#: The paper's six algorithms: the tree broadcasts where the root only
#: sends and every other rank receives exactly the message size.
ALGORITHMS = sorted(PAPER_BCAST_ALGORITHMS)
SEGMENT = 8 * KiB


def traced_bcast(algorithm, procs, nbytes, segment_size=SEGMENT, root=0):
    tracer = Tracer()
    elapsed = time_bcast(
        MINICLUSTER, algorithm, procs, nbytes, segment_size, root=root,
        tracer=tracer,
    )
    return elapsed, tracer


def received_bytes(tracer):
    """Payload bytes received per rank (all tags)."""
    totals = collections.Counter()
    for event in tracer.of_kind("recv_complete"):
        totals[event.rank] += event.nbytes
    return totals


class TestDelivery:
    """Every non-root rank must end up with all nbytes."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("procs", [2, 3, 5, 8, 13, 16])
    def test_all_ranks_receive_full_message(self, algorithm, procs):
        nbytes = 64 * KiB
        _, tracer = traced_bcast(algorithm, procs, nbytes)
        totals = received_bytes(tracer)
        for rank in range(procs):
            if rank == 0:
                assert totals.get(rank, 0) == 0
            else:
                assert totals[rank] == nbytes, f"rank {rank} short-changed"

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_non_default_root(self, algorithm):
        nbytes = 32 * KiB
        _, tracer = traced_bcast(algorithm, 8, nbytes, root=5)
        totals = received_bytes(tracer)
        assert totals.get(5, 0) == 0
        for rank in range(8):
            if rank != 5:
                assert totals[rank] == nbytes

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_process_is_noop(self, algorithm):
        elapsed, tracer = traced_bcast(algorithm, 1, 8 * KiB)
        assert elapsed == 0.0
        assert len(tracer) == 0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_two_processes(self, algorithm):
        _, tracer = traced_bcast(algorithm, 2, 64 * KiB)
        assert received_bytes(tracer)[1] == 64 * KiB

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_non_segment_multiple_size(self, algorithm):
        nbytes = 20_000  # not a multiple of 8 KiB
        _, tracer = traced_bcast(algorithm, 6, nbytes)
        totals = received_bytes(tracer)
        for rank in range(1, 6):
            assert totals[rank] == nbytes


class TestTrafficVolume:
    def test_linear_sends_exactly_p_minus_1_messages(self):
        _, tracer = traced_bcast("linear", 8, 64 * KiB, segment_size=0)
        posts = tracer.of_kind("send_post")
        assert len(posts) == 7
        assert all(event.rank == 0 for event in posts)
        assert all(event.nbytes == 64 * KiB for event in posts)

    def test_linear_ignores_segment_size(self):
        """Open MPI's basic linear broadcast never segments."""
        _, tracer = traced_bcast("linear", 4, 64 * KiB, segment_size=SEGMENT)
        assert all(e.nbytes == 64 * KiB for e in tracer.of_kind("send_post"))

    def test_chain_every_rank_but_last_forwards(self):
        nbytes = 64 * KiB
        _, tracer = traced_bcast("chain", 6, nbytes)
        sent = collections.Counter()
        for event in tracer.of_kind("send_post"):
            sent[event.rank] += event.nbytes
        for rank in range(5):
            assert sent[rank] == nbytes
        assert sent.get(5, 0) == 0

    def test_binomial_total_traffic_is_p_minus_1_messages(self):
        nbytes = 64 * KiB
        procs = 16
        _, tracer = traced_bcast("binomial", procs, nbytes)
        assert tracer.total_bytes_sent() == (procs - 1) * nbytes

    def test_split_binary_halves_the_per_rank_egress_bottleneck(self):
        """Any bcast moves >= (P-1)*m bytes in total; split-binary's edge is
        that no single rank sends more than ~1.5 m (half per child plus the
        exchange) versus 2 m for a binary-tree interior node."""
        nbytes = 256 * KiB
        per_rank = {}
        for algorithm in ("split_binary", "binary"):
            _, tracer = traced_bcast(algorithm, 15, nbytes)
            sent = collections.Counter()
            for event in tracer.of_kind("send_post"):
                if event.rank != 0:  # exclude the root
                    sent[event.rank] += event.nbytes
            per_rank[algorithm] = max(sent.values())
        assert per_rank["split_binary"] <= 0.8 * per_rank["binary"]

    @pytest.mark.parametrize("algorithm", ["chain", "binary", "binomial", "k_chain"])
    def test_segment_count_matches_plan(self, algorithm):
        nbytes = 100 * KiB  # 13 segments, last one short
        plan = plan_segments(nbytes, SEGMENT)
        _, tracer = traced_bcast(algorithm, 5, nbytes)
        by_rank = collections.Counter(
            e.rank for e in tracer.of_kind("send_post")
        )
        # The root emits exactly num_segments messages per child.
        from repro.topology import (
            build_binary_tree,
            build_binomial_tree,
            build_chain_tree,
        )

        trees = {
            "chain": build_chain_tree(5, 0, 1),
            "k_chain": build_chain_tree(5, 0, 4),
            "binary": build_binary_tree(5),
            "binomial": build_binomial_tree(5),
        }
        children = len(trees[algorithm].children[0])
        assert by_rank[0] == plan.num_segments * children


class TestPipelining:
    def test_chain_overlaps_segments(self):
        """A segmented chain must be far faster than segment-by-segment."""
        procs, nbytes = 8, 512 * KiB
        pipelined = time_bcast(MINICLUSTER, "chain", procs, nbytes, SEGMENT)
        sequential_estimate = (
            time_bcast(MINICLUSTER, "chain", procs, SEGMENT, SEGMENT)
            * (nbytes // SEGMENT)
        )
        assert pipelined < 0.5 * sequential_estimate

    def test_root_fanout_sends_are_nonblocking(self):
        """Within one stage the root posts to all children before waiting."""
        _, tracer = traced_bcast("binomial", 8, 8 * KiB)
        root_posts = [e for e in tracer.of_kind("send_post") if e.rank == 0]
        first_complete = min(
            e.time for e in tracer.of_kind("send_complete") if e.rank == 0
        )
        # All three children of the binomial root are posted before any
        # send completes: that is the non-blocking linear broadcast.
        assert len(root_posts) == 3
        assert all(e.time <= first_complete for e in root_posts)

    def test_interior_forwards_while_receiving(self):
        """Interior nodes overlap receive of segment i+1 with forwarding i."""
        procs, nbytes = 4, 256 * KiB
        _, tracer = traced_bcast("chain", procs, nbytes)
        rank1_posts = [e.time for e in tracer.of_kind("send_post") if e.rank == 1]
        rank1_recvs = [
            e.time for e in tracer.of_kind("recv_complete") if e.rank == 1
        ]
        # Rank 1 starts forwarding before it finished receiving everything.
        assert rank1_posts[0] < rank1_recvs[-1]


class TestSplitBinary:
    def test_halves_align_to_segments(self):
        left, right = _split_halves(100 * KiB, SEGMENT)
        assert left + right == 100 * KiB
        assert left % SEGMENT == 0 or right == 0

    def test_odd_segment_count_gives_left_the_extra(self):
        left, right = _split_halves(24 * KiB, SEGMENT)  # 3 segments
        assert left == 16 * KiB and right == 8 * KiB

    def test_exchange_phase_present(self):
        _, tracer = traced_bcast("split_binary", 8, 64 * KiB)
        exchange = [e for e in tracer.of_kind("send_post") if e.tag == TAG_BCAST_XCHG]
        assert exchange, "no exchange-phase messages observed"

    def test_falls_back_to_linear_for_tiny_cases(self):
        # One segment: cannot split -> linear shape (root sends whole m).
        _, tracer = traced_bcast("split_binary", 6, 4 * KiB)
        posts = tracer.of_kind("send_post")
        assert all(e.rank == 0 for e in posts)
        assert all(e.nbytes == 4 * KiB for e in posts)

    def test_exchange_partners_are_mutual_where_balanced(self):
        _, tracer = traced_bcast("split_binary", 15, 64 * KiB)  # perfect tree
        exchange = [
            (e.rank, e.peer)
            for e in tracer.of_kind("send_post")
            if e.tag == TAG_BCAST_XCHG
        ]
        pairs = set(exchange)
        assert all((peer, rank) in pairs for rank, peer in pairs)


class TestRelativePerformance:
    """Coarse ranking facts that hold on any sane platform."""

    def test_linear_worst_at_large_message_many_procs(self):
        nbytes = 1024 * KiB
        times = {
            a: time_bcast(MINICLUSTER, a, 16, nbytes, SEGMENT) for a in ALGORITHMS
        }
        assert max(times, key=times.get) == "linear"

    def test_trees_beat_chain_at_small_messages(self):
        small = 8 * KiB
        chain = time_bcast(MINICLUSTER, "chain", 16, small, SEGMENT)
        binomial = time_bcast(MINICLUSTER, "binomial", 16, small, SEGMENT)
        assert binomial < chain


class TestScatterAllgather:
    """The Van de Geijn extension algorithm routes blocks, so its delivery
    invariants differ from the six tree broadcasts."""

    @pytest.mark.parametrize("procs", [3, 5, 8, 13, 16])
    def test_every_rank_assembles_the_message(self, procs):
        """Each rank ends up holding all P blocks: scatter gives it its
        subtree, the ring circulates every block past every rank."""
        nbytes = 64 * KiB
        _, tracer = traced_bcast("scatter_allgather", procs, nbytes)
        ring_bytes = collections.Counter()
        for event in tracer.of_kind("recv_complete"):
            if event.tag >= TAG_BCAST_XCHG:
                ring_bytes[event.rank] += event.nbytes
        # Ring phase: every rank receives all blocks except its own initial
        # one once around the ring = m - (its block at each step)... in
        # total exactly (P-1)/P of the message.
        expected = nbytes - nbytes // procs  # up to remainder distribution
        for rank in range(procs):
            assert abs(ring_bytes[rank] - expected) <= procs

    def test_bandwidth_optimality(self):
        """No rank sends more than ~2m(P-1)/P bytes — the property that
        makes the algorithm win for huge messages."""
        procs, nbytes = 8, 512 * KiB
        _, tracer = traced_bcast("scatter_allgather", procs, nbytes)
        sent = collections.Counter()
        for event in tracer.of_kind("send_post"):
            sent[event.rank] += event.nbytes
        bound = 2 * nbytes * (procs - 1) / procs
        assert max(sent.values()) <= bound * 1.01

    def test_beats_root_bound_algorithms_for_huge_messages(self):
        """At very large m the block schedule beats every algorithm whose
        root emits a multiple of m (linear, binomial, k-chain).  It does
        *not* beat a cleanly pipelined chain on this fabric — the chain is
        already per-rank bandwidth-optimal — which is exactly the kind of
        platform-specific verdict the selection framework exists to give.
        """
        procs, nbytes = 16, 8 * 1024 * KiB
        times = {
            name: time_bcast(MINICLUSTER, name, procs, nbytes, SEGMENT)
            for name in ("linear", "binomial", "k_chain", "scatter_allgather")
        }
        assert min(times, key=times.get) == "scatter_allgather"

    def test_falls_back_when_blocks_degenerate(self):
        # Fewer bytes than ranks: linear fallback (root sends whole m).
        _, tracer = traced_bcast("scatter_allgather", 8, 6)
        posts = tracer.of_kind("send_post")
        assert all(event.rank == 0 for event in posts)

    def test_non_default_root(self):
        _, tracer = traced_bcast("scatter_allgather", 8, 64 * KiB, root=5)
        assert received_bytes(tracer)  # completes without deadlock


class TestZeroByteConvention:
    """m = 0 is a no-op everywhere: no traffic, zero time, zero prediction.

    MPI returns immediately from a count-0 collective, so the simulator
    must send nothing (``plan_segments(0, s)`` plans zero segments) and
    the analytical models must predict exactly 0.0 — otherwise simulator
    and model disagree at the degenerate corner of every sweep.
    """

    @pytest.mark.parametrize("algorithm", sorted(BCAST_ALGORITHMS))
    def test_simulator_is_a_noop(self, algorithm):
        elapsed, tracer = traced_bcast(algorithm, procs=8, nbytes=0)
        assert elapsed == 0.0
        assert not tracer.of_kind("recv_complete")

    @pytest.mark.parametrize("algorithm", sorted(BCAST_ALGORITHMS))
    def test_simulator_is_a_noop_unsegmented(self, algorithm):
        elapsed, tracer = traced_bcast(algorithm, procs=5, nbytes=0,
                                       segment_size=0)
        assert elapsed == 0.0
        assert not tracer.of_kind("recv_complete")

    def test_all_bcast_models_predict_zero(self):
        from repro.models.derived import DERIVED_BCAST_MODELS
        from repro.models.gamma import GammaFunction
        from repro.models.hockney import HockneyParams
        from repro.models.traditional import TRADITIONAL_BCAST_MODELS

        gamma = GammaFunction(table={2: 1.0, 3: 1.3, 4: 1.6})
        params = HockneyParams(alpha=1e-5, beta=1e-9)
        families = dict(DERIVED_BCAST_MODELS)
        families.update(
            (f"traditional/{name}", cls)
            for name, cls in TRADITIONAL_BCAST_MODELS.items()
        )
        for name, model_cls in families.items():
            model = model_cls(gamma)
            assert model.predict(8, 0, SEGMENT, params) == 0.0, name
            # ... and the sized prediction stays untouched by the guard.
            assert model.predict(8, 64 * KiB, SEGMENT, params) > 0.0, name

    def test_barrier_models_are_not_noops_at_zero_bytes(self):
        """Barriers always carry m = 0; they must keep their cost."""
        from repro.models.barrier_models import DERIVED_BARRIER_MODELS
        from repro.models.gamma import GammaFunction
        from repro.models.hockney import HockneyParams

        gamma = GammaFunction(table={2: 1.0})
        params = HockneyParams(alpha=1e-5, beta=1e-9)
        for name, model_cls in DERIVED_BARRIER_MODELS.items():
            model = model_cls(gamma)
            assert model.predict(8, 0, 0, params) > 0.0, name

    def test_reduce_is_a_noop_too(self):
        from repro.estimation.reduce_calibration import time_reduce
        from repro.collectives.reduce import REDUCE_ALGORITHMS

        for name in REDUCE_ALGORITHMS:
            assert time_reduce(MINICLUSTER, name, 8, 0, SEGMENT) == 0.0, name
