"""Incremental artifact recalibration.

When drift or a guideline violation implicates *one* collective, a full
rebuild is waste: the registry is already per-operation, so only the
affected pipeline needs to re-run.  :func:`rebuild_artifact` recalibrates
a subset of an existing artifact's operations on a (possibly drifted)
cluster spec and repackages — untouched entries are carried over
*verbatim*, the rebuilt ones reuse their existing decision-grid shape,
and all simulations flow through the caller's
:class:`~repro.exec.runner.ParallelRunner`, so a warm persistent cache
makes a no-drift rebuild free (zero simulations) and bit-identical
(unchanged content hash).

The rebuild provenance — which operations were recalibrated and which
artifact it descends from — is recorded in the unhashed ``build_info``
section: two artifacts that decide identically hash identically, however
they were produced.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import TuningError
from repro.estimation.registry import run_pipeline
from repro.estimation.workflow import DEFAULT_QUALITY, QualityThresholds
from repro.exec.runner import ParallelRunner, default_runner
from repro.selection.codegen import generate_python
from repro.selection.decision_table import build_decision_table
from repro.selection.model_based import ModelBasedSelector
from repro.service.artifact import (
    ArtifactEntry,
    SelectionArtifact,
    calibration_kwargs,
    fabric_calibration_overrides,
    stamp_guidelines,
)

__all__ = ["rebuild_artifact"]


def rebuild_artifact(
    artifact: SelectionArtifact,
    spec: ClusterSpec,
    operations: Sequence[str] | None = None,
    *,
    procs: int | None = None,
    gamma_max_procs: int | None = None,
    sizes: Sequence[int] | None = None,
    max_reps: int = 8,
    seed: int = 0,
    screen_mad: float | None = None,
    retry_budget: int = 0,
    runner: ParallelRunner | None = None,
    strict: bool = False,
    thresholds: QualityThresholds = DEFAULT_QUALITY,
) -> SelectionArtifact:
    """Recalibrate ``operations`` of ``artifact`` on ``spec``; repackage.

    ``operations=None`` rebuilds every entry.  Each rebuilt operation
    re-runs its registered calibration pipeline with the given knobs
    (same names and defaults as :func:`~repro.service.artifact.
    build_artifact`, so passing the original build's values replays the
    original experiment schedule exactly), then rebuilds its decision
    table over the *existing* entry's grid and regenerates the decision
    function.  Entries outside ``operations`` are carried over untouched.

    ``strict=True`` applies both packaging gates — per-pipeline fit
    quality (:class:`~repro.errors.ArtifactError`) and guideline
    verification (:class:`~repro.errors.GuidelineViolationError`) — so a
    self-healing loop can refuse to promote a rebuild that is no better
    than the artifact it would replace.
    """
    wanted = (
        list(artifact.operations)
        if operations is None
        else sorted(dict.fromkeys(operations))
    )
    missing = [op for op in wanted if op not in artifact.entries]
    if missing:
        raise TuningError(
            f"cannot rebuild {', '.join(missing)}: artifact "
            f"{artifact.artifact_id} only carries "
            f"{', '.join(artifact.operations)}"
        )
    if not wanted:
        raise TuningError("rebuild_artifact needs at least one operation")
    fabric_name, fabric_kwargs, per_op_algorithms = (
        fabric_calibration_overrides(spec)
    )
    if fabric_name != artifact.fabric:
        raise TuningError(
            f"fabric mismatch: artifact {artifact.artifact_id} was "
            f"conditioned on {artifact.fabric or 'a flat cluster'!s}, "
            f"spec {spec.name} has {fabric_name or 'a flat fabric'!s}"
        )
    runner = runner if runner is not None else default_runner()
    calib_kwargs = calibration_kwargs(
        procs=procs,
        gamma_max_procs=gamma_max_procs,
        sizes=sizes,
        max_reps=max_reps,
        seed=seed,
        screen_mad=screen_mad,
        retry_budget=retry_budget,
    )
    calib_kwargs.update(fabric_kwargs)

    with obs.span(
        "artifact.rebuild",
        cluster=spec.name,
        operations=",".join(wanted),
        parent=artifact.content_hash()[:12],
    ) as rebuild_span:
        entries = dict(artifact.entries)
        quality = dict(artifact.quality)
        for operation in wanted:
            old = artifact.entries[operation]
            op_kwargs = dict(calib_kwargs)
            if operation in per_op_algorithms:
                op_kwargs["algorithms"] = per_op_algorithms[operation]
            with obs.span("artifact.calibrate", operation=operation):
                outcome = run_pipeline(
                    spec, operation, runner=runner,
                    strict=strict, thresholds=thresholds, **op_kwargs,
                )
            report = outcome.quality_report()
            if report:
                quality[operation] = report
            else:
                quality.pop(operation, None)
            with obs.span("artifact.tables", operation=operation):
                table = build_decision_table(
                    ModelBasedSelector(outcome.platform),
                    old.table.proc_points,
                    old.table.size_points,
                )
            with obs.span("artifact.codegen", operation=operation):
                entries[operation] = ArtifactEntry(
                    operation=operation,
                    platform=outcome.platform,
                    table=table,
                    function_name=old.function_name,
                    source=generate_python(
                        table, function_name=old.function_name
                    ),
                )
        rebuilt = SelectionArtifact(
            cluster=artifact.cluster,
            cluster_fingerprint=spec.fingerprint(),
            entries=entries,
            builder_version=artifact.builder_version,
            fabric=artifact.fabric,
            quality=quality,
            build_info={
                "batch": runner.batch,
                "rebuilt": wanted,
                "parent": artifact.content_hash(),
            },
        )
        rebuilt = stamp_guidelines(rebuilt, strict=strict)
        rebuild_span.set_attr("artifact_id", rebuilt.artifact_id)
        rebuild_span.set_attr(
            "changed", rebuilt.content_hash() != artifact.content_hash()
        )
    return rebuilt
