"""Common interface of broadcast performance models.

Every model — derived or traditional — predicts the broadcast time as a
function that is *linear in the Hockney parameters*::

    T(P, m) = c_α(P, m, m_s) · α  +  c_β(P, m, m_s) · β

The coefficient pair is exposed explicitly (:meth:`BcastModel.coefficients`)
because the paper's α/β estimation (§4.2, Fig. 4) needs it: each
communication experiment contributes one linear equation whose coefficients
come straight from the model of the algorithm inside the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.errors import EstimationError
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams


@dataclass(frozen=True)
class LinearCoefficients:
    """Coefficients of ``T = c_alpha * α + c_beta * β``."""

    c_alpha: float
    c_beta: float

    def evaluate(self, params: HockneyParams) -> float:
        return self.c_alpha * params.alpha + self.c_beta * params.beta

    def __add__(self, other: "LinearCoefficients") -> "LinearCoefficients":
        return LinearCoefficients(
            self.c_alpha + other.c_alpha, self.c_beta + other.c_beta
        )


def segment_count(nbytes: int, segment_size: int) -> int:
    """Number of segments ``n_s`` (1 when segmentation is off)."""
    if nbytes < 0:
        raise EstimationError(f"negative message size {nbytes}")
    if nbytes == 0:
        return 1
    if segment_size <= 0 or segment_size >= nbytes:
        return 1
    return ceil(nbytes / segment_size)


class BcastModel:
    """Base class: an analytical model of one broadcast algorithm.

    Subclasses implement :meth:`coefficients`; prediction and the canonical
    estimation form come for free.  ``algorithm`` names the catalogue entry
    in :data:`repro.collectives.BCAST_ALGORITHMS` the model describes.
    """

    #: Catalogue name of the modelled algorithm (e.g. ``"binomial"``).
    algorithm: str = ""

    #: Names of extra constructor keywords this model accepts beyond
    #: ``gamma`` (e.g. ``("group_ranks",)``).  ``PlatformModel`` forwards
    #: matching entries of its ``model_params`` when instantiating.
    extra_params: tuple[str, ...] = ()

    #: Whether an empty payload makes the collective a no-op.  True for
    #: every data-moving collective (a count-0 bcast/reduce returns
    #: immediately in MPI, and the simulator sends nothing — see
    #: ``plan_segments``); barrier models override this to False because
    #: their payload is *always* 0 bytes and the synchronisation they
    #: model is real work.
    zero_bytes_noop: bool = True

    def __init__(self, gamma: GammaFunction):
        self.gamma = gamma

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int
    ) -> LinearCoefficients:
        """The ``(c_α, c_β)`` pair for one broadcast invocation."""
        raise NotImplementedError

    def predict(
        self, procs: int, nbytes: int, segment_size: int, params: HockneyParams
    ) -> float:
        """Predicted broadcast time under the given Hockney parameters."""
        self._check(procs, nbytes)
        if procs == 1:
            return 0.0
        if nbytes == 0 and self.zero_bytes_noop:
            # Matches the simulator and MPI semantics: an empty collective
            # costs nothing, so model and measurement agree at m = 0.
            return 0.0
        return self.coefficients(procs, nbytes, segment_size).evaluate(params)

    @staticmethod
    def _check(procs: int, nbytes: int) -> None:
        if procs < 1:
            raise EstimationError(f"need at least one process, got {procs}")
        if nbytes < 0:
            raise EstimationError(f"negative message size {nbytes}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} algorithm={self.algorithm!r}>"
