"""Direct paper-fidelity checks that cost unit-test time.

These pin facts the paper states explicitly — independent of the
simulator's calibration — so regressions against the source material are
caught without running the benchmark suite.
"""

import pytest

from repro.selection.ompi_fixed import ompi_bcast_decision
from repro.units import KiB, MiB, log_spaced_sizes


class TestTable3OmpiColumn:
    """Table 3's "Open MPI" column: the exact picks the paper reports."""

    #: (size, expected algorithm) for both P=90 (Grisou) and P=100 (Gros).
    PAPER_OMPI_PICKS = [
        (8 * KiB, "split_binary"),
        (16 * KiB, "split_binary"),
        (32 * KiB, "split_binary"),
        (64 * KiB, "split_binary"),
        (128 * KiB, "split_binary"),
        (256 * KiB, "split_binary"),
        (512 * KiB, "chain"),
        (1 * MiB, "chain"),
        (2 * MiB, "chain"),
        (4 * MiB, "chain"),
    ]

    @pytest.mark.parametrize("procs", [90, 100])
    def test_ported_decision_matches_papers_reported_picks(self, procs):
        for nbytes, expected in self.PAPER_OMPI_PICKS:
            choice = ompi_bcast_decision(procs, nbytes)
            assert choice.algorithm == expected, (procs, nbytes)

    def test_paper_notes_binomial_only_below_2kb(self):
        """§5.3: "Open MPI only selects the binomial tree algorithm for
        broadcasting messages smaller than 2 KB"."""
        assert ompi_bcast_decision(100, 2047).algorithm == "binomial"
        assert ompi_bcast_decision(100, 2048).algorithm != "binomial"

    def test_split_binary_pick_uses_1kb_segments(self):
        """The paper's 8 KB row: split-binary with 1 KB segments."""
        choice = ompi_bcast_decision(90, 8 * KiB)
        assert choice.segment_size == 1 * KiB


class TestPaperConstants:
    def test_sweep_is_the_papers_ten_sizes(self):
        """§5.2/§5.3: ten sizes, 8 KB..4 MB, constant log step."""
        sizes = log_spaced_sizes(8 * KiB, 4 * MiB, 10)
        assert len(sizes) == 10
        assert sizes[0] == 8 * KiB and sizes[-1] == 4 * MiB

    def test_paper_segment_size_is_8kb(self):
        from repro.estimation.gamma import DEFAULT_SEGMENT_SIZE

        assert DEFAULT_SEGMENT_SIZE == 8 * KiB

    def test_precision_default_is_papers_2_5_percent(self):
        import inspect

        from repro.estimation.statistics import adaptive_measure

        signature = inspect.signature(adaptive_measure)
        assert signature.parameters["precision"].default == 0.025
        assert signature.parameters["confidence"].default == 0.95

    def test_gamma_range_covers_paper_fanouts(self):
        """§5.2: experiments from P=2 to P=7 suffice for both clusters."""
        from repro.estimation.gamma import DEFAULT_MAX_PROCS

        assert DEFAULT_MAX_PROCS == 7

    def test_calibration_procs_conventions(self):
        """§4.2: "approximately equal to the half of the total number of
        nodes" — our default mirrors that."""
        from repro.clusters import GROS
        from repro.estimation.alphabeta import estimate_alpha_beta  # noqa: F401

        assert GROS.max_procs // 2 == 62  # the default the code derives


class TestEq6Reference:
    def test_eq6_hand_computed_value(self):
        """Eq. 6 at P=8, n_s=3 (the Fig. 3 configuration) with γ≡1.

        Substituting γ≡1 into Eq. 6 gives ``n_s + floor(log2 P) - 2`` —
        one *less* than Eq. 4's raw stage count ``floor(log2 P) + n_s - 1``
        because of Eq. 6's trailing ``-1`` overlap correction."""
        from repro.models.derived import BinomialTreeModel
        from repro.models.gamma import GammaFunction
        from repro.models.hockney import HockneyParams

        model = BinomialTreeModel(GammaFunction.ideal())
        tau = 1.0  # alpha=1, beta=0: count stages directly
        predicted = model.predict(8, 3 * 8192, 8192, HockneyParams(tau, 0.0))
        assert predicted == pytest.approx(3 + 3 - 2)
