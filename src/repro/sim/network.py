"""Cluster fabric model: hosts, NICs, and message transfer timing.

The model captures the mechanisms that the paper's results hinge on:

* **Egress serialisation.**  A host injects bytes into the network through
  one NIC; concurrent sends from the same rank serialise their injection
  (per-message fixed cost plus a per-byte cost).  This is what makes the
  non-blocking linear broadcast slower than a single point-to-point message
  and hence what the paper's ``γ(P)`` parameter measures.
* **Parallel wire latency.**  Once injected, messages to different
  destinations propagate concurrently; only the injection is serial.
* **Ingress serialisation.**  A host drains incoming bytes through one NIC;
  P-1 simultaneous messages to the root (the linear gather used in the
  paper's α/β experiments) serialise on arrival, giving the
  ``(P-1)(α + m_g β)`` gather term of the paper's Eq. 8.
* **Eager vs rendezvous point-to-point protocol.**  Messages up to
  ``eager_limit`` are buffered (the send completes locally once injected);
  larger messages complete only after a ready-to-send/clear-to-send
  handshake, like Open MPI's TCP BTL.
* **Intra-node shared-memory transfers.**  Ranks mapped to the same node
  bypass the NIC (Grisou runs two ranks per node in the paper).

The fabric computes *timings*; queueing state is a single ``free_at`` clock
per NIC direction, which is exact for serially-reserved resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.noise import LognormalNoise, NoNoise, NoiseModel


@dataclass(frozen=True)
class NetworkParams:
    """Physical parameters of a simulated cluster fabric.

    All times are seconds; per-byte costs are seconds/byte.
    """

    #: One-way wire + switch latency between any two hosts.
    latency: float
    #: Per-byte egress (injection) cost at the sending host's NIC.
    byte_time_out: float
    #: Per-byte ingress (drain) cost at the receiving host's NIC.
    byte_time_in: float
    #: Fixed NIC/driver cost per injected message (serialised at egress).
    per_message_overhead: float
    #: CPU time charged to the sending rank per send/isend call.
    send_overhead: float
    #: CPU-side time to hand a matched message to the receiving rank.
    recv_overhead: float
    #: Messages strictly larger than this use the rendezvous protocol.
    eager_limit: int
    #: One-way latency of a tiny control message (RTS/CTS).
    control_latency: float
    #: Latency of an intra-node (shared memory) transfer.
    shm_latency: float
    #: Per-byte cost of an intra-node transfer (memory copy).
    shm_byte_time: float

    def __post_init__(self) -> None:
        for name in (
            "latency",
            "byte_time_out",
            "byte_time_in",
            "per_message_overhead",
            "send_overhead",
            "recv_overhead",
            "control_latency",
            "shm_latency",
            "shm_byte_time",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"NetworkParams.{name} must be >= 0")
        if self.eager_limit < 0:
            raise ValueError("NetworkParams.eager_limit must be >= 0")


class TransferTiming:
    """Timestamps of one message transfer.

    ``inject_end`` is when the sender's NIC finishes injecting (local
    completion for eager sends); ``deliver`` is when the last byte is
    available at the receiving host.

    A plain ``__slots__`` class rather than a dataclass: one instance is
    built per simulated message, which makes construction cost part of the
    simulator's innermost loop.
    """

    __slots__ = ("inject_start", "inject_end", "deliver")

    def __init__(
        self, inject_start: float, inject_end: float, deliver: float
    ) -> None:
        if not inject_start <= inject_end <= deliver:
            raise SimulationError(
                f"non-monotonic transfer timing: {inject_start} "
                f"-> {inject_end} -> {deliver}"
            )
        self.inject_start = inject_start
        self.inject_end = inject_end
        self.deliver = deliver

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransferTiming({self.inject_start!r}, {self.inject_end!r}, "
            f"{self.deliver!r})"
        )


class _Nic:
    """One direction of a NIC: a serially-reserved resource."""

    __slots__ = ("free_at",)

    def __init__(self) -> None:
        self.free_at = 0.0

    def reserve(self, ready: float, duration: float) -> tuple[float, float]:
        start = ready if ready > self.free_at else self.free_at
        end = start + duration
        self.free_at = end
        return start, end

    def reset(self) -> None:
        self.free_at = 0.0


class _TopologyState:
    """Reservation state for a non-flat :class:`~repro.fabric.FabricSpec`.

    Built once per :class:`Fabric` (i.e. per simulation run) from the
    declarative spec: per-rack uplink/downlink NIC clocks, optional pod
    tier, and the node→rack map.  Inter-rack payloads serialise on the
    source rack's uplink and the destination rack's downlink between
    host injection and host ingress, which is what makes oversubscribed
    uplinks a genuine bottleneck for algorithms that cross rack
    boundaries often.
    """

    __slots__ = (
        "rack_of",
        "pod_of",
        "up_links",
        "up",
        "down",
        "pod_link",
        "pod_up",
        "pod_down",
    )

    def __init__(self, spec, num_nodes: int) -> None:
        racks = spec.racks_for(num_nodes)
        self.rack_of = [spec.rack_of(node) for node in range(num_nodes)]
        self.pod_of = [spec.pod_of(rack) for rack in range(racks)]
        self.up_links = [spec.uplink_of(rack) for rack in range(racks)]
        self.up = [
            [_Nic() for _ in range(link.count)] for link in self.up_links
        ]
        self.down = [
            [_Nic() for _ in range(link.count)] for link in self.up_links
        ]
        if spec.pod_racks > 0:
            pods = max(self.pod_of) + 1
            self.pod_link = spec.pod_uplink
            self.pod_up = [
                [_Nic() for _ in range(self.pod_link.count)]
                for _ in range(pods)
            ]
            self.pod_down = [
                [_Nic() for _ in range(self.pod_link.count)]
                for _ in range(pods)
            ]
        else:
            self.pod_link = None
            self.pod_up = []
            self.pod_down = []

    @staticmethod
    def _reserve(
        nics: list[_Nic], ready: float, duration: float
    ) -> tuple[float, float]:
        # Parallel physical links: traffic takes the least-loaded one.
        if len(nics) > 1:
            nic = min(nics, key=lambda n: n.free_at)
        else:
            nic = nics[0]
        return nic.reserve(ready, duration)

    def arrive(
        self,
        src: int,
        dst: int,
        nbytes: int,
        inject_end: float,
        wire_latency: float,
        factor: float,
    ) -> float:
        """When the payload's last byte reaches ``dst``'s host NIC.

        ``wire_latency`` is the host-level latency term (already noise-
        scaled by the caller); ``factor`` scales the uplink hop costs so
        noisy and faulty fabrics perturb the whole path consistently.
        """
        rack_src = self.rack_of[src]
        rack_dst = self.rack_of[dst]
        if rack_src == rack_dst:
            return inject_end + wire_latency
        up = self.up_links[rack_src]
        _, t = self._reserve(
            self.up[rack_src],
            inject_end + up.latency * factor,
            nbytes * up.byte_time * factor,
        )
        if self.pod_link is not None:
            pod_src = self.pod_of[rack_src]
            pod_dst = self.pod_of[rack_dst]
            if pod_src != pod_dst:
                pl = self.pod_link
                _, t = self._reserve(
                    self.pod_up[pod_src],
                    t + pl.latency * factor,
                    nbytes * pl.byte_time * factor,
                )
                _, t = self._reserve(
                    self.pod_down[pod_dst],
                    t + pl.latency * factor,
                    nbytes * pl.byte_time * factor,
                )
        down = self.up_links[rack_dst]
        _, t = self._reserve(
            self.down[rack_dst],
            t + down.latency * factor,
            nbytes * down.byte_time * factor,
        )
        return t + wire_latency

    def control_extra(self, src: int, dst: int) -> float:
        """Extra latency a control message pays for crossing racks."""
        rack_src = self.rack_of[src]
        rack_dst = self.rack_of[dst]
        if rack_src == rack_dst:
            return 0.0
        extra = (
            self.up_links[rack_src].latency + self.up_links[rack_dst].latency
        )
        if self.pod_link is not None and (
            self.pod_of[rack_src] != self.pod_of[rack_dst]
        ):
            extra += 2.0 * self.pod_link.latency
        return extra

    def reset(self) -> None:
        for tier in (self.up, self.down, self.pod_up, self.pod_down):
            for nics in tier:
                for nic in nics:
                    nic.reset()


class Host:
    """A cluster node: one or more NIC ports plus an identity.

    Multi-port hosts model nodes like Grid'5000 Grisou's, which expose
    several 10 GbE ports; ranks co-located on such a node are assigned
    distinct ports and do not contend for injection bandwidth.
    """

    __slots__ = ("node_id", "egress", "ingress")

    def __init__(self, node_id: int, ports: int = 1):
        if ports < 1:
            raise SimulationError(f"host needs at least one NIC port, got {ports}")
        self.node_id = node_id
        self.egress = [_Nic() for _ in range(ports)]
        self.ingress = [_Nic() for _ in range(ports)]

    @property
    def ports(self) -> int:
        return len(self.egress)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.node_id} ports={self.ports}>"


@dataclass
class Fabric:
    """The cluster interconnect: computes message transfer timings.

    One :class:`Fabric` is created per simulation run; NIC clocks are part
    of the run state.
    """

    params: NetworkParams
    num_nodes: int
    noise: NoiseModel = field(default_factory=NoNoise)
    ports_per_node: int = 1
    #: Per-node *egress* slowdown factors (>= 1), e.g. ``{60: 6.0}``: the
    #: node's outgoing injection runs six times slower (a collapsed TCP
    #: congestion window, a flapping link).  Egress-only on purpose: every
    #: broadcast participant must *receive* the message whatever the
    #: algorithm, but only algorithms that route traffic *through* the sick
    #: node pay its send-side pathology — which is what makes long
    #: pipelines collapse while leaving tree leaves harmless.
    degradation: dict = field(default_factory=dict)
    #: Optional multi-level physical topology (a
    #: :class:`repro.fabric.FabricSpec`).  ``None`` or a flat spec keeps
    #: the single-switch model bit-identical to the pre-fabric code.
    topology: object = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("fabric needs at least one node")
        for node, factor in self.degradation.items():
            if not 0 <= node < self.num_nodes:
                raise SimulationError(f"degraded node {node} outside fabric")
            if factor < 1.0:
                raise SimulationError(
                    f"degradation factor must be >= 1, got {factor} for node {node}"
                )
        self.hosts = [Host(i, self.ports_per_node) for i in range(self.num_nodes)]
        self.bytes_transferred = 0
        self.messages_transferred = 0
        # Deterministic fabrics (the default in tests and benchmarks) skip
        # the per-cost noise draws entirely: ``transfer`` is the simulator's
        # innermost loop, and four virtual calls per message add up.  The
        # check is deliberately exact about *which* models are unit-valued:
        # other models (e.g. a spiking mixture) may carry a zero ``sigma``
        # attribute yet still produce non-unit factors.
        self._unit_noise = isinstance(self.noise, NoNoise) or (
            isinstance(self.noise, LognormalNoise) and self.noise.sigma == 0.0
        )
        # ``None`` for flat fabrics, so the transfer hot path pays a
        # single attribute check and nothing else.
        if self.topology is not None and not self.topology.is_flat():
            self._topo = _TopologyState(self.topology, self.num_nodes)
        else:
            self._topo = None

    def _slowdown(self, node: int) -> float:
        return self.degradation.get(node, 1.0)

    def host(self, node_id: int) -> Host:
        return self.hosts[node_id]

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        ready: float,
        src_port: int = 0,
        dst_port: int = 0,
    ) -> TransferTiming:
        """Timing of moving ``nbytes`` from node ``src`` to node ``dst``.

        ``ready`` is the earliest time the payload can start moving (after
        the sender's CPU overhead, and after CTS for rendezvous sends).
        ``src_port``/``dst_port`` select the NIC port on multi-port hosts.
        """
        if nbytes < 0:
            raise SimulationError(f"negative message size: {nbytes}")
        self.bytes_transferred += nbytes
        self.messages_transferred += 1
        p = self.params
        if self._unit_noise:
            # Fast path: every noise factor is exactly 1, so the costs are
            # pure arithmetic on the (hoisted) fabric constants.
            if src == dst:
                inject_end = ready + nbytes * p.shm_byte_time
                return TransferTiming(
                    ready, inject_end, inject_end + p.shm_latency
                )
            inject_cost = p.per_message_overhead + nbytes * p.byte_time_out
            if self.degradation:
                inject_cost *= self.degradation.get(src, 1.0)
            inject_start, inject_end = self.hosts[src].egress[src_port].reserve(
                ready, inject_cost
            )
            if self._topo is None:
                arrive = inject_end + p.latency
            else:
                arrive = self._topo.arrive(
                    src, dst, nbytes, inject_end, p.latency, 1.0
                )
            _, deliver = self.hosts[dst].ingress[dst_port].reserve(
                arrive, nbytes * p.byte_time_in
            )
            return TransferTiming(inject_start, inject_end, deliver)
        if src == dst:
            # Intra-node: one memory copy by the sender, no NIC involvement.
            copy = nbytes * p.shm_byte_time * self.noise.factor()
            inject_end = ready + copy
            deliver = inject_end + p.shm_latency * self.noise.factor()
            return TransferTiming(ready, inject_end, deliver)
        src_host = self.hosts[src]
        dst_host = self.hosts[dst]
        inject_cost = (
            (p.per_message_overhead + nbytes * p.byte_time_out)
            * self.noise.factor()
            * self._slowdown(src)
        )
        inject_start, inject_end = src_host.egress[src_port].reserve(
            ready, inject_cost
        )
        if self._topo is None:
            arrive = inject_end + p.latency * self.noise.factor()
        else:
            hop_factor = self.noise.factor()
            arrive = self._topo.arrive(
                src, dst, nbytes, inject_end, p.latency * hop_factor, hop_factor
            )
        drain_cost = nbytes * p.byte_time_in * self.noise.factor()
        _, deliver = dst_host.ingress[dst_port].reserve(arrive, drain_cost)
        return TransferTiming(inject_start, inject_end, deliver)

    def control_transfer(self, src: int, dst: int, ready: float) -> float:
        """Delivery time of a tiny control message (rendezvous RTS/CTS).

        Control messages ride a fast path: they pay only control latency (no
        NIC byte serialisation), or a shared-memory hop intra-node.
        """
        p = self.params
        if self._unit_noise:
            if src == dst:
                return ready + p.shm_latency
            deliver = ready + p.control_latency
            if self._topo is not None:
                deliver += self._topo.control_extra(src, dst)
            return deliver
        if src == dst:
            return ready + p.shm_latency * self.noise.factor()
        deliver = ready + p.control_latency * self.noise.factor()
        if self._topo is not None:
            deliver += self._topo.control_extra(src, dst)
        return deliver

    def reset(self) -> None:
        """Clear NIC clocks and counters (between measurement repetitions)."""
        for host in self.hosts:
            for nic in host.egress:
                nic.reset()
            for nic in host.ingress:
                nic.reset()
        if self._topo is not None:
            self._topo.reset()
        self.bytes_transferred = 0
        self.messages_transferred = 0
