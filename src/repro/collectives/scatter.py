"""Scatter algorithms (extension: the paper's future-work collectives).

Ports of ``coll_base_scatter.c``: basic linear (the root sends each rank
its block directly) and binomial (the root sends whole subtree blocks down
the binomial tree, halving the payload per level).  ``nbytes`` is the
per-rank block size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mpi.communicator import Communicator
from repro.sim.engine import SimGen
from repro.topology import build_binomial_tree

#: Tag used by scatter traffic.
TAG_SCATTER = 6_000


def scatter_linear(comm: Communicator, root: int, nbytes: int) -> SimGen:
    """Basic linear scatter: P-1 direct sends from the root."""
    if comm.size == 1 or nbytes == 0:
        return
    if comm.rank == root:
        requests = []
        for peer in range(comm.size):
            if peer != root:
                request = yield from comm.isend(peer, nbytes, tag=TAG_SCATTER)
                requests.append(request)
        yield from comm.waitall(requests)
    else:
        yield from comm.recv(root, tag=TAG_SCATTER)


def scatter_binomial(comm: Communicator, root: int, nbytes: int) -> SimGen:
    """Binomial scatter: each hop carries the receiver's whole subtree.

    The root sends ``subtree_size * nbytes`` to each child; interior nodes
    peel off their own block and forward the rest subtree by subtree.
    """
    if comm.size == 1 or nbytes == 0:
        return
    tree = build_binomial_tree(comm.size, root)
    rank = comm.rank
    if rank != root:
        yield from comm.recv(tree.parent[rank], tag=TAG_SCATTER)
    requests = []
    for child in tree.children[rank]:
        block = tree.subtree_size(child) * nbytes
        request = yield from comm.isend(child, block, tag=TAG_SCATTER)
        requests.append(request)
    if requests:
        yield from comm.waitall(requests)


@dataclass(frozen=True)
class ScatterAlgorithm:
    """Catalogue entry for one scatter algorithm."""

    name: str
    display_name: str
    func: Callable[[Communicator, int, int], SimGen]

    def __call__(self, comm: Communicator, root: int, nbytes: int) -> SimGen:
        return self.func(comm, root, nbytes)


#: Scatter algorithm catalogue.
SCATTER_ALGORITHMS: dict[str, ScatterAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        ScatterAlgorithm("linear", "Basic linear", scatter_linear),
        ScatterAlgorithm("binomial", "Binomial tree", scatter_binomial),
    )
}
