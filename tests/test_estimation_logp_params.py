"""Tests for the LogP-family measurement procedures."""

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import EstimationError
from repro.estimation.logp_params import measure_loggp, measure_logp, measure_plogp
from repro.units import KiB

NET = MINICLUSTER.network


@pytest.fixture(scope="module")
def logp():
    return measure_logp(MINICLUSTER, nbytes=1)


class TestLogPMeasurement:
    def test_send_overhead_matches_platform(self, logp):
        assert logp.send_overhead == pytest.approx(NET.send_overhead, rel=0.05)

    def test_gap_reflects_per_message_injection(self, logp):
        """For 1-byte messages the gap is the fixed per-message NIC cost
        plus the pacing of the sender's overhead."""
        minimum = max(NET.per_message_overhead, NET.send_overhead)
        assert logp.gap >= 0.9 * minimum
        assert logp.gap < 10 * minimum

    def test_latency_close_to_wire_latency(self, logp):
        assert logp.latency == pytest.approx(NET.latency, rel=0.35)

    def test_p2p_prediction_close_to_simulated(self, logp):
        from repro.measure import time_p2p_roundtrip

        measured = time_p2p_roundtrip(MINICLUSTER, 1)
        assert logp.p2p_time() == pytest.approx(measured, rel=0.25)

    def test_burst_validation(self):
        with pytest.raises(EstimationError):
            measure_logp(MINICLUSTER, burst=1)


class TestLogGPMeasurement:
    def test_gap_per_byte_matches_link(self):
        loggp = measure_loggp(MINICLUSTER)
        assert loggp.gap_per_byte == pytest.approx(NET.byte_time_out, rel=0.1)

    def test_requires_increasing_sizes(self):
        with pytest.raises(EstimationError):
            measure_loggp(MINICLUSTER, small=1024, large=1024)


class TestPLogPMeasurement:
    @pytest.fixture(scope="class")
    def plogp(self):
        return measure_plogp(
            MINICLUSTER, sizes=(1, 1 * KiB, 8 * KiB, 64 * KiB)
        )

    def test_gap_grows_with_size(self, plogp):
        assert plogp.g_fn(64 * KiB) > plogp.g_fn(1)

    def test_interpolation_between_measured_sizes(self, plogp):
        middle = plogp.g_fn(4 * KiB)
        assert plogp.g_fn(1 * KiB) < middle < plogp.g_fn(8 * KiB)

    def test_extrapolation_beyond_table(self, plogp):
        assert plogp.g_fn(256 * KiB) > plogp.g_fn(64 * KiB)

    def test_needs_two_sizes(self):
        with pytest.raises(EstimationError):
            measure_plogp(MINICLUSTER, sizes=(1,))
