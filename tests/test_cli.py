"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_parser, main, parse_size
from repro.errors import ReproError
from repro.units import KiB, MiB


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("8K", 8 * KiB),
            ("8k", 8 * KiB),
            ("8KB", 8 * KiB),
            ("8KiB", 8 * KiB),
            ("4M", 4 * MiB),
            ("512", 512),
            ("1.5K", 1536),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_size("lots")


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "clusters",
            "calibrate",
            "predict",
            "select",
            "table1",
            "table2",
            "table3",
            "fig5",
            "reduce-table",
            "decision-table",
        ):
            assert command in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_clusters(self, capsys):
        assert main(["clusters"]) == 0
        out = capsys.readouterr().out
        assert "grisou" in out and "gros" in out

    @pytest.fixture(scope="class")
    def calibration_file(self, tmp_path_factory, mini_platform):
        path = tmp_path_factory.mktemp("cli") / "mini.json"
        mini_platform.save(path)
        return path

    def test_select(self, capsys, calibration_file):
        code = main(
            ["select", "--calibration", str(calibration_file), "-P", "12", "-m", "256K"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P=12" in out and "predicted" in out

    def test_predict_lists_all_algorithms(self, capsys, calibration_file):
        code = main(
            ["predict", "--calibration", str(calibration_file), "-P", "8", "-m", "64K"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("binary", "binomial", "chain", "linear", "split_binary"):
            assert name in out

    def test_decision_table(self, capsys, calibration_file, tmp_path):
        output = tmp_path / "table.json"
        code = main(
            [
                "decision-table",
                "--calibration",
                str(calibration_file),
                "--output",
                str(output),
                "--min-procs",
                "2",
                "--max-procs",
                "8",
                "--procs-step",
                "2",
            ]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert data["proc_points"] == [2, 4, 6, 8]
        assert len(data["size_points"]) == 10

    def test_error_reported_as_exit_code(self, capsys):
        code = main(["calibrate", "--cluster", "atlantis", "--output", "/tmp/x.json"])
        assert code == 1
        assert "unknown cluster" in capsys.readouterr().err
