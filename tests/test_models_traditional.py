"""Tests for the traditional (definition-based) models."""

import math

import pytest

from repro.models.hockney import HockneyParams
from repro.models.traditional import (
    TRADITIONAL_BCAST_MODELS,
    TraditionalBinaryModel,
    TraditionalBinomialModel,
    TraditionalChainModel,
    TraditionalLinearModel,
)
from repro.models.derived import BinaryTreeModel, BinomialTreeModel
from repro.models.gamma import GammaFunction
from repro.units import KiB, MiB

PARAMS = HockneyParams(alpha=50e-6, beta=1e-9)
SEGMENT = 8 * KiB


class TestFormulas:
    def test_binomial_is_thakur_log_formula(self):
        model = TraditionalBinomialModel()
        procs, nbytes = 90, 1 * MiB
        rounds = math.ceil(math.log2(procs))
        expected = rounds * (PARAMS.alpha + nbytes * PARAMS.beta)
        assert model.predict(procs, nbytes, SEGMENT, PARAMS) == pytest.approx(expected)

    def test_binomial_ignores_segmentation(self):
        model = TraditionalBinomialModel()
        with_seg = model.predict(16, 1 * MiB, SEGMENT, PARAMS)
        without = model.predict(16, 1 * MiB, 0, PARAMS)
        assert with_seg == without

    def test_binary_doubles_per_stage_cost(self):
        traditional = TraditionalBinaryModel()
        derived = BinaryTreeModel(GammaFunction({3: 1.1}))
        # Same structure, but factor 2 instead of gamma(3)=1.1.
        t_traditional = traditional.predict(15, 64 * KiB, SEGMENT, PARAMS)
        t_derived = derived.predict(15, 64 * KiB, SEGMENT, PARAMS)
        assert t_traditional == pytest.approx(t_derived * 2 / 1.1)

    def test_chain_charges_latency_per_segment_unlike_derived(self):
        """The textbook pipeline charges alpha on every stage; the derived
        model (reading the double-buffered implementation) charges it only
        on the P-1 fill hops, so for many segments the traditional estimate
        exceeds the derived one by ~n_s * alpha."""
        from repro.models.derived import ChainTreeModel

        traditional = TraditionalChainModel()
        derived = ChainTreeModel(GammaFunction.ideal())
        procs, nbytes = 10, 1 * MiB  # n_s = 128
        gap = traditional.predict(procs, nbytes, SEGMENT, PARAMS) - derived.predict(
            procs, nbytes, SEGMENT, PARAMS
        )
        segments = nbytes // SEGMENT
        assert gap == pytest.approx((segments - 1) * PARAMS.alpha)

    def test_chain_single_segment_agrees_with_derived(self):
        from repro.models.derived import ChainTreeModel

        traditional = TraditionalChainModel()
        derived = ChainTreeModel(GammaFunction.ideal())
        assert traditional.predict(10, SEGMENT, SEGMENT, PARAMS) == pytest.approx(
            derived.predict(10, SEGMENT, SEGMENT, PARAMS)
        )

    def test_linear_matches_derived(self):
        traditional = TraditionalLinearModel()
        assert traditional.predict(10, 64 * KiB, 0, PARAMS) == pytest.approx(
            9 * (PARAMS.alpha + 64 * KiB * PARAMS.beta)
        )


class TestDivergenceFromDerived:
    """The quantitative gap the paper's Fig. 1 illustrates."""

    def test_traditional_binomial_overestimates_segmented_reality(self):
        """Without segmentation, the log-formula scales the *whole* message
        by the tree depth; the derived pipelined model is far cheaper for
        large messages."""
        gamma = GammaFunction({3: 1.11, 4: 1.22, 5: 1.28, 6: 1.45, 7: 1.54})
        traditional = TraditionalBinomialModel()
        derived = BinomialTreeModel(gamma)
        big = 4 * MiB
        # Realistic per-segment latency (a few microseconds, as the fitted
        # in-context alphas come out); with it the pipelined reality is far
        # below the whole-message log-depth estimate.
        params = HockneyParams(alpha=5e-6, beta=1e-9)
        t_traditional = traditional.predict(90, big, SEGMENT, params)
        t_derived = derived.predict(90, big, SEGMENT, params)
        assert t_traditional > 2 * t_derived

    def test_registry_covers_all_six(self):
        assert sorted(TRADITIONAL_BCAST_MODELS) == [
            "binary",
            "binomial",
            "chain",
            "k_chain",
            "linear",
            "split_binary",
        ]

    @pytest.mark.parametrize("name", sorted(TRADITIONAL_BCAST_MODELS))
    def test_accepts_and_ignores_gamma_argument(self, name):
        gamma = GammaFunction({3: 9.9})
        model = TRADITIONAL_BCAST_MODELS[name](gamma)
        assert model.gamma(3) == 1.0  # replaced by the ideal gamma

    @pytest.mark.parametrize("name", sorted(TRADITIONAL_BCAST_MODELS))
    def test_positive_and_monotone(self, name):
        model = TRADITIONAL_BCAST_MODELS[name](None)
        times = [
            model.predict(16, m, SEGMENT, PARAMS)
            for m in (8 * KiB, 128 * KiB, 2 * MiB)
        ]
        assert times[0] > 0
        assert times == sorted(times)
