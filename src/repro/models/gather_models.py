"""Models of the gather algorithms.

Two roles:

* the *linear* gather is an ingredient of the paper's α/β experiments
  (Eq. 8): its coefficients are added to the broadcast model's when the
  composite experiment (broadcast + gather, Eq. 7) is turned into one
  linear equation in α and β (Fig. 4);
* both gathers are also selectable collectives in their own right
  (future-work extension), so the same coefficient forms are packaged as
  a :class:`~repro.models.base.BcastModel` family
  (:data:`DERIVED_GATHER_MODELS`) for calibration and model-based
  selection.

Model forms:

* linear (Eq. 8): the root drains ``P-1`` messages of ``m`` bytes through
  its single NIC, ``T = (P-1)·(α + m·β)``;
* binomial: leaf-to-root aggregation over an in-order binomial tree.  The
  critical path is ``ceil(log2 P)`` store-and-forward stages (each level
  must finish collecting before forwarding), while the aggregated payload
  still funnels through the root's ingress NIC — its children deliver
  subtree aggregates totalling ``(P-1)·m`` bytes — so
  ``T = ceil(log2 P)·α + (P-1)·m·β``.
"""

from __future__ import annotations

from math import ceil, log2

from repro.models.base import BcastModel, LinearCoefficients
from repro.models.hockney import HockneyParams


def linear_gather_coefficients(procs: int, gather_bytes: int) -> LinearCoefficients:
    """``(c_α, c_β)`` of the linear gather (Eq. 8)."""
    peers = max(procs - 1, 0)
    return LinearCoefficients(peers, peers * gather_bytes)


def linear_gather_time(procs: int, gather_bytes: int, params: HockneyParams) -> float:
    """Predicted linear gather time (Eq. 8)."""
    return linear_gather_coefficients(procs, gather_bytes).evaluate(params)


class _GatherModel(BcastModel):
    """Gathers are unsegmented: the segment size is ignored."""


class LinearGatherModel(_GatherModel):
    """Linear gather without synchronisation (Eq. 8)."""

    algorithm = "linear"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        return linear_gather_coefficients(procs, nbytes)


class BinomialGatherModel(_GatherModel):
    """Binomial-tree gather: log stages, root-NIC-bound payload."""

    algorithm = "binomial"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        stages = float(ceil(log2(procs)))
        return LinearCoefficients(stages, (procs - 1) * nbytes)


#: Derived gather models keyed by the gather algorithm they describe.
DERIVED_GATHER_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (LinearGatherModel, BinomialGatherModel)
}
