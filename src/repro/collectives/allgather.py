"""Allgather algorithms (extension: the paper's future-work collectives).

Ports of ``coll_base_allgather.c``: ring, recursive doubling (power-of-two
communicators; falls back to ring otherwise, as Open MPI does), neighbor
exchange (even communicators only) and Bruck.  ``nbytes`` is the per-rank
contribution size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mpi.communicator import Communicator
from repro.sim.engine import SimGen

#: Tag space for allgather rounds.
TAG_ALLGATHER = 7_000


def allgather_ring(comm: Communicator, nbytes: int) -> SimGen:
    """Ring allgather: P-1 steps, each forwarding one block."""
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    rank = comm.rank
    right = (rank + 1) % size
    left = (rank - 1 + size) % size
    for step in range(size - 1):
        tag = TAG_ALLGATHER + step
        yield from comm.sendrecv(
            dest=right, nbytes=nbytes, source=left, sendtag=tag, recvtag=tag
        )


def allgather_recursive_doubling(comm: Communicator, nbytes: int) -> SimGen:
    """Recursive doubling: log2(P) rounds with doubling payloads.

    Exact only for power-of-two communicators; other sizes fall back to the
    ring algorithm, mirroring Open MPI's guard.
    """
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    if size & (size - 1):
        yield from allgather_ring(comm, nbytes)
        return
    rank = comm.rank
    distance = 1
    round_index = 0
    block = nbytes
    while distance < size:
        partner = rank ^ distance
        tag = TAG_ALLGATHER + 100 + round_index
        yield from comm.sendrecv(
            dest=partner, nbytes=block, source=partner, sendtag=tag, recvtag=tag
        )
        block *= 2
        distance *= 2
        round_index += 1


def allgather_neighbor_exchange(comm: Communicator, nbytes: int) -> SimGen:
    """Neighbor exchange: P/2 rounds of pairwise two-block swaps.

    Defined for even communicator sizes; odd sizes fall back to the ring,
    as Open MPI does.
    """
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    if size % 2:
        yield from allgather_ring(comm, nbytes)
        return
    rank = comm.rank
    even = rank % 2 == 0
    for step in range(size // 2):
        if step == 0:
            partner = rank + 1 if even else rank - 1
            block = nbytes
        elif (step % 2 == 1) == even:
            partner = (rank - 1 + size) % size
            block = 2 * nbytes
        else:
            partner = (rank + 1) % size
            block = 2 * nbytes
        tag = TAG_ALLGATHER + 200 + step
        yield from comm.sendrecv(
            dest=partner, nbytes=block, source=partner, sendtag=tag, recvtag=tag
        )


def allgather_bruck(comm: Communicator, nbytes: int) -> SimGen:
    """Bruck allgather: ceil(log2 P) rounds, any communicator size."""
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    rank = comm.rank
    distance = 1
    round_index = 0
    while distance < size:
        send_to = (rank - distance + size) % size
        recv_from = (rank + distance) % size
        block = min(distance, size - distance) * nbytes
        tag = TAG_ALLGATHER + 300 + round_index
        recv_request = yield from comm.irecv(recv_from, tag=tag)
        send_request = yield from comm.isend(send_to, block, tag=tag)
        yield from comm.waitall([send_request, recv_request])
        distance *= 2
        round_index += 1


@dataclass(frozen=True)
class AllgatherAlgorithm:
    """Catalogue entry for one allgather algorithm."""

    name: str
    display_name: str
    func: Callable[[Communicator, int], SimGen]

    def __call__(self, comm: Communicator, nbytes: int) -> SimGen:
        return self.func(comm, nbytes)


#: Allgather algorithm catalogue.
ALLGATHER_ALGORITHMS: dict[str, AllgatherAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        AllgatherAlgorithm("ring", "Ring", allgather_ring),
        AllgatherAlgorithm(
            "recursive_doubling", "Recursive doubling", allgather_recursive_doubling
        ),
        AllgatherAlgorithm(
            "neighbor_exchange", "Neighbor exchange", allgather_neighbor_exchange
        ),
        AllgatherAlgorithm("bruck", "Bruck", allgather_bruck),
    )
}
