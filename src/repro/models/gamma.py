"""The platform function γ(P) (paper §3.1, Eq. 3 and §4.1).

``γ(P)`` is the ratio between the execution time of the *non-blocking
linear-tree broadcast* of one segment to ``P-1`` children and the time of a
single point-to-point segment transfer::

    γ(P) = T_linear_nonblock(P, m_s) / T_p2p(m_s),       γ(2) = 1.

Inside the segmented tree broadcast algorithms every interior node performs
exactly this linear broadcast to its children each stage, so γ converts
point-to-point Hockney cost into per-stage cost.

The paper estimates γ at a handful of process counts (2..7 suffice for the
tree fanouts that occur in practice) and observes the discrete estimate is
near linear, so larger arguments are served by a linear regression over the
measured points — implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EstimationError


@dataclass(frozen=True)
class GammaFunction:
    """γ(P) from a measured table plus linear extrapolation.

    ``table`` maps process counts to measured γ values; ``γ(2)`` is 1 by
    definition and is added if absent.  Calls inside the table range return
    the measured value (interpolating linearly between known points);
    calls beyond it use the fitted regression line, clamped to ≥ 1.
    """

    table: dict[int, float]
    _slope: float = field(init=False, repr=False, compare=False, default=0.0)
    _intercept: float = field(init=False, repr=False, compare=False, default=1.0)

    def __post_init__(self) -> None:
        cleaned = {2: 1.0}
        for procs, value in self.table.items():
            if procs < 2:
                raise EstimationError(f"gamma defined for P >= 2, got {procs}")
            if value <= 0:
                raise EstimationError(f"gamma({procs}) must be positive, got {value}")
            cleaned[int(procs)] = float(value)
        object.__setattr__(self, "table", cleaned)
        points = sorted(cleaned.items())
        xs = np.array([p for p, _ in points], dtype=float)
        ys = np.array([g for _, g in points], dtype=float)
        if len(points) >= 2:
            slope, intercept = np.polyfit(xs, ys, 1)
        else:  # only γ(2)=1 known: assume flat
            slope, intercept = 0.0, 1.0
        object.__setattr__(self, "_slope", float(slope))
        object.__setattr__(self, "_intercept", float(intercept))

    @property
    def max_measured(self) -> int:
        return max(self.table)

    def __call__(self, procs: int) -> float:
        """γ for a linear broadcast over ``procs`` processes (root + children)."""
        if procs <= 2:
            return 1.0
        exact = self.table.get(procs)
        if exact is not None:
            return exact
        if procs < self.max_measured:
            below = max(p for p in self.table if p < procs)
            above = min(p for p in self.table if p > procs)
            weight = (procs - below) / (above - below)
            return (1 - weight) * self.table[below] + weight * self.table[above]
        return max(1.0, self._intercept + self._slope * procs)

    def regression_line(self) -> tuple[float, float]:
        """The fitted ``(intercept, slope)`` of the linear approximation."""
        return self._intercept, self._slope

    @classmethod
    def ideal(cls) -> "GammaFunction":
        """γ ≡ 1: every per-stage send is as cheap as one point-to-point.

        This is what traditional models implicitly assume; exposed for the
        model-structure ablation.
        """
        return cls(table={2: 1.0})
