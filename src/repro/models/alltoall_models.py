"""Models of the alltoall algorithms.

``nbytes`` is the per-pair block size.  Alltoall is single-port bound:
each rank must egress and ingest ``(P-1)·m`` bytes whatever the schedule,
so — as with allgather — the algorithms differ in their latency terms and
in how much extra traffic Bruck's block bundling pays:

* basic linear: all ``P-1`` sends and receives posted at once; the NIC
  still serialises the ``P-1`` message overheads —
  ``T = (P-1)·α + (P-1)·m·β``, with the fitted α absorbing the overlap
  the concurrent posting buys;
* pairwise exchange: ``P-1`` structured single-block rounds —
  ``T = (P-1)·α + (P-1)·m·β``, the same form fitted on its own
  measurements (synchronised rounds fit a larger effective α);
* Bruck: ``ceil(log2 P)`` rounds, round ``k`` bundling
  ``#{i < P : i & 2^k}`` blocks — fewer latencies but up to
  ``~(P/2)·log2(P)·m`` bytes moved, the small-message trade.
"""

from __future__ import annotations

from repro.models.base import BcastModel, LinearCoefficients


class _AlltoallModel(BcastModel):
    """Alltoalls are unsegmented: the segment size is ignored."""


class LinearAlltoallModel(_AlltoallModel):
    """Basic linear alltoall: everything posted at once."""

    algorithm = "linear"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        peers = float(procs - 1)
        return LinearCoefficients(peers, peers * nbytes)


class PairwiseAlltoallModel(_AlltoallModel):
    """Pairwise exchange: P-1 synchronised single-block rounds."""

    algorithm = "pairwise"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        peers = float(procs - 1)
        return LinearCoefficients(peers, peers * nbytes)


class BruckAlltoallModel(_AlltoallModel):
    """Bruck alltoall: log rounds of bundled blocks."""

    algorithm = "bruck"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        # Mirror the simulator's round structure exactly.
        rounds = 0
        blocks = 0
        distance = 1
        while distance < procs:
            blocks += sum(1 for index in range(procs) if index & distance)
            distance *= 2
            rounds += 1
        return LinearCoefficients(float(rounds), float(blocks) * nbytes)


#: Derived alltoall models keyed by the algorithm they describe.
DERIVED_ALLTOALL_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (LinearAlltoallModel, PairwiseAlltoallModel, BruckAlltoallModel)
}
