"""Open MPI-style message segmentation.

The tuned collective component splits a message into fixed-size segments and
pipelines them through a virtual topology; the number of segments and the
size of the (possibly short) final segment are computed exactly as
``ompi_coll_base_*`` does from a segment size in bytes.

The paper writes ``m = n_s * m_s`` (message = segments × segment size); this
module is the single authority for that arithmetic across algorithms,
analytical models and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MpiError


@dataclass(frozen=True)
class SegmentPlan:
    """How one message is cut into segments.

    ``sizes`` lists every segment's size in order; all but the last equal
    ``segment_size`` (when segmentation is active).
    """

    total_bytes: int
    segment_size: int
    sizes: tuple[int, ...]

    @property
    def num_segments(self) -> int:
        return len(self.sizes)

    def __iter__(self):
        return iter(self.sizes)


def plan_segments(total_bytes: int, segment_size: int) -> SegmentPlan:
    """Split ``total_bytes`` into segments of ``segment_size`` bytes.

    A ``segment_size`` of 0 (Open MPI's convention) or one at least as large
    as the message disables segmentation: the message is one segment.

    An *empty* message plans **zero** segments: a count-0 collective is a
    no-op in MPI (Open MPI returns before touching the network), so no
    segment — not even a zero-byte one — ever flows.  The collectives and
    the analytical models share this convention (see DESIGN.md §5); the
    earlier behaviour of planning one zero-byte segment made the simulator
    charge latency for traffic a real MPI library never sends.

    >>> plan_segments(10, 4).sizes
    (4, 4, 2)
    >>> plan_segments(10, 0).sizes
    (10,)
    >>> plan_segments(0, 4).sizes
    ()
    """
    if total_bytes < 0:
        raise MpiError(f"negative message size {total_bytes}")
    if segment_size < 0:
        raise MpiError(f"negative segment size {segment_size}")
    if total_bytes == 0:
        return SegmentPlan(0, segment_size, ())
    if segment_size == 0 or segment_size >= total_bytes:
        return SegmentPlan(total_bytes, segment_size, (total_bytes,))
    full, remainder = divmod(total_bytes, segment_size)
    sizes = [segment_size] * full
    if remainder:
        sizes.append(remainder)
    return SegmentPlan(total_bytes, segment_size, tuple(sizes))
