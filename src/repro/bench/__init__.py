"""Shared experiment harness for the benchmark suite and the CLI.

:mod:`repro.bench.runner` orchestrates the paper's experiments (selection
comparisons, model-vs-measurement curves); :mod:`repro.bench.tables`
formats them as the paper's Tables 1-3; :mod:`repro.bench.figures`
produces the data series of Figs. 1 and 5 with CSV output and ASCII plots.
"""

from repro.bench.runner import SelectionRow, selection_comparison
from repro.bench.tables import format_table1, format_table2, format_table3
from repro.bench.figures import ascii_plot, fig1_series, fig5_series, write_csv

__all__ = [
    "SelectionRow",
    "ascii_plot",
    "fig1_series",
    "fig5_series",
    "format_table1",
    "format_table2",
    "format_table3",
    "selection_comparison",
    "write_csv",
]
