"""Tests for the three selectors and the decision table."""

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import SelectionError
from repro.selection import (
    DecisionTable,
    MeasuredOracle,
    ModelBasedSelector,
    OmpiFixedSelector,
    Selection,
    build_decision_table,
    ompi_bcast_decision,
)
from repro.units import KiB, MiB


class TestSelection:
    def test_describe(self):
        assert "8 KB segments" in Selection("binary", 8 * KiB).describe()
        assert "no segmentation" in Selection("linear", 0).describe()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SelectionError):
            Selection("quantum_tree", 0)

    def test_negative_segment_rejected(self):
        with pytest.raises(SelectionError):
            Selection("binary", -1)


class TestOmpiFixedDecision:
    """Branch-by-branch checks against coll_tuned_decision_fixed.c."""

    def test_small_messages_use_binomial_unsegmented(self):
        for nbytes in (0, 1, 1024, 2047):
            assert ompi_bcast_decision(64, nbytes) == Selection("binomial", 0)

    def test_intermediate_messages_use_split_binary_1kb(self):
        for nbytes in (2048, 8 * KiB, 256 * KiB, 370727):
            choice = ompi_bcast_decision(90, nbytes)
            assert choice == Selection("split_binary", 1 * KiB)

    def test_paper_table3_boundary_512kb_is_chain_8kb(self):
        """At P=90/100 and m >= 512 KB the paper reports chain picks."""
        for procs in (90, 100):
            for nbytes in (512 * KiB, 1 * MiB, 4 * MiB):
                assert ompi_bcast_decision(procs, nbytes) == Selection(
                    "chain", 8 * KiB
                )

    def test_small_comm_large_message_uses_pipeline_128kb(self):
        # communicator_size < a_p128 * m + b_p128 for tiny communicators.
        choice = ompi_bcast_decision(2, 4 * MiB)
        assert choice == Selection("chain", 128 * KiB)

    def test_comm_below_13_uses_split_binary_8kb(self):
        # Pick m so that the p128 bound fails but size < 13.
        choice = ompi_bcast_decision(12, 400_000)
        assert choice == Selection("split_binary", 8 * KiB)

    def test_pipeline_64kb_band(self):
        # size 13..: between p128 and p64 boundaries.
        nbytes = 6_000_000
        procs = 13
        assert ompi_bcast_decision(procs, nbytes) == Selection("chain", 64 * KiB)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SelectionError):
            ompi_bcast_decision(0, 100)
        with pytest.raises(SelectionError):
            ompi_bcast_decision(4, -1)

    def test_selector_interface(self):
        selector = OmpiFixedSelector()
        assert selector.select(90, 8 * KiB) == Selection("split_binary", 1 * KiB)


class TestModelBasedSelector:
    def test_selects_minimum_prediction(self, mini_platform):
        selector = ModelBasedSelector(mini_platform)
        procs, nbytes = 12, 128 * KiB
        choice = selector.select(procs, nbytes)
        predictions = selector.predictions(procs, nbytes)
        assert predictions[choice.algorithm] == min(predictions.values())

    def test_segmented_choice_carries_segment_size(self, mini_platform):
        selector = ModelBasedSelector(mini_platform)
        choice, predicted = selector.select_with_prediction(12, 512 * KiB)
        if choice.algorithm == "linear":
            assert choice.segment_size == 0
        else:
            assert choice.segment_size == mini_platform.segment_size
        assert predicted > 0

    def test_never_selects_linear_at_scale(self, mini_platform):
        """Linear is dominated for large P and m on any sane platform."""
        selector = ModelBasedSelector(mini_platform)
        assert selector.select(16, 1 * MiB).algorithm != "linear"

    def test_empty_platform_rejected(self):
        from repro.estimation.workflow import PlatformModel
        from repro.models.gamma import GammaFunction

        empty = PlatformModel(
            cluster="x", segment_size=8 * KiB,
            gamma=GammaFunction.ideal(), parameters={},
        )
        with pytest.raises(SelectionError):
            ModelBasedSelector(empty)


class TestMeasuredOracle:
    def test_best_is_minimum_of_sweep(self):
        oracle = MeasuredOracle(MINICLUSTER, max_reps=3)
        procs, nbytes = 8, 64 * KiB
        sweep = oracle.sweep(procs, nbytes)
        choice, best_time = oracle.best(procs, nbytes)
        assert best_time == min(sweep.values())
        assert sweep[choice.algorithm] == best_time

    def test_measurements_memoised(self):
        oracle = MeasuredOracle(MINICLUSTER, max_reps=3)
        first = oracle.measure(6, 32 * KiB, "binary")
        assert oracle.measure(6, 32 * KiB, "binary") == first
        assert (6, 32 * KiB, "binary", oracle.segment_size) in oracle._cache

    def test_degradation_of_best_is_zero(self):
        oracle = MeasuredOracle(MINICLUSTER, max_reps=3)
        choice, _ = oracle.best(8, 64 * KiB)
        assert oracle.degradation(8, 64 * KiB, choice) == pytest.approx(0.0)

    def test_degradation_positive_for_bad_choice(self):
        oracle = MeasuredOracle(MINICLUSTER, max_reps=3)
        bad = Selection("linear", 0)
        if oracle.best(16, 1 * MiB)[0] != bad:
            assert oracle.degradation(16, 1 * MiB, bad) > 0

    def test_custom_segment_size_measured(self):
        oracle = MeasuredOracle(MINICLUSTER, max_reps=3)
        coarse = oracle.measure_selection(8, 1 * MiB, Selection("chain", 64 * KiB))
        fine = oracle.measure_selection(8, 1 * MiB, Selection("chain", 8 * KiB))
        assert coarse != fine


class TestDecisionTable:
    def test_build_and_lookup(self, mini_platform):
        selector = ModelBasedSelector(mini_platform)
        table = build_decision_table(
            selector, [2, 4, 8, 16], [8 * KiB, 64 * KiB, 1 * MiB]
        )
        direct = selector.select(8, 64 * KiB)
        assert table.select(8, 64 * KiB) == direct

    def test_floor_lookup_semantics(self, mini_platform):
        selector = ModelBasedSelector(mini_platform)
        table = build_decision_table(selector, [4, 8], [8 * KiB, 1 * MiB])
        # Off-grid points floor to the nearest grid point below.
        assert table.select(11, 100 * KiB) == table.select(8, 8 * KiB)
        # Below the grid clamps to the first point.
        assert table.select(2, 1024) == table.select(4, 8 * KiB)

    def test_json_round_trip(self, mini_platform, tmp_path):
        selector = ModelBasedSelector(mini_platform)
        table = build_decision_table(selector, [2, 8], [8 * KiB, 1 * MiB])
        path = tmp_path / "table.json"
        table.save(path)
        loaded = DecisionTable.load(path)
        assert loaded == table

    def test_empty_grid_rejected(self):
        with pytest.raises(SelectionError):
            DecisionTable(proc_points=(), size_points=(1,), choices=())

    def test_unsorted_grid_rejected(self):
        with pytest.raises(SelectionError):
            DecisionTable(
                proc_points=(4, 2),
                size_points=(1,),
                choices=((Selection("binary", 0),), (Selection("binary", 0),)),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SelectionError):
            DecisionTable(
                proc_points=(2, 4),
                size_points=(1,),
                choices=((Selection("binary", 0),),),
            )


class TestOmpiReduceDecision:
    """Port checks for ompi_coll_tuned_reduce_intra_dec_fixed."""

    def test_small_comm_tiny_message_is_binomial_1k(self):
        from repro.selection.ompi_fixed import ompi_reduce_decision

        choice = ompi_reduce_decision(4, 1024)
        assert choice == Selection("binomial", 1 * KiB, operation="reduce")

    def test_linear_region_grows_with_message_size(self):
        """The (in)famous property of the fixed reduce decision: the linear
        boundary a1*m + b1 overtakes any fixed communicator size, so large
        messages fall back to linear reduce."""
        from repro.selection.ompi_fixed import ompi_reduce_decision

        assert ompi_reduce_decision(100, 4 * MiB).algorithm == "linear"
        assert ompi_reduce_decision(100, 8 * KiB).algorithm == "chain"

    def test_pipeline_band_for_large_comms_small_messages(self):
        from repro.selection.ompi_fixed import ompi_reduce_decision

        choice = ompi_reduce_decision(100, 16 * KiB)
        assert choice.algorithm == "chain"
        assert choice.operation == "reduce"

    def test_selector_interface_operations(self):
        selector = OmpiFixedSelector(operation="reduce")
        assert selector.select(100, 8 * KiB).operation == "reduce"
        with pytest.raises(SelectionError):
            OmpiFixedSelector(operation="reduce_scatter")

    def test_invalid_inputs_rejected(self):
        from repro.selection.ompi_fixed import ompi_reduce_decision

        with pytest.raises(SelectionError):
            ompi_reduce_decision(0, 100)
        with pytest.raises(SelectionError):
            ompi_reduce_decision(4, -1)


class TestSelectWithSegments:
    def test_joint_selection_at_least_as_good_as_fixed(self, mini_platform):
        selector = ModelBasedSelector(mini_platform)
        procs, nbytes = 12, 512 * KiB
        _fixed = selector.select(procs, nbytes)
        _, fixed_predicted = selector.select_with_prediction(procs, nbytes)
        joint, joint_predicted = selector.select_with_segments(
            procs, nbytes, (1 * KiB, 8 * KiB, 64 * KiB)
        )
        assert joint_predicted <= fixed_predicted + 1e-15
        assert joint.segment_size in (0, 1 * KiB, 8 * KiB, 64 * KiB)

    def test_unsegmented_algorithms_participate_with_zero(self, mini_platform):
        selector = ModelBasedSelector(mini_platform)
        joint, _ = selector.select_with_segments(2, 1 * KiB, (8 * KiB,))
        if joint.algorithm == "linear":
            assert joint.segment_size == 0

    def test_prediction_matches_platform(self, mini_platform):
        selector = ModelBasedSelector(mini_platform)
        joint, predicted = selector.select_with_segments(
            10, 256 * KiB, (4 * KiB, 8 * KiB)
        )
        direct = mini_platform.predict(
            joint.algorithm, 10, 256 * KiB, segment_size=joint.segment_size
        )
        assert predicted == pytest.approx(direct)
