"""Simulated cluster platforms.

:mod:`repro.clusters.spec` defines :class:`ClusterSpec`, the bridge between
a hardware description and a runnable :class:`~repro.mpi.MpiWorld`;
:mod:`repro.clusters.presets` parameterises the two Grid'5000 clusters the
paper evaluates on (Grisou and Gros) plus a few generic platforms.
"""

from repro.clusters.presets import GRISOU, GROS, MINICLUSTER, PRESETS, get_preset
from repro.clusters.spec import ClusterSpec

__all__ = ["ClusterSpec", "GRISOU", "GROS", "MINICLUSTER", "PRESETS", "get_preset"]
