"""Benchmark: regenerate the paper's Table 2 (per-algorithm α and β).

The paper's headline observation from Table 2: *"the values of α and β do
vary depending on the collective algorithm"* — e.g. the linear tree's
effective per-byte cost is several times that of the tree algorithms, and
split-binary's effective point-to-point cost is below binary's despite the
identical virtual topology (the exchange phase parallelism).

Absolute values are platform properties and differ from the paper's
Grid'5000 numbers; the asserted shape is the *variation across algorithms*
and the physically sensible magnitudes.
"""

import pytest

from repro.bench.tables import format_table2
from repro.units import KiB


@pytest.fixture(scope="module")
def calibrations(grisou_calibration, gros_calibration):
    return {"grisou": grisou_calibration, "gros": gros_calibration}


def test_table2_alpha_beta(benchmark, calibrations, grisou):
    """Times one per-algorithm α/β fit; prints the full Table 2."""
    from repro.estimation.alphabeta import estimate_alpha_beta
    from repro.models.derived import BinomialTreeModel

    gamma = calibrations["grisou"].platform.gamma

    def run_one_fit():
        return estimate_alpha_beta(
            grisou,
            BinomialTreeModel(gamma),
            procs=16,
            sizes=[8 * KiB, 64 * KiB, 512 * KiB],
            seed=77,
        )

    benchmark.pedantic(run_one_fit, rounds=1, iterations=1)

    print()
    print(format_table2({c: r.alpha_beta for c, r in calibrations.items()}))

    segment = 8 * KiB
    for cluster, result in calibrations.items():
        costs = {
            name: estimate.params.p2p_time(segment)
            for name, estimate in result.alpha_beta.items()
        }
        # Every effective segment cost is positive and sub-millisecond.
        for name, cost in costs.items():
            assert 0 < cost < 1e-3, f"{cluster}/{name}: {cost}"
        # Parameters vary across algorithms (the paper's §5.2 observation):
        # the spread between the cheapest and the dearest context is large.
        assert max(costs.values()) > 1.5 * min(costs.values()), cluster
        # The linear tree absorbs the (P-1)-way serialisation: its
        # whole-message per-byte cost is *not* the costliest per segment,
        # but its effective cost at large m dominates all tree algorithms.
        big = 4 * 1024 * KiB
        linear_time = result.platform.predict("linear", 40, big)
        tree_time = result.platform.predict("binomial", 40, big)
        assert linear_time > tree_time, cluster
