"""Traditional definition-based models (the paper's Fig. 1 straw man).

These models follow the style of Thakur et al. [5] and Pjevsivac-Grbovic
et al. [8]: they are written down from the mathematical definition of each
algorithm, assume every parent contacts its children with *sequential
blocking* sends (a parent with ``k`` children pays ``k`` full point-to-point
times per segment — no γ), and are parameterised with Hockney α/β measured
by point-to-point ping-pong.

The paper's Fig. 1 shows these models mispredict badly; we reproduce both
the models and the comparison (``benchmarks/test_fig1_traditional.py``).
"""

from __future__ import annotations

from math import ceil, log2

from repro.collectives.bcast import DEFAULT_CHAIN_FANOUT
from repro.models.base import BcastModel, LinearCoefficients, segment_count
from repro.models.gamma import GammaFunction


class _TraditionalModel(BcastModel):
    """Traditional models ignore γ: they are constructed with γ ≡ 1."""

    def __init__(self, gamma: GammaFunction | None = None):
        del gamma  # traditional models have no γ concept
        super().__init__(GammaFunction.ideal())


class TraditionalLinearModel(_TraditionalModel):
    """Sequential sends from the root: ``T = (P-1)(α + m·β)``."""

    algorithm = "linear"

    def coefficients(self, procs, nbytes, segment_size):
        del segment_size
        peers = max(procs - 1, 0)
        return LinearCoefficients(peers, peers * nbytes)


class TraditionalChainModel(_TraditionalModel):
    """Textbook pipeline: ``T = (n_s + P - 2)(α + m_s·β)``.

    Structurally identical to the derived model (a chain has fanout one, so
    γ plays no role); the difference in practice is entirely the parameter
    source, which is the paper's contribution 2.
    """

    algorithm = "chain"

    def coefficients(self, procs, nbytes, segment_size):
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        stages = segments + procs - 2
        return LinearCoefficients(stages, stages * (nbytes / segments))


class TraditionalKChainModel(_TraditionalModel):
    """K chains with sequential root sends: each stage costs ``K`` p2p times.

        T = (n_s·K + ceil((P-1)/K) - 1)(α + m_s·β)
    """

    algorithm = "k_chain"

    def __init__(self, gamma=None, chains: int = DEFAULT_CHAIN_FANOUT):
        super().__init__(gamma)
        self.chains = chains

    def coefficients(self, procs, nbytes, segment_size):
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        chains = min(self.chains, procs - 1)
        stages = segments * chains + ceil((procs - 1) / chains) - 1
        return LinearCoefficients(stages, stages * (nbytes / segments))


class TraditionalBinaryModel(_TraditionalModel):
    """Binary tree with two sequential sends per stage:

        T = (n_s + H - 1) · 2 · (α + m_s·β),  H = ceil(log2(P+1)) - 1
    """

    algorithm = "binary"

    def coefficients(self, procs, nbytes, segment_size):
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        height = ceil(log2(procs + 1)) - 1
        stages = (segments + height - 1) * 2.0
        return LinearCoefficients(stages, stages * (nbytes / segments))


class TraditionalSplitBinaryModel(_TraditionalModel):
    """Split-binary with sequential sends in the pipeline phase:

        T = (n_s/2 + H - 1) · 2 · (α + m_s·β) + (α + (m/2)·β)
    """

    algorithm = "split_binary"

    def coefficients(self, procs, nbytes, segment_size):
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        segments = segment_count(nbytes, segment_size)
        if procs < 3 or segments < 2:
            peers = procs - 1
            return LinearCoefficients(peers, peers * nbytes)
        height = ceil(log2(procs + 1)) - 1
        stages = (ceil(segments / 2) + height - 1) * 2.0
        pipeline = LinearCoefficients(stages, stages * (nbytes / segments))
        return pipeline + LinearCoefficients(1.0, nbytes / 2)


class TraditionalBinomialModel(_TraditionalModel):
    """Thakur-style binomial broadcast, non-segmented:

        T = ceil(log2 P) · (α + m·β)

    This is the classical formula whose divergence from the measured
    segmented implementation the paper's Fig. 1 demonstrates.
    """

    algorithm = "binomial"

    def coefficients(self, procs, nbytes, segment_size):
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        rounds = ceil(log2(procs))
        return LinearCoefficients(rounds, rounds * nbytes)


#: Traditional model classes keyed by algorithm name.
TRADITIONAL_BCAST_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (
        TraditionalLinearModel,
        TraditionalChainModel,
        TraditionalKChainModel,
        TraditionalBinaryModel,
        TraditionalSplitBinaryModel,
        TraditionalBinomialModel,
    )
}
