"""Online model-vs-oracle drift detection.

The fitted α/β/γ models are only trustworthy while they still describe
the platform.  This module supplies the two online pieces of the
self-tuning loop:

* :class:`QuerySampler` — samples served ``/select`` queries off the
  service's hot path *through the observability layer*: the service
  emits a forced ``select.query`` span for every N-th query, and the
  sampler is a recorder finish hook that captures those spans into a
  bounded buffer.  The hot path pays one counter increment per query and
  one span per sample; nothing is retained unless a sampler is attached.
* :class:`DriftDetector` — a windowed CUSUM over the relative
  model-vs-oracle error of replayed samples.  Each sample's served
  decision is re-measured against a
  :class:`~repro.selection.oracle.MeasuredOracle` on the *current*
  platform; the one-sided CUSUM statistic ``S = max(0, S + (err - k))``
  accumulates only error in excess of the allowance ``k`` and fires when
  it crosses the threshold ``h`` — a few strongly-drifted samples or a
  sustained mild drift both trigger, while isolated blips decay.

Both are deliberately free of service imports — the
:class:`~repro.tuning.tuner.SelfTuner` wires them to a running
:class:`~repro.service.server.SelectionService`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.errors import TuningError

__all__ = [
    "DriftConfig",
    "DriftDetector",
    "QuerySampler",
    "SAMPLE_SPAN",
    "SampledQuery",
]

#: The span name the service emits for sampled queries and the sampler
#: listens for.  One vocabulary entry, shared by both sides.
SAMPLE_SPAN = "select.query"


@dataclass(frozen=True)
class SampledQuery:
    """One served decision captured from a ``select.query`` span."""

    cluster: str
    operation: str
    fabric: str
    procs: int
    nbytes: int
    algorithm: str
    segment_size: int

    @classmethod
    def from_span(cls, span) -> "SampledQuery":
        attrs = span.attributes
        return cls(
            cluster=str(attrs["cluster"]),
            operation=str(attrs["operation"]),
            fabric=str(attrs.get("fabric", "")),
            procs=int(attrs["procs"]),
            nbytes=int(attrs["nbytes"]),
            algorithm=str(attrs["algorithm"]),
            segment_size=int(attrs["segment_size"]),
        )


class QuerySampler:
    """Every-N-th reservoir of served queries, fed by obs finish hooks.

    ``should_sample()`` is the hot-path side: the service calls it once
    per answered query and emits a ``select.query`` span only when it
    returns true (the first query is always sampled, then every
    ``every``-th).  The sampler itself is the cold side: attached as a
    finish hook on a :class:`~repro.obs.spans.SpanRecorder`, it captures
    matching spans — forced spans run finish hooks even while tracing is
    off, so sampling needs no recorder enablement.  ``drain()`` hands the
    buffered samples to the tuner and empties the buffer.
    """

    def __init__(self, every: int = 16, capacity: int = 256):
        if every < 1:
            raise TuningError(f"sampling period must be >= 1, got {every}")
        self.every = int(every)
        self.seen = 0
        self.sampled = 0
        self.dropped = 0
        self._pending: deque[SampledQuery] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self._recorder = None

    def should_sample(self) -> bool:
        """Hot-path decision; one increment, no allocation."""
        self.seen += 1
        return (self.seen - 1) % self.every == 0

    def __call__(self, span) -> None:
        """Recorder finish hook: capture ``select.query`` spans."""
        if span.name != SAMPLE_SPAN:
            return
        try:
            sample = SampledQuery.from_span(span)
        except (KeyError, TypeError, ValueError):
            return  # malformed span: not worth breaking the hook chain
        with self._lock:
            if len(self._pending) == self._pending.maxlen:
                self.dropped += 1
            self._pending.append(sample)
            self.sampled += 1

    def attach(self, recorder=None) -> "QuerySampler":
        """Register as a finish hook (default: the process recorder)."""
        if self._recorder is not None:
            raise TuningError("sampler is already attached to a recorder")
        self._recorder = recorder if recorder is not None else obs.get_recorder()
        self._recorder.add_finish_hook(self)
        return self

    def detach(self) -> None:
        if self._recorder is not None:
            self._recorder.remove_finish_hook(self)
            self._recorder = None

    def drain(self) -> list[SampledQuery]:
        """All buffered samples, oldest first; empties the buffer."""
        with self._lock:
            samples = list(self._pending)
            self._pending.clear()
        return samples

    def __len__(self) -> int:
        return len(self._pending)


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs of one :class:`DriftDetector`.

    ``allowance`` is the relative model-vs-oracle error the loop
    tolerates indefinitely (the CUSUM drift parameter ``k``); only error
    in excess of it accumulates.  ``threshold`` is the accumulated excess
    that fires the trigger (``h``).  With the defaults, a platform whose
    served decisions run 5% worse than the measured optimum never
    triggers, while a 30%-degraded platform triggers after two samples.
    ``window`` bounds the recent-error history backing the reported mean;
    ``min_samples`` suppresses triggers until the detector has seen
    enough evidence.
    """

    allowance: float = 0.05
    threshold: float = 0.5
    window: int = 64
    min_samples: int = 2

    def __post_init__(self) -> None:
        if self.allowance < 0:
            raise TuningError(f"allowance must be >= 0, got {self.allowance}")
        if self.threshold <= 0:
            raise TuningError(f"threshold must be > 0, got {self.threshold}")
        if self.window < 1 or self.min_samples < 1:
            raise TuningError("window and min_samples must be >= 1")


class DriftDetector:
    """One-sided windowed CUSUM over relative errors (one per collective)."""

    def __init__(self, config: DriftConfig | None = None):
        self.config = config or DriftConfig()
        self.errors: deque[float] = deque(maxlen=self.config.window)
        self.cusum = 0.0
        self.samples = 0
        self.fired = False
        self.triggers = 0

    def update(self, error: float) -> bool:
        """Feed one replayed sample's relative error; True once fired."""
        error = max(0.0, float(error))
        self.samples += 1
        self.errors.append(error)
        self.cusum = max(0.0, self.cusum + (error - self.config.allowance))
        if (
            not self.fired
            and self.samples >= self.config.min_samples
            and self.cusum > self.config.threshold
        ):
            self.fired = True
            self.triggers += 1
        return self.fired

    def mean_error(self) -> float:
        """Mean relative error over the recent window (0 while empty)."""
        if not self.errors:
            return 0.0
        return sum(self.errors) / len(self.errors)

    def reset(self) -> None:
        """Re-arm after a recalibration: history and statistic start over."""
        self.errors.clear()
        self.cusum = 0.0
        self.samples = 0
        self.fired = False

    def state(self) -> dict:
        """JSON-ready snapshot (for ``/healthz`` and reports)."""
        return {
            "samples": self.samples,
            "mean_error": self.mean_error(),
            "cusum": self.cusum,
            "fired": self.fired,
            "triggers": self.triggers,
        }
