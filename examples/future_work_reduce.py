"""Scenario: the paper's future work — model-based MPI_Reduce selection.

The paper validates its method on MPI_Bcast and proposes extending it to
the other collectives.  This example runs the complete extension for the
reduce family on the small test cluster:

1. calibrate: γ(P) plus per-algorithm α/β from reduce+scatter experiments
   (the dual of the paper's broadcast+gather experiment — both start and
   finish on the root);
2. select: the same argmin machinery, now over reduce models;
3. verify: compare each pick against exhaustive measurement and against
   Open MPI 3.1's fixed reduce decision function (ported), which famously
   falls back to *linear* reduce for large messages.

Run:  python examples/future_work_reduce.py
"""

from repro.clusters import MINICLUSTER
from repro.estimation.reduce_calibration import calibrate_reduce, time_reduce
from repro.models.reduce_models import DERIVED_REDUCE_MODELS
from repro.selection.model_based import ModelBasedSelector
from repro.selection.ompi_fixed import OmpiFixedSelector
from repro.units import KiB, MiB, format_bytes, format_seconds, log_spaced_sizes

PROCS = 14
SIZES = log_spaced_sizes(8 * KiB, 2 * MiB, 7)


def main() -> None:
    cluster = MINICLUSTER
    print(f"Platform: {cluster.describe()}")

    print("\nCalibrating the reduce family (the paper's §4, dualised)...")
    platform, estimates = calibrate_reduce(cluster, procs=8)
    for name in platform.algorithms:
        print(f"  {name:20s} {platform.parameters[name]}")

    model_selector = ModelBasedSelector(platform)
    ompi_selector = OmpiFixedSelector(operation="reduce")

    print(f"\nMPI_Reduce selection at P={PROCS} (vs measured best):")
    header = (
        f"{'message':>9} {'best':>20} {'model pick':>20} {'deg%':>6} "
        f"{'Open MPI pick':>22} {'deg%':>6}"
    )
    print(header)
    measured_cache: dict = {}

    def measured(name: str, nbytes: int, segment: int = 8 * KiB) -> float:
        key = (name, nbytes, segment)
        if key not in measured_cache:
            measured_cache[key] = time_reduce(
                cluster, name, PROCS, nbytes, segment
            )
        return measured_cache[key]

    model_total = ompi_total = 0.0
    for nbytes in SIZES:
        times = {name: measured(name, nbytes) for name in DERIVED_REDUCE_MODELS}
        best = min(times, key=times.get)
        model_pick = model_selector.select(PROCS, nbytes)
        ompi_pick = ompi_selector.select(PROCS, nbytes)
        model_time = measured(model_pick.algorithm, nbytes, model_pick.segment_size)
        ompi_time = measured(ompi_pick.algorithm, nbytes, ompi_pick.segment_size)
        model_deg = 100 * (model_time - times[best]) / times[best]
        ompi_deg = 100 * (ompi_time - times[best]) / times[best]
        model_total += model_deg
        ompi_total += ompi_deg
        print(
            f"{format_bytes(nbytes):>9} {best:>20} {model_pick.algorithm:>20} "
            f"{model_deg:>6.1f} {ompi_pick.describe():>22} {ompi_deg:>6.1f}"
        )

    print(
        f"\nAccumulated degradation: model-based {model_total:.0f}%, "
        f"Open MPI fixed {ompi_total:.0f}%"
    )
    print(
        "The fixed reduce decision selects linear reduce once the message\n"
        "grows (its a1*m + b1 boundary overtakes any communicator size) —\n"
        "the kind of hard-coded mistake the paper's method removes."
    )


if __name__ == "__main__":
    main()
