"""Per-algorithm estimation of the Hockney parameters (paper §4.2).

This is the paper's second contribution: instead of measuring α and β once
with ping-pongs, they are estimated *separately for each collective
algorithm*, from communication experiments that contain the algorithm
itself, so the fitted parameters capture the context the point-to-point
transfers actually run in (pipelining, concurrent injection, protocol
effects).

The experiment (Eq. 7): a broadcast of ``m`` bytes with the algorithm under
test, immediately followed by a linear-without-synchronisation gather of
``m_g`` bytes per rank — so the experiment starts *and finishes* on the
root, whose clock times it.  With the algorithm's model supplying its
coefficients ``(c_α, c_β)`` and the gather contributing
``(P-1, (P-1)·m_g)`` (Eq. 8), each message size yields one linear equation

    (c_α + P - 1)·α + (c_β + (P-1)·m_g)·β = T.

Dividing by the α-coefficient puts the system in the canonical form of the
paper's Fig. 4, ``α + β·x_i = y_i``, which the Huber regressor solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.regression import FitResult, get_regressor
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.models.base import BcastModel
from repro.models.gather_models import linear_gather_coefficients
from repro.models.hockney import HockneyParams
from repro.units import KiB, MiB, log_spaced_sizes

#: The paper's broadcast size sweep: ten log-spaced sizes, 8 KB to 4 MB.
DEFAULT_SIZES = tuple(log_spaced_sizes(8 * KiB, 4 * MiB, 10))


def default_gather_bytes(nbytes: int) -> int:
    """The default ``m_g`` schedule: grows with the broadcast size.

    The paper varies ``m_g`` across the experiments (``m_g ∈ {m_g1..m_gM}``,
    with ``m_g ≠ m_s``) — and it must: for segmented algorithms the
    per-segment size is constant, so with a *fixed* gather size every
    canonical equation would have (nearly) the same ``x_i`` and the system
    of Fig. 4 would be singular.  A gather size proportional to ``m``
    spreads the ``x_i`` while staying small enough that the broadcast under
    test still dominates the experiment.
    """
    return max(1 * KiB, nbytes // 64)


#: Default gather schedule (see :func:`default_gather_bytes`).
DEFAULT_GATHER_BYTES = default_gather_bytes


def alphabeta_prefetch_jobs(
    spec: ClusterSpec,
    algorithm: str,
    *,
    procs: int,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = 8 * KiB,
    gather_bytes: int | Callable[[int], int] = DEFAULT_GATHER_BYTES,
    seed: int = 0,
    reps: int = 2,
) -> list[SimJob]:
    """The first ``reps`` repetitions of one algorithm's α/β sweep, as jobs.

    Enumerates exactly the seeds :func:`estimate_alpha_beta`'s adaptive
    loop will request, so prefetching these makes the loop replay from the
    runner's memo.
    """
    gather_of = gather_bytes if callable(gather_bytes) else (lambda _m: gather_bytes)
    batch: list[SimJob] = []
    for index, nbytes in enumerate(sizes):
        base = seed + 104_729 * (index + 1)
        for rep in range(reps):
            batch.append(
                SimJob(
                    spec=spec,
                    kind="bcast_then_gather",
                    procs=procs,
                    algorithm=algorithm,
                    nbytes=nbytes,
                    segment_size=segment_size,
                    gather_bytes=gather_of(nbytes),
                    seed=base + 7919 * rep,
                )
            )
    return batch


@dataclass(frozen=True)
class AlphaBeta:
    """Fitted per-algorithm Hockney parameters plus fit diagnostics."""

    algorithm: str
    params: HockneyParams
    fit: FitResult
    #: The (x_i, y_i) canonical points the line was fitted to.
    points: tuple[tuple[float, float], ...]
    #: Message sizes of the experiments, in order.
    sizes: tuple[int, ...]
    #: Statistics of each experiment's time measurement.
    stats: tuple[SampleStats, ...]

    @property
    def alpha(self) -> float:
        return self.params.alpha

    @property
    def beta(self) -> float:
        return self.params.beta


def estimate_alpha_beta(
    spec: ClusterSpec,
    model: BcastModel,
    *,
    procs: int | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = 8 * KiB,
    gather_bytes: int | Callable[[int], int] = DEFAULT_GATHER_BYTES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    prefetch: bool = True,
) -> AlphaBeta:
    """Fit α and β for ``model.algorithm`` on ``spec`` (paper §4.2).

    ``procs`` defaults to half the cluster, the paper's choice ("the use of
    larger numbers of nodes in the experiments will not change the
    estimation").  ``gather_bytes`` may be a constant or a function of the
    broadcast size ``m`` (the paper varies ``m_g`` with the experiment).
    Simulations run through ``runner`` (default: the process-wide runner);
    ``prefetch=False`` skips the warm-up batch when the caller has already
    prefetched a larger one.
    """
    if procs is None:
        procs = max(2, spec.max_procs // 2)
    if not 2 <= procs <= spec.max_procs:
        raise EstimationError(
            f"{spec.name}: procs={procs} outside 2..{spec.max_procs}"
        )
    if len(sizes) < 2:
        raise EstimationError("need at least two message sizes to fit a line")
    fit_fn = get_regressor(regressor)
    gather_of = gather_bytes if callable(gather_bytes) else (lambda _m: gather_bytes)
    runner = runner if runner is not None else default_runner()
    if prefetch:
        runner.prefetch(
            alphabeta_prefetch_jobs(
                spec,
                model.algorithm,
                procs=procs,
                sizes=sizes,
                segment_size=segment_size,
                gather_bytes=gather_bytes,
                seed=seed,
            )
        )

    xs: list[float] = []
    ys: list[float] = []
    stats: list[SampleStats] = []
    for index, nbytes in enumerate(sizes):
        m_g = gather_of(nbytes)
        coeffs = model.coefficients(procs, nbytes, segment_size)
        total = coeffs + linear_gather_coefficients(procs, m_g)
        if total.c_alpha <= 0:
            raise EstimationError(
                f"{model.algorithm}: degenerate experiment at m={nbytes}"
            )

        def measure_once(
            rep_seed: int, nbytes: int = nbytes, m_g: int = m_g
        ) -> float:
            return runner.run_one(
                SimJob(
                    spec=spec,
                    kind="bcast_then_gather",
                    procs=procs,
                    algorithm=model.algorithm,
                    nbytes=nbytes,
                    segment_size=segment_size,
                    gather_bytes=m_g,
                    seed=rep_seed,
                )
            )

        sample = adaptive_measure(
            measure_once,
            precision=precision,
            max_reps=max_reps,
            seed=seed + 104_729 * (index + 1),
        )
        stats.append(sample)
        xs.append(total.c_beta / total.c_alpha)
        ys.append(sample.mean / total.c_alpha)

    fit = fit_fn(xs, ys)
    alpha = max(fit.intercept, 0.0)
    beta = max(fit.slope, 0.0)
    return AlphaBeta(
        algorithm=model.algorithm,
        params=HockneyParams(alpha=alpha, beta=beta),
        fit=fit,
        points=tuple(zip(xs, ys)),
        sizes=tuple(sizes),
        stats=tuple(stats),
    )
