"""Tests for the future-work extension: reduce models, calibration, selection."""

import pytest

from repro.clusters import MINICLUSTER
from repro.estimation.reduce_calibration import (
    calibrate_reduce,
    estimate_reduce_alpha_beta,
    time_reduce,
)
from repro.models.gamma import GammaFunction
from repro.models.reduce_models import DERIVED_REDUCE_MODELS
from repro.selection.model_based import ModelBasedSelector
from repro.units import KiB, MiB

GAMMA = GammaFunction({3: 1.1, 5: 1.3, 7: 1.5})


@pytest.fixture(scope="module")
def reduce_calibration():
    return calibrate_reduce(
        MINICLUSTER,
        procs=8,
        sizes=[8 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB],
        gamma_max_procs=5,
        max_reps=3,
    )


class TestReduceModels:
    def test_registry_covers_reduce_catalogue(self):
        from repro.collectives.reduce import REDUCE_ALGORITHMS

        assert set(DERIVED_REDUCE_MODELS) == set(REDUCE_ALGORITHMS)

    @pytest.mark.parametrize("name", sorted(DERIVED_REDUCE_MODELS))
    def test_predictions_positive(self, name):
        from repro.models.hockney import HockneyParams

        model = DERIVED_REDUCE_MODELS[name](GAMMA)
        predicted = model.predict(16, 1 * MiB, 8 * KiB, HockneyParams(1e-5, 1e-9))
        assert predicted > 0

    def test_in_order_matches_binomial_structure(self):
        binomial = DERIVED_REDUCE_MODELS["binomial"](GAMMA)
        in_order = DERIVED_REDUCE_MODELS["in_order_binomial"](GAMMA)
        assert binomial.coefficients(20, 256 * KiB, 8 * KiB) == in_order.coefficients(
            20, 256 * KiB, 8 * KiB
        )


class TestReduceCalibration:
    def test_calibrates_all_default_algorithms(self, reduce_calibration):
        # The default sweep covers every flat algorithm; the hierarchical
        # rack-leader variant only joins topology-conditioned builds.
        from repro.collectives.reduce import DEFAULT_REDUCE_ALGORITHMS

        platform, estimates = reduce_calibration
        assert set(platform.algorithms) == set(DEFAULT_REDUCE_ALGORITHMS)
        assert set(estimates) == set(DEFAULT_REDUCE_ALGORITHMS)

    def test_platform_is_reduce_operation(self, reduce_calibration):
        platform, _ = reduce_calibration
        assert platform.operation == "reduce"
        assert platform.model_family == "reduce_derived"

    def test_stage_costs_positive(self, reduce_calibration):
        _, estimates = reduce_calibration
        for name, estimate in estimates.items():
            assert estimate.params.p2p_time(8 * KiB) > 0, name

    def test_prediction_tracks_measured_reduce(self, reduce_calibration):
        platform, _ = reduce_calibration
        for name in ("binomial", "linear"):
            predicted = platform.predict(name, 8, 128 * KiB)
            measured = time_reduce(MINICLUSTER, name, 8, 128 * KiB, 8 * KiB)
            assert 0.3 < predicted / measured < 2.5, name

    def test_json_round_trip_preserves_operation(self, reduce_calibration, tmp_path):
        from repro.estimation.workflow import PlatformModel

        platform, _ = reduce_calibration
        path = tmp_path / "reduce.json"
        platform.save(path)
        loaded = PlatformModel.load(path)
        assert loaded.operation == "reduce"


class TestReduceSelection:
    def test_selector_emits_reduce_selections(self, reduce_calibration):
        platform, _ = reduce_calibration
        selector = ModelBasedSelector(platform)
        choice = selector.select(12, 512 * KiB)
        assert choice.operation == "reduce"
        assert choice.algorithm in DERIVED_REDUCE_MODELS

    def test_selection_close_to_measured_best(self, reduce_calibration):
        """The paper's method, applied beyond the paper: reduce selection
        is near-optimal against exhaustive measurement."""
        platform, _ = reduce_calibration
        selector = ModelBasedSelector(platform)
        procs = 14
        for nbytes in (16 * KiB, 256 * KiB, 1 * MiB):
            measured = {
                name: time_reduce(MINICLUSTER, name, procs, nbytes, 8 * KiB)
                for name in DERIVED_REDUCE_MODELS
            }
            best_time = min(measured.values())
            chosen = selector.select(procs, nbytes)
            degradation = (measured[chosen.algorithm] - best_time) / best_time
            assert degradation < 0.45, (nbytes, chosen.algorithm, measured)

    def test_never_selects_linear_reduce_at_scale(self, reduce_calibration):
        platform, _ = reduce_calibration
        selector = ModelBasedSelector(platform)
        assert selector.select(16, 2 * MiB).algorithm != "linear"
