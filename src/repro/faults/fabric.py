"""A :class:`~repro.sim.network.Fabric` that executes a :class:`FaultPlan`.

``FaultyFabric`` is only ever constructed when a plan is *enabled*; the
pristine ``Fabric.transfer`` fast path stays untouched for fault-free
simulations, which is what keeps the "faults disabled ≡ pre-fault
pipeline" guarantee bit-exact.

Determinism: the only randomness a plan introduces beyond its noise model
is message loss, drawn from a PRNG seeded with ``(seed, plan.salt)``.
The simulation itself is single-threaded and schedules ties by sequence
number, so the draw order — and therefore every timing — is a pure
function of ``(cluster, plan, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan, LinkFault
from repro.sim.network import Fabric, TransferTiming
from repro.sim.noise import NoNoise

#: Stream tag separating the loss PRNG from noise-model PRNGs.
_LOSS_STREAM = 0xFA17


@dataclass
class FaultyFabric(Fabric):
    """Fabric with stragglers, degraded/flapping links and message loss.

    Stragglers' ``inject_factor`` composes multiplicatively with the base
    ``degradation`` map; link factors apply per message according to the
    fault's time window evaluated at the moment the payload is ready to
    inject.  Faults referencing nodes outside this world (the plan was
    written for the full cluster, the run uses fewer nodes) are ignored,
    mirroring how ``ClusterSpec`` filters ``slow_nodes``.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        n = self.num_nodes
        self._inject = {
            s.node: s.inject_factor
            for s in self.plan.stragglers
            if s.node < n and s.inject_factor != 1.0
        }
        links: dict[tuple[int, int], list[LinkFault]] = {}
        for link in self.plan.links:
            if link.src < n and link.dst < n:
                links.setdefault((link.src, link.dst), []).append(link)
        self._links = {pair: tuple(faults) for pair, faults in links.items()}
        self._no_noise = isinstance(self.noise, NoNoise)
        self.messages_lost = 0
        self._loss_rng = np.random.default_rng(
            (self.seed, self.plan.salt, _LOSS_STREAM)
        )

    # -- fault lookups -----------------------------------------------------

    def _link_factors(self, src: int, dst: int, t: float) -> tuple[float, float]:
        faults = self._links.get((src, dst))
        if not faults:
            return 1.0, 1.0
        latency_factor = 1.0
        byte_factor = 1.0
        for fault in faults:
            if fault.active(t):
                latency_factor *= fault.latency_factor
                byte_factor *= fault.byte_factor
        return latency_factor, byte_factor

    def _factor(self) -> float:
        return 1.0 if self._no_noise else self.noise.factor()

    # -- transfers ---------------------------------------------------------

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        ready: float,
        src_port: int = 0,
        dst_port: int = 0,
    ) -> TransferTiming:
        if nbytes < 0:
            raise SimulationError(f"negative message size: {nbytes}")
        self.bytes_transferred += nbytes
        self.messages_transferred += 1
        p = self.params
        if src == dst:
            # Intra-node copies bypass the NIC and hence every network fault.
            inject_end = ready + nbytes * p.shm_byte_time * self._factor()
            deliver = inject_end + p.shm_latency * self._factor()
            return TransferTiming(ready, inject_end, deliver)
        latency_factor, byte_factor = self._link_factors(src, dst, ready)
        slowdown = self._slowdown(src) * self._inject.get(src, 1.0)
        byte_cost = nbytes * p.byte_time_out * byte_factor

        def inject_cost() -> float:
            return (p.per_message_overhead + byte_cost) * self._factor() * slowdown

        egress = self.hosts[src].egress[src_port]
        inject_start, inject_end = egress.reserve(ready, inject_cost())
        loss = self.plan.loss
        if loss is not None and loss.rate > 0.0:
            retries = 0
            # Each lost attempt burns the injection plus a sender timeout;
            # after max_retries losses the next attempt always delivers.
            while retries < loss.max_retries and self._loss_rng.random() < loss.rate:
                retries += 1
                self.messages_lost += 1
                _, inject_end = egress.reserve(
                    inject_end + loss.timeout, inject_cost()
                )
        wire_latency = p.latency * latency_factor * self._factor()
        if self._topo is None:
            arrive = inject_end + wire_latency
        else:
            arrive = self._topo.arrive(
                src, dst, nbytes, inject_end, wire_latency, self._factor()
            )
        drain_cost = nbytes * p.byte_time_in * byte_factor * self._factor()
        _, deliver = self.hosts[dst].ingress[dst_port].reserve(arrive, drain_cost)
        return TransferTiming(inject_start, inject_end, deliver)

    def control_transfer(self, src: int, dst: int, ready: float) -> float:
        p = self.params
        if src == dst:
            return ready + p.shm_latency * self._factor()
        latency_factor, _ = self._link_factors(src, dst, ready)
        deliver = ready + p.control_latency * latency_factor * self._factor()
        if self._topo is not None:
            deliver += self._topo.control_extra(src, dst)
        return deliver

    def reset(self) -> None:
        super().reset()
        self.messages_lost = 0
        self._loss_rng = np.random.default_rng(
            (self.seed, self.plan.salt, _LOSS_STREAM)
        )
