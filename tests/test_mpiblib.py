"""Tests for the MPIBlib-style benchmarking front end."""

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import SimulationError
from repro.mpiblib import BenchmarkResult, CollectiveBenchmark, render_results
from repro.units import KiB


@pytest.fixture(scope="module")
def bench():
    return CollectiveBenchmark(MINICLUSTER, max_reps=4)


class TestRun:
    def test_bcast_benchmark(self, bench):
        result = bench.run("bcast", "binomial", procs=8, nbytes=64 * KiB)
        assert result.mean > 0
        assert result.stats.converged
        assert result.operation == "bcast"

    def test_barrier_benchmark_needs_no_payload(self, bench):
        result = bench.run("barrier", "recursive_doubling", procs=8)
        assert result.mean > 0

    def test_allreduce_benchmark(self, bench):
        result = bench.run("allreduce", "ring", procs=8, nbytes=256 * KiB)
        assert result.mean > 0

    def test_gather_and_scatter(self, bench):
        gather = bench.run("gather", "linear", procs=8, nbytes=4 * KiB)
        scatter = bench.run("scatter", "binomial", procs=8, nbytes=4 * KiB)
        assert gather.mean > 0 and scatter.mean > 0

    def test_reduce_benchmark_uses_segments(self, bench):
        fine = bench.run("reduce", "chain", procs=8, nbytes=512 * KiB,
                         segment_size=8 * KiB)
        coarse = bench.run("reduce", "chain", procs=8, nbytes=512 * KiB,
                           segment_size=0)
        assert fine.mean != coarse.mean

    def test_root_policy(self, bench):
        at_root = bench.run("bcast", "binomial", procs=8, nbytes=64 * KiB,
                            policy="root")
        overall = bench.run("bcast", "binomial", procs=8, nbytes=64 * KiB,
                            policy="global")
        assert at_root.mean <= overall.mean

    def test_describe_mentions_key_facts(self, bench):
        result = bench.run("bcast", "binary", procs=6, nbytes=8 * KiB)
        text = result.describe()
        assert "bcast/binary" in text
        assert "P=6" in text
        assert "8 KB" in text

    def test_unknown_operation_rejected(self, bench):
        from repro.errors import SelectionError

        with pytest.raises(SelectionError):
            bench.run("alltoallw", "ring", procs=4, nbytes=1024)

    def test_deterministic_cluster_converges_fast(self, bench):
        result = bench.run("bcast", "chain", procs=6, nbytes=32 * KiB)
        assert result.stats.n == 2  # zero-noise short-circuit


class TestSweep:
    def test_sweep_covers_grid(self, bench):
        results = bench.sweep(
            "bcast", ["binary", "chain"], procs=6, sizes=[8 * KiB, 64 * KiB]
        )
        assert len(results) == 4
        keys = {(r.algorithm, r.nbytes) for r in results}
        assert ("binary", 8 * KiB) in keys and ("chain", 64 * KiB) in keys

    def test_sweep_defaults_to_all_algorithms(self, bench):
        results = bench.sweep("barrier", procs=4, sizes=[0])
        assert {r.algorithm for r in results} == {
            "linear", "recursive_doubling", "double_ring", "bruck"
        }

    def test_render_results_table(self, bench):
        results = bench.sweep(
            "bcast", ["binary", "binomial"], procs=6, sizes=[8 * KiB, 64 * KiB]
        )
        table = render_results(results)
        assert "binary" in table and "binomial" in table
        assert "8 KB" in table and "64 KB" in table

    def test_render_empty(self):
        assert render_results([]) == "(no results)"
