"""Unit tests for the Prometheus-text-format metrics primitives.

Two regression suites for audited bugs live here:

* label values containing ``\\``, ``"`` or newlines must be escaped per
  the text exposition format, or one failed-reload error message renders
  the whole ``/metrics`` document unparseable;
* always-labelled counters must not emit a bare ``name 0`` phantom
  sample while empty — it double-counts in ``sum(name)`` aggregations.
"""

from __future__ import annotations

import pytest

from repro.obs.spans import SpanRecorder
from repro.service.metrics import (
    Counter,
    Histogram,
    ServiceMetrics,
    _escape_label_value,
)


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "raw,escaped",
        [
            ('say "hi"', 'say \\"hi\\"'),
            ("back\\slash", "back\\\\slash"),
            ("two\nlines", "two\\nlines"),
            ('mix\\ "all"\nthree', 'mix\\\\ \\"all\\"\\nthree'),
            ("plain ascii, no change", "plain ascii, no change"),
        ],
    )
    def test_escape_label_value(self, raw, escaped):
        assert _escape_label_value(raw) == escaped

    def test_rendered_sample_quotes_stay_balanced(self):
        counter = Counter("c_total", "help", labelled=True)
        counter.inc(error='load failed: "artifact.json" is\nnot JSON')
        sample = counter.render()[-1]
        assert sample == (
            'c_total{error="load failed: \\"artifact.json\\" is\\n'
            'not JSON"} 1'
        )
        # The escaped sample stays a single physical line.
        assert "\n" not in sample

    def test_backslash_escaped_before_quote(self):
        # Order matters: escaping quotes first would double-escape the
        # backslash the quote replacement introduces.
        assert _escape_label_value('\\"') == '\\\\\\"'


class TestPhantomZeroSample:
    def test_labelled_counter_renders_no_sample_while_empty(self):
        counter = Counter("c_total", "help", labelled=True)
        lines = counter.render()
        assert lines == ["# HELP c_total help", "# TYPE c_total counter"]

    def test_unlabelled_counter_keeps_its_zero_sample(self):
        counter = Counter("c_total", "help")
        assert counter.render()[-1] == "c_total 0"

    def test_labelled_counter_renders_only_labelled_series(self):
        counter = Counter("c_total", "help", labelled=True)
        counter.inc(op="bcast")
        counter.inc(op="bcast")
        counter.inc(op="reduce")
        lines = counter.render()
        assert 'c_total{op="bcast"} 2' in lines
        assert 'c_total{op="reduce"} 1' in lines
        assert "c_total 0" not in lines

    def test_fresh_registry_has_no_phantom_labelled_series(self):
        document = ServiceMetrics().render()
        for name in (
            "repro_requests_total",
            "repro_selections_total",
            "repro_select_clamped_total",
        ):
            assert f"# TYPE {name} counter" in document
            assert f"\n{name} 0\n" not in document

    def test_unlabelled_counters_still_scrape_as_zero(self):
        document = ServiceMetrics().render()
        assert "\nrepro_select_queries_total 0\n" in document


class TestSpanFedRequestMetrics:
    def test_observe_request_span_feeds_histogram_and_counter(self):
        metrics = ServiceMetrics()
        recorder = SpanRecorder()
        with recorder.span(
            "http.request", force=True, endpoint="/select"
        ) as span:
            span.set_attr("status", 200)
        metrics.observe_request_span(span)
        assert metrics.request_seconds.count == 1
        assert metrics.requests.value(endpoint="/select", status="200") == 1

    def test_span_without_attrs_lands_in_unknown_series(self):
        metrics = ServiceMetrics()
        recorder = SpanRecorder()
        with recorder.span("http.request", force=True) as span:
            pass
        metrics.observe_request_span(span)
        assert (
            metrics.requests.value(endpoint="(unknown)", status="(unknown)")
            == 1
        )


class TestHistogramQuantile:
    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram("h", "help").quantile(0.99) == 0.0

    def test_quantile_returns_covering_bucket_bound(self):
        histogram = Histogram("h", "help", buckets=(0.001, 0.01, 0.1))
        for _ in range(99):
            histogram.observe(0.0005)
        histogram.observe(0.05)
        assert histogram.quantile(0.5) == 0.001
        assert histogram.quantile(0.999) == 0.1
