"""Models of the allgather algorithms.

``nbytes`` is the per-rank contribution size.  Every algorithm moves the
same ``(P-1)·m`` bytes through each rank's NIC — they differ only in how
many latency-bearing rounds that traffic is packed into, which is exactly
what the ``c_α`` coefficient captures:

* ring: ``P-1`` single-block steps — ``T = (P-1)·α + (P-1)·m·β``;
* recursive doubling: ``log2 P`` rounds with doubling payloads on
  power-of-two communicators — ``T = log2(P)·α + (P-1)·m·β``; any other
  size falls back to the ring (the model mirrors the simulator's guard);
* neighbor exchange: ``P/2`` rounds (one single-block, the rest
  two-block) on even communicators — ``T = (P/2)·α + (P-1)·m·β``; odd
  sizes fall back to the ring;
* Bruck: ``ceil(log2 P)`` rounds of bundled blocks totalling ``P-1``
  blocks on any communicator — ``T = ceil(log2 P)·α + (P-1)·m·β``.
"""

from __future__ import annotations

from math import ceil, log2

from repro.models.base import BcastModel, LinearCoefficients


def _ring_coefficients(procs: int, nbytes: int) -> LinearCoefficients:
    peers = float(procs - 1)
    return LinearCoefficients(peers, peers * nbytes)


class _AllgatherModel(BcastModel):
    """Allgathers are unsegmented: the segment size is ignored."""


class RingAllgatherModel(_AllgatherModel):
    """Ring allgather: P-1 single-block forwarding steps."""

    algorithm = "ring"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        return _ring_coefficients(procs, nbytes)


class RecursiveDoublingAllgatherModel(_AllgatherModel):
    """Recursive doubling; non-power-of-two sizes take the ring form."""

    algorithm = "recursive_doubling"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        if procs & (procs - 1):
            return _ring_coefficients(procs, nbytes)
        return LinearCoefficients(float(log2(procs)), (procs - 1) * float(nbytes))


class NeighborExchangeAllgatherModel(_AllgatherModel):
    """Neighbor exchange; odd sizes take the ring form."""

    algorithm = "neighbor_exchange"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        if procs % 2:
            return _ring_coefficients(procs, nbytes)
        return LinearCoefficients(procs / 2.0, (procs - 1) * float(nbytes))


class BruckAllgatherModel(_AllgatherModel):
    """Bruck allgather: log rounds on any communicator size."""

    algorithm = "bruck"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        rounds = float(ceil(log2(procs)))
        return LinearCoefficients(rounds, (procs - 1) * float(nbytes))


#: Derived allgather models keyed by the algorithm they describe.
DERIVED_ALLGATHER_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (
        RingAllgatherModel,
        RecursiveDoublingAllgatherModel,
        NeighborExchangeAllgatherModel,
        BruckAllgatherModel,
    )
}
