"""Port of Open MPI 3.1's fixed broadcast decision function.

This reproduces ``ompi_coll_tuned_bcast_intra_dec_fixed`` from
``ompi/mca/coll/tuned/coll_tuned_decision_fixed.c``: the hard-coded rule —
derived by Open MPI's developers from benchmarks on a particular platform
("MX results for messages up to 36 MB and communicator sizes up to 64
nodes") — that picks the broadcast algorithm and segment size from the
message size and communicator size.  It is the blue curve of the paper's
Fig. 5 and the "Open MPI" column of Table 3.

Name mapping between Open MPI and our catalogue:

=====================  ==================
Open MPI               :mod:`repro` name
=====================  ==================
binomial               ``binomial``
split binary tree      ``split_binary``
pipeline               ``chain`` (single chain)
chain (4 chains)       ``k_chain``
=====================  ==================
"""

from __future__ import annotations

from repro.errors import SelectionError
from repro.selection.oracle import Selection
from repro.units import KiB

#: Thresholds and linear boundaries from coll_tuned_decision_fixed.c.
SMALL_MESSAGE_SIZE = 2048
INTERMEDIATE_MESSAGE_SIZE = 370728
A_P16 = 3.2118e-6  # [1/byte]
B_P16 = 8.7936
A_P64 = 2.3679e-6  # [1/byte]
B_P64 = 1.1787
A_P128 = 1.6134e-6  # [1/byte]
B_P128 = 2.1102


def ompi_bcast_decision(communicator_size: int, message_size: int) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Bcast``.

    Follows the original control flow branch by branch; returns the
    selected algorithm and segment size.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    if message_size < SMALL_MESSAGE_SIZE:
        # Binomial without segmentation.
        return Selection("binomial", 0)
    if message_size < INTERMEDIATE_MESSAGE_SIZE:
        # SplittedBinary with 1KB segments.
        return Selection("split_binary", 1 * KiB)
    # Large message sizes.
    if communicator_size < (A_P128 * message_size + B_P128):
        # Pipeline with 128KB segments.
        return Selection("chain", 128 * KiB)
    if communicator_size < 13:
        # Split Binary with 8KB segments.
        return Selection("split_binary", 8 * KiB)
    if communicator_size < (A_P64 * message_size + B_P64):
        # Pipeline with 64KB segments.
        return Selection("chain", 64 * KiB)
    if communicator_size < (A_P16 * message_size + B_P16):
        # Pipeline with 16KB segments.
        return Selection("chain", 16 * KiB)
    # Pipeline with 8KB segments.
    return Selection("chain", 8 * KiB)


#: Linear boundaries of the reduce decision (coll_tuned_decision_fixed.c).
REDUCE_A1 = 0.6016 / 1024.0  # [1/byte]
REDUCE_B1 = 1.3496
REDUCE_A2 = 0.0410 / 1024.0
REDUCE_B2 = 9.7128
REDUCE_A3 = 0.0422 / 1024.0
REDUCE_B3 = 1.1614
REDUCE_A4 = 0.0033 / 1024.0
REDUCE_B4 = 1.6761


def ompi_reduce_decision(communicator_size: int, message_size: int) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Reduce``.

    Port of ``ompi_coll_tuned_reduce_intra_dec_fixed``: four linear
    boundaries in the (message size, communicator size) plane select
    between the linear, binomial, binary and pipeline (chain) reductions
    with hard-coded segment sizes.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    if communicator_size < REDUCE_A1 * message_size + REDUCE_B1:
        # Linear, no segmentation.
        return Selection("linear", 0, operation="reduce")
    if communicator_size < REDUCE_A2 * message_size + REDUCE_B2:
        # Binomial with 1KB segments.
        return Selection("binomial", 1 * KiB, operation="reduce")
    if communicator_size < REDUCE_A3 * message_size + REDUCE_B3:
        # Binary with 32KB segments.
        return Selection("binary", 32 * KiB, operation="reduce")
    if communicator_size < REDUCE_A4 * message_size + REDUCE_B4:
        # Pipeline with 32KB segments.
        return Selection("chain", 32 * KiB, operation="reduce")
    # Pipeline with 64KB segments.
    return Selection("chain", 64 * KiB, operation="reduce")


#: Block-size and communicator thresholds of the fixed gather decision.
GATHER_LARGE_BLOCK_SIZE = 92160
GATHER_INTERMEDIATE_BLOCK_SIZE = 6000
GATHER_SMALL_BLOCK_SIZE = 1024
GATHER_LARGE_COMM_SIZE = 60
GATHER_SMALL_COMM_SIZE = 10


def ompi_gather_decision(communicator_size: int, message_size: int) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Gather``.

    Port of ``ompi_coll_tuned_gather_intra_dec_fixed``.  Open MPI's
    synchronised-linear variants map onto our ``linear`` (the
    synchronisation handshake is not modelled); the branch structure and
    thresholds are preserved.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    if message_size > GATHER_LARGE_BLOCK_SIZE:
        return Selection("linear", 0, operation="gather")
    if message_size > GATHER_INTERMEDIATE_BLOCK_SIZE:
        return Selection("linear", 0, operation="gather")
    if communicator_size > GATHER_LARGE_COMM_SIZE or (
        communicator_size > GATHER_SMALL_COMM_SIZE
        and message_size < GATHER_SMALL_BLOCK_SIZE
    ):
        return Selection("binomial", 0, operation="gather")
    return Selection("linear", 0, operation="gather")


def ompi_barrier_decision(communicator_size: int, message_size: int = 0) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Barrier``.

    Port of ``ompi_coll_tuned_barrier_intra_dec_fixed``: recursive
    doubling on power-of-two communicators (the dedicated two-process
    exchange at ``P = 2`` *is* recursive doubling's single round), Bruck
    otherwise.  Barriers carry no payload, so ``message_size`` is ignored.
    """
    del message_size
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if communicator_size & (communicator_size - 1) == 0:
        return Selection("recursive_doubling", 0, operation="barrier")
    return Selection("bruck", 0, operation="barrier")


#: Message-size threshold of the fixed allreduce decision.
ALLREDUCE_SMALL_MESSAGE_SIZE = 10240


def ompi_allreduce_decision(
    communicator_size: int, message_size: int
) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Allreduce``.

    Port of ``ompi_coll_tuned_allreduce_intra_dec_fixed`` restricted to
    the commutative-operation branch (the only one our simulators model):
    recursive doubling below 10 KiB, the bandwidth-optimal ring above.
    ``message_size`` is the full vector size.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    if message_size < ALLREDUCE_SMALL_MESSAGE_SIZE:
        return Selection("recursive_doubling", 0, operation="allreduce")
    return Selection("ring", 0, operation="allreduce")


#: Total-gathered-size threshold of the fixed allgather decision.
ALLGATHER_SMALL_TOTAL_SIZE = 50000


def ompi_allgather_decision(
    communicator_size: int, message_size: int
) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Allgather``.

    Port of ``ompi_coll_tuned_allgather_intra_dec_fixed`` ("MX 2Gb
    results from the Grig cluster"): below 50 KB of *total* gathered data
    — ``message_size`` here is the per-rank block, so the total is
    ``P·m`` — recursive doubling on power-of-two communicators and Bruck
    otherwise; above it, neighbor exchange on even communicators and the
    ring otherwise.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    total_size = communicator_size * message_size
    if total_size < ALLGATHER_SMALL_TOTAL_SIZE:
        if communicator_size & (communicator_size - 1) == 0:
            return Selection("recursive_doubling", 0, operation="allgather")
        return Selection("bruck", 0, operation="allgather")
    if communicator_size % 2 == 0:
        return Selection("neighbor_exchange", 0, operation="allgather")
    return Selection("ring", 0, operation="allgather")


#: Block-size and communicator thresholds of the fixed alltoall decision.
ALLTOALL_SMALL_BLOCK_SIZE = 200
ALLTOALL_INTERMEDIATE_BLOCK_SIZE = 3000
ALLTOALL_SMALL_COMM_SIZE = 12


def ompi_alltoall_decision(
    communicator_size: int, message_size: int
) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Alltoall``.

    Port of ``ompi_coll_tuned_alltoall_intra_dec_fixed``: Bruck for tiny
    blocks on larger communicators, basic linear for small blocks, the
    pairwise exchange for everything else.  ``message_size`` is the
    per-pair block size.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    if (
        message_size < ALLTOALL_SMALL_BLOCK_SIZE
        and communicator_size > ALLTOALL_SMALL_COMM_SIZE
    ):
        return Selection("bruck", 0, operation="alltoall")
    if message_size < ALLTOALL_INTERMEDIATE_BLOCK_SIZE:
        return Selection("linear", 0, operation="alltoall")
    return Selection("pairwise", 0, operation="alltoall")


#: Block-size and communicator thresholds of the fixed scatter decision.
SCATTER_SMALL_BLOCK_SIZE = 300
SCATTER_SMALL_COMM_SIZE = 10


def ompi_scatter_decision(
    communicator_size: int, message_size: int
) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Scatter``.

    Port of ``ompi_coll_tuned_scatter_intra_dec_fixed``: binomial for
    small blocks on larger communicators, basic linear otherwise.
    ``message_size`` is the per-rank block size.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    if (
        communicator_size > SCATTER_SMALL_COMM_SIZE
        and message_size < SCATTER_SMALL_BLOCK_SIZE
    ):
        return Selection("binomial", 0, operation="scatter")
    return Selection("linear", 0, operation="scatter")


#: Fixed decision functions by operation.
FIXED_DECISIONS = {
    "bcast": ompi_bcast_decision,
    "reduce": ompi_reduce_decision,
    "gather": ompi_gather_decision,
    "barrier": ompi_barrier_decision,
    "allreduce": ompi_allreduce_decision,
    "allgather": ompi_allgather_decision,
    "alltoall": ompi_alltoall_decision,
    "scatter": ompi_scatter_decision,
}


class OmpiFixedSelector:
    """Selector interface over the fixed decision functions.

    ``operation`` picks the decision function: ``"bcast"`` (the paper's
    baseline) or any of the future-work extensions — ``"reduce"``,
    ``"gather"``, ``"barrier"``, ``"allreduce"``, ``"allgather"``,
    ``"alltoall"``, ``"scatter"``.
    """

    name = "ompi_fixed"

    def __init__(self, operation: str = "bcast"):
        if operation not in FIXED_DECISIONS:
            raise SelectionError(
                f"no fixed decision function for operation {operation!r}; "
                f"known: {', '.join(sorted(FIXED_DECISIONS))}"
            )
        self.operation = operation

    def select(self, procs: int, nbytes: int) -> Selection:
        return FIXED_DECISIONS[self.operation](procs, nbytes)
