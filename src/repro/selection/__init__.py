"""Runtime selection of collective algorithms.

Three selectors, matching the three curves of the paper's Fig. 5:

* :mod:`repro.selection.model_based` — the paper's contribution: pick the
  algorithm whose calibrated analytical model predicts the lowest time;
* :mod:`repro.selection.ompi_fixed` — the baseline: a port of Open MPI
  3.1's hard-coded broadcast decision function;
* :mod:`repro.selection.oracle` — the ground truth: measure every
  algorithm and pick the best.

:mod:`repro.selection.decision_table` precomputes a selector over a
``(P, m)`` grid and serialises it, the deployment artefact an MPI library
would ship.
"""

from repro.selection.codegen import (
    C_OPERATION_ALGORITHM_IDS,
    algorithm_ids_for,
    compile_python,
    generate_c,
    generate_python,
)
from repro.selection.decision_table import DecisionTable, build_decision_table
from repro.selection.flat_table import FlatDecisionTable
from repro.selection.model_based import ModelBasedSelector
from repro.selection.ompi_fixed import (
    OmpiFixedSelector,
    ompi_barrier_decision,
    ompi_bcast_decision,
    ompi_gather_decision,
    ompi_reduce_decision,
)
from repro.selection.oracle import MeasuredOracle, Selection

__all__ = [
    "C_OPERATION_ALGORITHM_IDS",
    "DecisionTable",
    "FlatDecisionTable",
    "MeasuredOracle",
    "ModelBasedSelector",
    "OmpiFixedSelector",
    "Selection",
    "algorithm_ids_for",
    "build_decision_table",
    "compile_python",
    "generate_c",
    "generate_python",
    "ompi_barrier_decision",
    "ompi_bcast_decision",
    "ompi_gather_decision",
    "ompi_reduce_decision",
]
