"""Tests for the alltoall algorithms."""

import collections

import pytest

from repro.clusters import MINICLUSTER
from repro.collectives.alltoall import ALLTOALL_ALGORITHMS
from repro.measure import run_timed
from repro.sim.trace import Tracer
from repro.units import KiB


def run_alltoall(name, procs, nbytes, tracer=None):
    tracer = tracer if tracer is not None else Tracer(enabled=False)
    algorithm = ALLTOALL_ALGORITHMS[name]

    def program(comm):
        yield from algorithm(comm, nbytes)

    return run_timed(MINICLUSTER, program, procs, tracer=tracer)


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(ALLTOALL_ALGORITHMS))
    @pytest.mark.parametrize("procs", [1, 2, 3, 4, 7, 8, 12])
    def test_completes(self, name, procs):
        assert run_alltoall(name, procs, 2 * KiB) >= 0.0

    @pytest.mark.parametrize("name", ["linear", "pairwise"])
    def test_every_rank_receives_p_minus_1_blocks(self, name):
        procs, nbytes = 8, 2 * KiB
        tracer = Tracer()
        run_alltoall(name, procs, nbytes, tracer=tracer)
        received = collections.Counter()
        for event in tracer.of_kind("recv_complete"):
            received[event.rank] += event.nbytes
        for rank in range(procs):
            assert received[rank] == (procs - 1) * nbytes, (name, rank)

    def test_bruck_total_volume_is_half_p_log_p(self):
        """Bruck trades volume for rounds: each rank ships ~(P/2)·log2(P)
        blocks instead of (P-1)."""
        procs, nbytes = 8, 2 * KiB
        tracer = Tracer()
        run_alltoall("bruck", procs, nbytes, tracer=tracer)
        sent = collections.Counter()
        for event in tracer.of_kind("send_post"):
            sent[event.rank] += event.nbytes
        per_rank = sent[0]
        assert per_rank == (procs // 2) * 3 * nbytes  # 4 blocks x 3 rounds

    def test_pairwise_rounds(self):
        procs = 6
        tracer = Tracer()
        run_alltoall("pairwise", procs, 1 * KiB, tracer=tracer)
        sends = collections.Counter(e.rank for e in tracer.of_kind("send_post"))
        assert all(count == procs - 1 for count in sends.values())

    def test_bruck_rounds_logarithmic(self):
        procs = 8
        tracer = Tracer()
        run_alltoall("bruck", procs, 1 * KiB, tracer=tracer)
        sends = collections.Counter(e.rank for e in tracer.of_kind("send_post"))
        assert all(count == 3 for count in sends.values())  # ceil(log2 8)


class TestRelativePerformance:
    def test_bruck_wins_for_tiny_blocks(self):
        """Small messages: log rounds beat P-1 rounds."""
        procs, nbytes = 12, 64
        bruck = run_alltoall("bruck", procs, nbytes)
        pairwise = run_alltoall("pairwise", procs, nbytes)
        assert bruck < pairwise

    def test_pairwise_wins_for_large_blocks(self):
        """Large messages: Bruck's extra volume dominates."""
        procs, nbytes = 12, 256 * KiB
        bruck = run_alltoall("bruck", procs, nbytes)
        pairwise = run_alltoall("pairwise", procs, nbytes)
        assert pairwise < bruck

    def test_registered_in_registry_and_mpiblib(self):
        from repro.collectives.registry import algorithm_names
        from repro.mpiblib import CollectiveBenchmark

        assert algorithm_names("alltoall") == ["bruck", "linear", "pairwise"]
        bench = CollectiveBenchmark(MINICLUSTER, max_reps=3)
        result = bench.run("alltoall", "pairwise", procs=6, nbytes=4 * KiB)
        assert result.mean > 0
