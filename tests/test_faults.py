"""Tests for the deterministic fault-injection layer (repro.faults).

Load-bearing properties:

* a disabled plan is *exactly* the no-fault path: same spec fingerprint,
  same timings, bit for bit;
* an enabled plan changes the fingerprint, so faulty results get their
  own cache keys;
* every fault kind has the advertised effect (stragglers/links slow the
  right transfers, loss costs timeouts, heavy tails jitter) and all of it
  is deterministic: same ``(cluster, plan, seed)`` → identical floats,
  serial or in a worker pool.
"""

from __future__ import annotations

import math

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import FaultError
from repro.exec import ParallelRunner, SimJob
from repro.faults import (
    CompositeNoise,
    FaultPlan,
    HeavyTailSpec,
    LinkFault,
    MessageLoss,
    MixtureNoise,
    ParetoNoise,
    StragglerFault,
    compose_noise,
    make_fault_noise,
)
from repro.measure import time_bcast
from repro.sim.noise import LognormalNoise, NoNoise
from repro.units import KiB


def bcast_time(spec, *, algorithm="binomial", procs=8, nbytes=64 * KiB, seed=0):
    return time_bcast(
        spec, procs=procs, nbytes=nbytes, algorithm=algorithm,
        segment_size=8 * KiB, seed=seed,
    )


STRAGGLER_PLAN = FaultPlan(
    stragglers=(StragglerFault(node=2, inject_factor=2.0, compute_factor=1.5),),
)


class TestPlanValidation:
    def test_duplicate_straggler_nodes_rejected(self):
        with pytest.raises(FaultError, match="duplicate straggler"):
            FaultPlan(stragglers=(
                StragglerFault(node=1, inject_factor=2.0),
                StragglerFault(node=1, compute_factor=2.0),
            ))

    @pytest.mark.parametrize("kwargs", [
        dict(node=-1), dict(node=0, inject_factor=0.5),
        dict(node=0, compute_factor=0.9),
    ])
    def test_bad_straggler_rejected(self, kwargs):
        with pytest.raises(FaultError):
            StragglerFault(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(src=-1, dst=0), dict(src=0, dst=1, latency_factor=0.5),
        dict(src=0, dst=1, start=5.0, end=1.0),
        dict(src=0, dst=1, on_fraction=1.5), dict(src=0, dst=1, period=-1),
    ])
    def test_bad_link_rejected(self, kwargs):
        with pytest.raises(FaultError):
            LinkFault(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(rate=1.0, timeout=1e-3), dict(rate=-0.1, timeout=1e-3),
        dict(rate=0.1, timeout=-1.0), dict(rate=0.1, timeout=1e-3, max_retries=-1),
    ])
    def test_bad_loss_rejected(self, kwargs):
        with pytest.raises(FaultError):
            MessageLoss(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(kind="gaussian"), dict(tail_index=1.0), dict(sigma=-0.1),
        dict(spike_probability=2.0), dict(spike_scale=0.5),
    ])
    def test_bad_heavy_tail_rejected(self, kwargs):
        with pytest.raises(FaultError):
            HeavyTailSpec(**kwargs)


class TestPlanSerialization:
    FULL = FaultPlan(
        stragglers=(StragglerFault(node=3, inject_factor=1.5),),
        links=(LinkFault(src=0, dst=3, latency_factor=2.0, byte_factor=1.5,
                         start=1e-3, period=2e-3, on_fraction=0.5),),
        loss=MessageLoss(rate=0.05, timeout=2e-3, max_retries=3),
        noise=HeavyTailSpec(kind="mixture", sigma=0.01),
        salt=7,
    )

    def test_payload_roundtrip_exact(self):
        assert FaultPlan.from_payload(self.FULL.payload()) == self.FULL

    def test_infinite_window_survives_json(self):
        restored = FaultPlan.from_payload(self.FULL.payload())
        assert math.isinf(restored.links[0].end)

    def test_fingerprint_stable_and_sensitive(self):
        assert self.FULL.fingerprint() == self.FULL.fingerprint()
        assert STRAGGLER_PLAN.fingerprint() != self.FULL.fingerprint()
        salted = FaultPlan(stragglers=self.FULL.stragglers, salt=8)
        base = FaultPlan(stragglers=self.FULL.stragglers, salt=7)
        assert salted.fingerprint() != base.fingerprint()

    def test_enabled(self):
        assert not FaultPlan().enabled()
        assert FaultPlan(salt=9).enabled() is False  # salt alone is inert
        assert STRAGGLER_PLAN.enabled()


class TestDisabledPlanIsNoFaultPath:
    def test_fingerprint_unchanged(self):
        assert (MINICLUSTER.with_faults(FaultPlan()).fingerprint()
                == MINICLUSTER.fingerprint())

    def test_timings_bit_identical(self):
        inert = MINICLUSTER.with_faults(FaultPlan())
        for algorithm in ("binomial", "chain", "linear"):
            assert (bcast_time(inert, algorithm=algorithm)
                    == bcast_time(MINICLUSTER, algorithm=algorithm))

    def test_enabled_plan_changes_fingerprint(self):
        faulted = MINICLUSTER.with_faults(STRAGGLER_PLAN)
        assert faulted.fingerprint() != MINICLUSTER.fingerprint()
        # ...and SimJob fingerprints follow, so caches never mix results.
        job = dict(kind="bcast", procs=8, algorithm="binomial",
                   nbytes=8 * KiB, segment_size=0, seed=0)
        assert (SimJob(spec=faulted, **job).fingerprint()
                != SimJob(spec=MINICLUSTER, **job).fingerprint())


class TestStragglers:
    # One straggler node per algorithm, chosen on that tree's critical
    # path at P=8: the chain pipelines through every rank, the binomial
    # critical path runs 0 -> 4 -> 6 -> 7, the binary one 0 -> 1 -> 3 -> 7.
    @pytest.mark.parametrize("algorithm, node", [
        ("chain", 2), ("binomial", 4), ("binary", 1),
    ])
    def test_critical_path_straggler_slows_broadcast(self, algorithm, node):
        plan = FaultPlan(stragglers=(
            StragglerFault(node=node, inject_factor=2.0, compute_factor=1.5),
        ))
        faulted = MINICLUSTER.with_faults(plan)
        assert (bcast_time(faulted, algorithm=algorithm)
                > bcast_time(MINICLUSTER, algorithm=algorithm))

    def test_leaf_straggler_invisible_to_linear(self):
        # In the linear tree only the root sends; a non-root straggler's
        # injection slowdown cannot surface.
        faulted = MINICLUSTER.with_faults(STRAGGLER_PLAN)
        assert (bcast_time(faulted, algorithm="linear")
                == bcast_time(MINICLUSTER, algorithm="linear"))

    def test_straggler_on_unused_node_is_inert(self):
        plan = FaultPlan(stragglers=(
            StragglerFault(node=15, inject_factor=3.0, compute_factor=3.0),
        ))
        faulted = MINICLUSTER.with_faults(plan)
        assert bcast_time(faulted, procs=8) == bcast_time(MINICLUSTER, procs=8)


class TestLinks:
    def test_degraded_link_slows_crossing_messages(self):
        plan = FaultPlan(links=(
            LinkFault(src=0, dst=1, latency_factor=4.0, byte_factor=2.0),
        ))
        faulted = MINICLUSTER.with_faults(plan)
        assert bcast_time(faulted, algorithm="linear") > bcast_time(
            MINICLUSTER, algorithm="linear")

    def test_unused_link_is_inert(self):
        plan = FaultPlan(links=(
            LinkFault(src=14, dst=15, latency_factor=4.0),
        ))
        faulted = MINICLUSTER.with_faults(plan)
        assert (bcast_time(faulted, procs=8)
                == bcast_time(MINICLUSTER, procs=8))

    def test_flapping_windows(self):
        fault = LinkFault(src=0, dst=1, latency_factor=2.0,
                          start=1.0, end=5.0, period=1.0, on_fraction=0.25)
        assert not fault.active(0.5)       # before the window
        assert fault.active(1.1)           # first quarter of a period: on
        assert not fault.active(1.9)       # rest of the period: off
        assert fault.active(3.2)
        assert not fault.active(6.0)       # after the window
        always = LinkFault(src=0, dst=1, latency_factor=2.0)
        assert always.active(0.0) and always.active(1e9)


class TestMessageLoss:
    PLAN = FaultPlan(loss=MessageLoss(rate=0.2, timeout=1e-3, max_retries=4))

    def test_loss_costs_time_and_is_deterministic(self):
        faulted = MINICLUSTER.with_faults(self.PLAN)
        lossy = bcast_time(faulted, seed=3)
        assert lossy > bcast_time(MINICLUSTER, seed=3)
        assert lossy == bcast_time(faulted, seed=3)  # replays exactly

    def test_loss_realisation_depends_on_seed_and_salt(self):
        faulted = MINICLUSTER.with_faults(self.PLAN)
        assert bcast_time(faulted, seed=3) != bcast_time(faulted, seed=4)
        salted = MINICLUSTER.with_faults(
            FaultPlan(loss=self.PLAN.loss, salt=1))
        assert bcast_time(salted, seed=3) != bcast_time(faulted, seed=3)

    def test_world_counts_lost_messages(self):
        from repro.collectives.bcast import BCAST_ALGORITHMS

        faulted = MINICLUSTER.with_faults(self.PLAN)
        world = faulted.make_world(8, seed=3)
        algorithm = BCAST_ALGORITHMS["binomial"]

        def body(comm):
            yield from algorithm(comm, 0, 64 * KiB, 8 * KiB)

        world.run(body)
        assert world.fabric.messages_lost > 0


class TestHeavyTailNoise:
    def test_pareto_factors_unit_mean(self):
        noise = ParetoNoise(tail_index=2.5, seed=1)
        mean = sum(noise.factor() for _ in range(20000)) / 20000
        assert mean == pytest.approx(1.0, rel=0.05)
        assert all(noise.factor() > 0 for _ in range(100))

    def test_mixture_factors_unit_mean_with_spikes(self):
        noise = MixtureNoise(sigma=0.02, spike_probability=0.05,
                             spike_scale=5.0, tail_index=2.5, seed=1)
        samples = [noise.factor() for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.05)
        assert max(samples) > 2.0  # the spikes are really there

    def test_reseed_replays_stream(self):
        noise = ParetoNoise(tail_index=2.0, seed=9)
        first = [noise.factor() for _ in range(5)]
        noise.reseed(9)
        assert [noise.factor() for _ in range(5)] == first

    def test_compose_noise_shapes(self):
        assert isinstance(compose_noise(0.0, None, seed=0), NoNoise)
        assert isinstance(compose_noise(0.02, None, seed=0), LognormalNoise)
        assert isinstance(
            compose_noise(0.0, HeavyTailSpec(kind="pareto"), seed=0),
            ParetoNoise,
        )
        both = compose_noise(0.02, HeavyTailSpec(kind="pareto"), seed=0)
        assert isinstance(both, CompositeNoise)

    def test_make_fault_noise_dispatch(self):
        assert isinstance(
            make_fault_noise(HeavyTailSpec(kind="pareto"), seed=0), ParetoNoise)
        assert isinstance(
            make_fault_noise(HeavyTailSpec(kind="mixture"), seed=0), MixtureNoise)

    def test_heavy_tail_run_varies_by_seed_not_by_repeat(self):
        faulted = MINICLUSTER.with_faults(
            FaultPlan(noise=HeavyTailSpec(kind="mixture", sigma=0.05)))
        a, b = bcast_time(faulted, seed=1), bcast_time(faulted, seed=2)
        assert a != b
        assert bcast_time(faulted, seed=1) == a


class TestDeterminismAcrossWorkers:
    """Same (cluster, FaultPlan, seed): serial == parallel, bit for bit."""

    PLAN = FaultPlan(
        stragglers=(StragglerFault(node=4, inject_factor=1.3),),
        links=(LinkFault(src=0, dst=2, latency_factor=1.5),),
        loss=MessageLoss(rate=0.1, timeout=5e-4),
        noise=HeavyTailSpec(kind="mixture", sigma=0.02),
    )

    def test_serial_vs_pool_bit_identical(self):
        faulted = MINICLUSTER.with_faults(self.PLAN)
        batch = [
            SimJob(spec=faulted, kind="bcast", procs=8, algorithm=algorithm,
                   nbytes=64 * KiB, segment_size=8 * KiB, seed=seed)
            for algorithm in ("binomial", "chain", "split_binary")
            for seed in (0, 1)
        ]
        serial = ParallelRunner(jobs=1)
        parallel = ParallelRunner(jobs=2)
        try:
            assert serial.run(batch) == parallel.run(batch)
        finally:
            serial.close()
            parallel.close()


class TestChaosHelpers:
    def test_severity_zero_plan_is_disabled(self):
        from repro.bench.chaos import severity_plan

        assert not severity_plan(MINICLUSTER, 8, 0.0).enabled()

    def test_severity_scales_straggler(self):
        from repro.bench.chaos import severity_plan, straggler_node

        plan = severity_plan(MINICLUSTER, 8, 0.02)
        (straggler,) = plan.stragglers
        assert straggler.node == straggler_node(MINICLUSTER, 8)
        assert straggler.inject_factor == pytest.approx(1.2)
        assert straggler.compute_factor == pytest.approx(1.1)

    def test_negative_severity_rejected(self):
        from repro.bench.chaos import severity_plan
        from repro.errors import EstimationError

        with pytest.raises(EstimationError):
            severity_plan(MINICLUSTER, 8, -0.1)
