"""Persistent, content-addressed cache of simulation results.

Layout: one JSON-lines file per schema version, ``results-v1.jsonl``, in the
cache directory (default ``~/.cache/repro``, overridable with the CLI's
``--cache-dir`` or ``REPRO_CACHE_DIR``).  The first line is a header
recording the schema version and a *code salt* — a hash of every source
file whose behaviour can change a simulated time (the simulator substrate,
the MPI layer, the collectives, the topologies, the platform presets and
the experiment programs).  Each following line is one ``{"k": ..., "v": ...}``
entry keyed by :meth:`repro.exec.job.SimJob.fingerprint`.

Invalidation rules (documented in docs/PERFORMANCE.md):

* **Platform change** — the job fingerprint embeds
  :meth:`ClusterSpec.fingerprint`, so results for a modified platform are
  simply new keys; old entries stay valid for the old platform.
* **Code change** — when any salted source file changes, the header salt no
  longer matches and the whole file is dropped (counted in
  ``stats.invalidated``) before new results are written.
* **Corruption** — unparseable lines are skipped and counted; the cache
  never propagates a bad value.

Writes are append-only single lines, flushed immediately, so concurrent
readers of a live cache see a prefix of it and never a torn JSON document.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CacheError

#: Bump to force a global invalidation on cache format changes.
CACHE_SCHEMA = 1

#: Sub-packages / modules of ``repro`` whose code determines simulated times.
_SALTED_SOURCES = (
    "sim",
    "mpi",
    "topology",
    "collectives",
    "clusters",
    "faults",
    "measure.py",
    "units.py",
)

_code_salt: str | None = None


def code_salt() -> str:
    """Hash of the simulation-relevant source files (computed once).

    Any edit to the simulator, the MPI layer, a collective algorithm, a
    topology builder, a preset or an experiment program changes this salt
    and therefore invalidates every cached result.
    """
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for entry in _SALTED_SOURCES:
            path = package_root / entry
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for source in files:
                digest.update(source.name.encode())
                digest.update(source.read_bytes())
        _code_salt = digest.hexdigest()
    return _code_salt


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache` instance's activity."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries loaded from disk at open time.
    loaded: int = 0
    #: Entries dropped at open time because the code salt went stale.
    invalidated: int = 0
    #: Lines skipped at open time because they were corrupt or half-written
    #: (torn JSON, truncated tail, non-UTF-8 bytes, wrong entry shape).
    corrupt_lines: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "loaded": self.loaded,
            "invalidated": self.invalidated,
            "corrupt_lines": self.corrupt_lines,
        }


class ResultCache:
    """A persistent ``fingerprint -> simulated seconds`` store."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.path = self.directory / f"results-v{CACHE_SCHEMA}.jsonl"
        self.stats = CacheStats()
        self._entries: dict[str, float] = {}
        self._handle = None
        self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        salt = code_salt()
        stale = 0
        torn_tail = False
        if self.path.exists():
            # Binary mode so a line of non-UTF-8 garbage (a torn page, a
            # disk-level scribble) surfaces as a per-line decode error we
            # can skip, not a mid-iteration crash of the whole run.
            try:
                handle = open(self.path, "rb")
            except OSError as error:
                raise CacheError(
                    f"cannot read result cache at {self.path}: {error}"
                ) from error
            with handle:
                raw_header = handle.readline()
                try:
                    header = json.loads(raw_header) if raw_header.strip() else {}
                except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
                    header = {}
                if not isinstance(header, dict):
                    # Valid JSON that isn't an object (a bare number, a
                    # list) must not crash the salt check below.
                    header = {}
                fresh = (
                    header.get("schema") == CACHE_SCHEMA
                    and header.get("salt") == salt
                )
                for raw in handle:
                    if not fresh:
                        stale += 1
                        continue
                    if not raw.endswith(b"\n"):
                        # A half-written final line: even if it happens to
                        # parse, the next append would concatenate with it,
                        # so drop it and force a sanitising rewrite.
                        torn_tail = True
                        self.stats.corrupt_lines += 1
                        continue
                    try:
                        entry = json.loads(raw)
                        self._entries[entry["k"]] = float(entry["v"])
                    except (
                        json.JSONDecodeError,
                        UnicodeDecodeError,
                        KeyError,
                        TypeError,
                        ValueError,
                    ):
                        self.stats.corrupt_lines += 1
                if not fresh:
                    self.stats.invalidated += stale
        self.stats.loaded = len(self._entries)
        if (
            stale
            or torn_tail
            or self.stats.corrupt_lines
            or not self.path.exists()
        ):
            self._rewrite(salt)

    def _rewrite(self, salt: str) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(
                    json.dumps({"schema": CACHE_SCHEMA, "salt": salt}) + "\n"
                )
                for key, value in self._entries.items():
                    handle.write(json.dumps({"k": key, "v": value}) + "\n")
        except OSError as error:
            raise CacheError(
                f"cannot write result cache at {self.path}: {error}"
            ) from error

    def _append(self, key: str, value: float, flush: bool = True) -> None:
        if self._handle is None:
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            except OSError as error:
                raise CacheError(
                    f"cannot write result cache at {self.path}: {error}"
                ) from error
        self._handle.write(json.dumps({"k": key, "v": value}) + "\n")
        if flush:
            self._handle.flush()

    def close(self) -> None:
        """Flush and release the append handle (safe to call repeatedly)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- store interface ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> float | None:
        """The cached result for ``key``, or ``None`` (counted hit/miss)."""
        value = self._entries.get(key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def put(self, key: str, value: float) -> None:
        """Store ``key -> value``, appending to the persistent file."""
        if key in self._entries:
            return
        self._entries[key] = value
        self.stats.stores += 1
        self._append(key, value)

    def put_many(self, pairs) -> None:
        """Store many ``(key, value)`` entries with a single flush.

        Batch slabs resolve hundreds of cells at once; flushing per line
        (as :meth:`put` does) would issue one syscall per cell.  Each line
        is still written whole, so concurrent readers keep seeing only
        complete JSON documents.
        """
        wrote = False
        for key, value in pairs:
            if key in self._entries:
                continue
            self._entries[key] = value
            self.stats.stores += 1
            self._append(key, value, flush=False)
            wrote = True
        if wrote:
            self._handle.flush()

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        self.close()
        self._entries.clear()
        self._rewrite(code_salt())

    def describe(self) -> dict:
        """Inspection view used by ``repro cache stats``."""
        return {
            "directory": str(self.directory),
            "file": str(self.path),
            "entries": len(self._entries),
            "file_bytes": self.path.stat().st_size if self.path.exists() else 0,
            **self.stats.as_dict(),
        }
