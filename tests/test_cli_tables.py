"""Tests for the CLI's table/figure commands on the fast test cluster."""

import pytest

from repro.cli import main


class TestTable1Command:
    def test_table1_on_minicluster(self, capsys):
        code = main(["table1", "--clusters", "minicluster"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "minicluster" in out
        # gamma rows for P=3..7 present.
        for procs in range(3, 8):
            assert f"\n{procs} " in out or out.startswith(f"{procs} ")

    def test_table1_rejects_unknown_cluster(self, capsys):
        code = main(["table1", "--clusters", "atlantis"])
        assert code == 1
        assert "unknown cluster" in capsys.readouterr().err


class TestCalibrateCommand:
    @pytest.fixture(scope="class")
    def calibration_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli2") / "mini.json"
        code = main(
            [
                "calibrate",
                "--cluster",
                "minicluster",
                "--output",
                str(path),
                "--max-reps",
                "3",
            ]
        )
        assert code == 0
        return path

    def test_calibrate_writes_loadable_platform(self, calibration_path):
        from repro.estimation.workflow import PlatformModel

        platform = PlatformModel.load(calibration_path)
        assert platform.cluster == "minicluster"
        assert len(platform.algorithms) == 6  # the paper's six by default

    def test_select_round_trip_through_cli(self, calibration_path, capsys):
        code = main(
            [
                "select",
                "--calibration",
                str(calibration_path),
                "-P",
                "12",
                "-m",
                "512K",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P=12" in out and "512 KB" in out
