"""Implementation-derived models of the reduce algorithms (future work).

The paper's conclusion proposes extending the approach to the remaining
collectives; reduction is the natural first step because every broadcast
tree runs backwards: data flows leaf-to-root, each interior node *receives*
one segment from each of its ``k`` children per stage (the mirror image of
the non-blocking linear broadcast, so the same γ(k+1) applies to the
serialised drain at the parent's NIC) and pays the reduction operator on
top — a per-byte CPU cost that the in-context α/β estimation absorbs
without any model change, which is precisely the strength of the paper's
contribution 2.

Model forms (τ = α + m_s·β):

* linear:            T = (P-1)·(α + m·β)           (ingress serialisation)
* chain (pipeline):  c_α = P-1, c_β = (n_s + P - 2)·m_s   (latency paid on
  the fill hops, bytes on every stage — same reading as the broadcast
  chain model)
* binary:            T = (n_s + H - 1)·γ(3)·τ
* binomial:          the dual of paper Eq. 6
* in-order binomial: structurally identical to binomial (children order
  does not change stage counts)
"""

from __future__ import annotations

from repro.models.base import BcastModel
from repro.models.derived import (
    BinaryTreeModel,
    BinomialTreeModel,
    ChainTreeModel,
    LinearTreeModel,
)
from repro.models.hierarchical import HierarchicalReduceModel


class LinearReduceModel(LinearTreeModel):
    """Linear reduce: ``(P-1)`` messages drain through the root's NIC."""

    algorithm = "linear"


class ChainReduceModel(ChainTreeModel):
    """Pipelined chain reduce (dual of the chain broadcast)."""

    algorithm = "chain"


class BinaryReduceModel(BinaryTreeModel):
    """Binary-tree reduce: γ(3) per stage, combining two children."""

    algorithm = "binary"


class BinomialReduceModel(BinomialTreeModel):
    """Binomial-tree reduce (dual of paper Eq. 6)."""

    algorithm = "binomial"


class InOrderBinomialReduceModel(BinomialTreeModel):
    """In-order binomial reduce: same stage structure as binomial."""

    algorithm = "in_order_binomial"


#: Derived reduce models keyed by the reduce algorithm they describe.
DERIVED_REDUCE_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (
        LinearReduceModel,
        ChainReduceModel,
        BinaryReduceModel,
        BinomialReduceModel,
        InOrderBinomialReduceModel,
        HierarchicalReduceModel,
    )
}
