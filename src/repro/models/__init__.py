"""Analytical performance models of collective algorithms.

Two families:

* :mod:`repro.models.derived` — the paper's contribution:
  implementation-derived models of the six Open MPI broadcast algorithms,
  parameterised by per-algorithm Hockney parameters ``(α, β)`` and the
  platform function ``γ(P)`` (:mod:`repro.models.gamma`);
* :mod:`repro.models.traditional` — textbook models built only from the
  algorithms' mathematical definitions with point-to-point-measured
  parameters (Thakur et al., Pjevsivac-Grbovic et al.), reproduced as the
  straw man of the paper's Fig. 1;

plus the Hockney point-to-point model, the linear-gather model used by the
estimation experiments (paper Eq. 8), and LogP-family models from the
related-work survey (§2.2).
"""

from repro.models.base import BcastModel, LinearCoefficients
from repro.models.derived import (
    DERIVED_BCAST_MODELS,
    BinaryTreeModel,
    BinomialTreeModel,
    ChainTreeModel,
    KChainTreeModel,
    LinearTreeModel,
    SplitBinaryTreeModel,
)
from repro.models.gamma import GammaFunction
from repro.models.gather_models import linear_gather_coefficients, linear_gather_time
from repro.models.hockney import HockneyParams
from repro.models.traditional import TRADITIONAL_BCAST_MODELS

__all__ = [
    "DERIVED_BCAST_MODELS",
    "TRADITIONAL_BCAST_MODELS",
    "BcastModel",
    "BinaryTreeModel",
    "BinomialTreeModel",
    "ChainTreeModel",
    "GammaFunction",
    "HockneyParams",
    "KChainTreeModel",
    "LinearCoefficients",
    "LinearTreeModel",
    "SplitBinaryTreeModel",
    "linear_gather_coefficients",
    "linear_gather_time",
]
