"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_parser, main, parse_size
from repro.errors import ReproError
from repro.units import KiB, MiB


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("8K", 8 * KiB),
            ("8k", 8 * KiB),
            ("8KB", 8 * KiB),
            ("8KiB", 8 * KiB),
            ("4M", 4 * MiB),
            ("512", 512),
            ("1.5K", 1536),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_size("lots")


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "clusters",
            "calibrate",
            "predict",
            "select",
            "table1",
            "table2",
            "table3",
            "fig5",
            "reduce-table",
            "decision-table",
            "decision-fn",
            "artifact",
            "serve",
            "cache",
        ):
            assert command in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_clusters(self, capsys):
        assert main(["clusters"]) == 0
        out = capsys.readouterr().out
        assert "grisou" in out and "gros" in out

    @pytest.fixture(scope="class")
    def calibration_file(self, tmp_path_factory, mini_platform):
        path = tmp_path_factory.mktemp("cli") / "mini.json"
        mini_platform.save(path)
        return path

    def test_select(self, capsys, calibration_file):
        code = main(
            ["select", "--calibration", str(calibration_file), "-P", "12", "-m", "256K"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P=12" in out and "predicted" in out

    def test_predict_lists_all_algorithms(self, capsys, calibration_file):
        code = main(
            ["predict", "--calibration", str(calibration_file), "-P", "8", "-m", "64K"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("binary", "binomial", "chain", "linear", "split_binary"):
            assert name in out

    def test_decision_table(self, capsys, calibration_file, tmp_path):
        output = tmp_path / "table.json"
        code = main(
            [
                "decision-table",
                "--calibration",
                str(calibration_file),
                "--output",
                str(output),
                "--min-procs",
                "2",
                "--max-procs",
                "8",
                "--procs-step",
                "2",
            ]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert data["proc_points"] == [2, 4, 6, 8]
        assert len(data["size_points"]) == 10

    def test_error_reported_as_exit_code(self, capsys):
        code = main(["calibrate", "--cluster", "atlantis", "--output", "/tmp/x.json"])
        assert code == 1
        assert "unknown cluster" in capsys.readouterr().err

    @pytest.fixture(scope="class")
    def table_file(self, tmp_path_factory, calibration_file):
        path = tmp_path_factory.mktemp("cli") / "table.json"
        code = main(
            [
                "decision-table",
                "--calibration", str(calibration_file),
                "--output", str(path),
                "--min-procs", "2",
                "--max-procs", "8",
                "--procs-step", "2",
            ]
        )
        assert code == 0
        return path

    def test_decision_fn_python_backend(self, capsys, table_file, tmp_path):
        out = tmp_path / "decide.py"
        code = main(
            [
                "decision-fn",
                "--table", str(table_file),
                "--backend", "python",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "python decision function" in capsys.readouterr().out
        namespace = {}
        exec(compile(out.read_text(), str(out), "exec"), namespace)
        algorithm, segment = namespace["select_bcast"](8, 64 * KiB)
        assert isinstance(algorithm, str) and segment >= 0

    def test_decision_fn_c_backend(self, table_file, tmp_path):
        out = tmp_path / "decide.c"
        code = main(
            [
                "decision-fn",
                "--table", str(table_file),
                "--backend", "c",
                "--out", str(out),
                "--function-name", "my_decider",
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "int my_decider(" in text and "*segsize" in text

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        from repro.exec import ResultCache

        cache = ResultCache(tmp_path)
        cache.put("deadbeef", 1.5)
        cache.close()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries   1" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "entries   0" in capsys.readouterr().out

    def test_cache_stats_without_cache_file(self, capsys, tmp_path):
        empty = tmp_path / "fresh"
        assert main(["cache", "stats", "--cache-dir", str(empty)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_artifact_verify(self, capsys, mini_platform, tmp_path):
        from repro.clusters import MINICLUSTER
        from repro.service import build_artifact
        from repro.units import log_spaced_sizes

        artifact = build_artifact(
            MINICLUSTER,
            proc_points=(2, 8, 16),
            size_points=log_spaced_sizes(8 * KiB, 1 * MiB, 4),
            platforms={"bcast": mini_platform},
        )
        path = artifact.save(tmp_path / "artifact.json")
        assert main(["artifact", "verify", str(path)]) == 0
        assert "hash verified" in capsys.readouterr().out

    def test_artifact_verify_rejects_corruption(self, capsys, mini_platform,
                                                tmp_path):
        from repro.clusters import MINICLUSTER
        from repro.service import build_artifact
        from repro.units import log_spaced_sizes

        artifact = build_artifact(
            MINICLUSTER,
            proc_points=(2, 16),
            size_points=log_spaced_sizes(8 * KiB, 1 * MiB, 4),
            platforms={"bcast": mini_platform},
        )
        path = artifact.save(tmp_path / "artifact.json")
        data = json.loads(path.read_text())
        data["payload"]["cluster"] = "tampered"
        path.write_text(json.dumps(data))
        assert main(["artifact", "verify", str(path)]) == 1
        assert "hash mismatch" in capsys.readouterr().err
