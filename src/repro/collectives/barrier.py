"""Barrier algorithms.

The paper's γ(P) measurement (§4.1) interleaves the timed broadcast calls
with barriers, and MPIBlib-style measurement synchronises repetitions with
barriers, so the simulator needs faithful barriers too.  Ports of the
algorithms in ``coll_base_barrier.c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mpi.communicator import Communicator
from repro.sim.engine import SimGen

#: Tag space for barrier rounds.
TAG_BARRIER = 3_000
#: Barrier messages are empty; the cost is pure latency/overhead.
_BARRIER_BYTES = 0


def barrier_linear(comm: Communicator, root: int = 0) -> SimGen:
    """Fan-in/fan-out linear barrier (``barrier_intra_basic_linear``)."""
    size = comm.size
    if size == 1:
        return
    if comm.rank == root:
        requests = []
        for peer in range(size):
            if peer != root:
                request = yield from comm.irecv(peer, tag=TAG_BARRIER)
                requests.append(request)
        yield from comm.waitall(requests)
        requests = []
        for peer in range(size):
            if peer != root:
                request = yield from comm.isend(peer, _BARRIER_BYTES, tag=TAG_BARRIER + 1)
                requests.append(request)
        yield from comm.waitall(requests)
    else:
        yield from comm.send(root, _BARRIER_BYTES, tag=TAG_BARRIER)
        yield from comm.recv(root, tag=TAG_BARRIER + 1)


def barrier_recursive_doubling(comm: Communicator, root: int = 0) -> SimGen:
    """Recursive-doubling barrier (``barrier_intra_recursivedoubling``).

    Non-power-of-two sizes fold the surplus ranks into the largest power of
    two below the communicator size, run log2 exchange rounds inside the
    base group, then release the surplus ranks.
    """
    del root  # barriers have no root; kept for interface uniformity
    size = comm.size
    if size == 1:
        return
    rank = comm.rank
    base = 1
    while base * 2 <= size:
        base *= 2
    surplus = size - base

    if rank >= base:
        # Surplus rank: notify a base partner, wait for release.
        partner = rank - base
        yield from comm.send(partner, _BARRIER_BYTES, tag=TAG_BARRIER)
        yield from comm.recv(partner, tag=TAG_BARRIER + 99)
        return

    if rank < surplus:
        yield from comm.recv(rank + base, tag=TAG_BARRIER)

    distance = 1
    round_index = 1
    while distance < base:
        partner = rank ^ distance
        yield from comm.sendrecv(
            dest=partner,
            nbytes=_BARRIER_BYTES,
            source=partner,
            sendtag=TAG_BARRIER + round_index,
            recvtag=TAG_BARRIER + round_index,
        )
        distance *= 2
        round_index += 1

    if rank < surplus:
        yield from comm.send(rank + base, _BARRIER_BYTES, tag=TAG_BARRIER + 99)


def barrier_double_ring(comm: Communicator, root: int = 0) -> SimGen:
    """Double-ring barrier (``barrier_intra_doublering``).

    A token circulates the ring twice; the first pass establishes that
    everyone arrived, the second releases everyone.
    """
    del root
    size = comm.size
    if size == 1:
        return
    rank = comm.rank
    left = (rank + size - 1) % size
    right = (rank + 1) % size
    for lap in (0, 1):
        tag = TAG_BARRIER + 10 + lap
        if rank == 0:
            yield from comm.send(right, _BARRIER_BYTES, tag=tag)
            yield from comm.recv(left, tag=tag)
        else:
            yield from comm.recv(left, tag=tag)
            yield from comm.send(right, _BARRIER_BYTES, tag=tag)


def barrier_bruck(comm: Communicator, root: int = 0) -> SimGen:
    """Bruck (dissemination) barrier (``barrier_intra_bruck``).

    ``ceil(log2 P)`` rounds; in round ``k`` each rank sends to
    ``rank + 2^k`` and receives from ``rank - 2^k`` (mod P).  Works for any
    communicator size.
    """
    del root
    size = comm.size
    if size == 1:
        return
    rank = comm.rank
    distance = 1
    round_index = 0
    while distance < size:
        to = (rank + distance) % size
        frm = (rank - distance + size) % size
        tag = TAG_BARRIER + 20 + round_index
        yield from comm.sendrecv(
            dest=to, nbytes=_BARRIER_BYTES, source=frm, sendtag=tag, recvtag=tag
        )
        distance *= 2
        round_index += 1


#: Signature shared by barrier algorithms.
BarrierFn = Callable[[Communicator], SimGen]


@dataclass(frozen=True)
class BarrierAlgorithm:
    """Catalogue entry for one barrier algorithm."""

    name: str
    display_name: str
    func: Callable[..., SimGen]

    def __call__(self, comm: Communicator) -> SimGen:
        return self.func(comm)


#: Barrier algorithm catalogue.
BARRIER_ALGORITHMS: dict[str, BarrierAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        BarrierAlgorithm("linear", "Fan-in/fan-out", barrier_linear),
        BarrierAlgorithm(
            "recursive_doubling", "Recursive doubling", barrier_recursive_doubling
        ),
        BarrierAlgorithm("double_ring", "Double ring", barrier_double_ring),
        BarrierAlgorithm("bruck", "Bruck dissemination", barrier_bruck),
    )
}

#: The barrier the measurement harness uses between repetitions.
DEFAULT_BARRIER = BARRIER_ALGORITHMS["recursive_doubling"]
