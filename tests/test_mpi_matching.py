"""Tests for the tag-matching engine in isolation."""

from repro.mpi.matching import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    MatchingEngine,
    PostedRecv,
)


def make_recv(cid=0, src=ANY_SOURCE, tag=ANY_TAG, log=None):
    log = log if log is not None else []

    def complete(message, now):
        log.append((message, now))

    return PostedRecv(cid, src, tag, complete), log


def make_envelope(cid=0, src=0, tag=0, nbytes=10, arrival=1.0):
    return Envelope(cid, src, tag, nbytes, arrival)


class TestMatchRules:
    def test_exact_match(self):
        recv, _ = make_recv(cid=1, src=2, tag=3)
        assert recv.matches(1, 2, 3)

    def test_context_mismatch_never_matches(self):
        recv, _ = make_recv(cid=1, src=ANY_SOURCE, tag=ANY_TAG)
        assert not recv.matches(2, 0, 0)

    def test_wildcard_source(self):
        recv, _ = make_recv(src=ANY_SOURCE, tag=5)
        assert recv.matches(0, 7, 5)
        assert not recv.matches(0, 7, 6)

    def test_wildcard_tag(self):
        recv, _ = make_recv(src=3, tag=ANY_TAG)
        assert recv.matches(0, 3, 99)
        assert not recv.matches(0, 4, 99)


class TestEngineQueues:
    def test_arrival_matches_posted_recv(self):
        engine = MatchingEngine()
        recv, log = make_recv(src=1, tag=2)
        engine.post(recv, now=0.0)
        message = make_envelope(src=1, tag=2)
        engine.arrive(message, now=1.5)
        assert log == [(message, 1.5)]
        assert engine.idle()

    def test_unmatched_arrival_queues_as_unexpected(self):
        engine = MatchingEngine()
        engine.arrive(make_envelope(), now=1.0)
        assert not engine.idle()
        recv, log = make_recv()
        engine.post(recv, now=2.0)
        assert len(log) == 1
        assert engine.idle()

    def test_posted_recvs_matched_fifo(self):
        engine = MatchingEngine()
        first, first_log = make_recv(src=ANY_SOURCE, tag=ANY_TAG)
        second, second_log = make_recv(src=ANY_SOURCE, tag=ANY_TAG)
        engine.post(first, now=0.0)
        engine.post(second, now=0.0)
        engine.arrive(make_envelope(nbytes=1), now=1.0)
        assert len(first_log) == 1 and not second_log

    def test_unexpected_matched_in_arrival_order(self):
        """The non-overtaking rule at the queue level."""
        engine = MatchingEngine()
        early = make_envelope(nbytes=1, arrival=1.0)
        late = make_envelope(nbytes=2, arrival=2.0)
        engine.arrive(early, now=1.0)
        engine.arrive(late, now=2.0)
        recv, log = make_recv()
        engine.post(recv, now=3.0)
        assert log[0][0] is early

    def test_selective_recv_skips_non_matching_unexpected(self):
        engine = MatchingEngine()
        engine.arrive(make_envelope(tag=1, nbytes=111), now=1.0)
        engine.arrive(make_envelope(tag=2, nbytes=222), now=1.0)
        recv, log = make_recv(src=ANY_SOURCE, tag=2)
        engine.post(recv, now=2.0)
        assert log[0][0].nbytes == 222
        # The tag-1 message is still waiting.
        assert not engine.idle()

    def test_posted_recv_with_specific_source_not_stolen(self):
        engine = MatchingEngine()
        specific, specific_log = make_recv(src=5, tag=ANY_TAG)
        engine.post(specific, now=0.0)
        engine.arrive(make_envelope(src=4), now=1.0)
        assert not specific_log  # source 4 does not match recv for source 5
        assert len(engine.unexpected) == 1
