"""Measurement of LogP/LogGP/PLogP parameters (related work, §2.2).

Implements the classical point-to-point measurement procedures the paper's
survey cites — all of them built purely on ping-pong-style experiments,
which is exactly the limitation (no collective context) the paper's own
method removes:

* Culler et al.'s LogP method: the gap ``g`` from the saturation rate of a
  long back-to-back send burst; ``o_s``/``o_r`` from the cost of an
  isolated send/receive; ``L`` from the round trip minus the overheads.
* Kielmann et al.'s PLogP method: the same quantities as functions of the
  message size, measured per size.
"""

from __future__ import annotations

from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.measure import run_timed, time_p2p_roundtrip
from repro.models.logp import LogGPParams, LogPParams, PLogPParams
from repro.units import KiB

#: Messages in the saturation burst used to estimate the gap.
DEFAULT_BURST = 64


def _saturation_gap(spec: ClusterSpec, nbytes: int, burst: int, seed: int) -> float:
    """Per-message interval of a long non-blocking send burst (Culler's g).

    The sender issues ``burst`` isends back to back and waits for local
    completion; the receiver pre-posts everything.  The slope of time over
    messages is the gap at this size.
    """

    def program(comm):
        if comm.rank == 0:
            requests = []
            for index in range(burst):
                request = yield from comm.isend(1, nbytes, tag=9_000 + index)
                requests.append(request)
            yield from comm.waitall(requests)
        else:
            requests = []
            for index in range(burst):
                request = yield from comm.irecv(0, tag=9_000 + index)
                requests.append(request)
            yield from comm.waitall(requests)

    total = run_timed(
        spec, program, 2, root=0, seed=seed, policy="root", mapping="spread"
    )
    return total / burst


def _send_overhead(spec: ClusterSpec, nbytes: int, seed: int) -> float:
    """CPU time an isolated isend charges the caller (Culler's o_s)."""

    def program(comm):
        if comm.rank == 0:
            request = yield from comm.isend(1, nbytes, tag=9_500)
            posted_at = comm.sim.now
            yield from comm.wait(request)
            return posted_at
        yield from comm.recv(0, tag=9_500)
        return None

    world = spec.make_world(2, seed=seed, mapping="spread")
    processes = world.run(lambda comm: program(comm))
    return processes[0].value


def measure_logp(
    spec: ClusterSpec,
    *,
    nbytes: int = 1,
    burst: int = DEFAULT_BURST,
    seed: int = 0,
) -> LogPParams:
    """Culler et al.'s LogP measurement at one (small) message size."""
    if burst < 2:
        raise EstimationError("saturation burst needs at least two messages")
    gap = _saturation_gap(spec, nbytes, burst, seed)
    send_overhead = _send_overhead(spec, nbytes, seed + 1)
    # Receive overhead is not separately observable from outside the
    # receiver; the classical method assumes symmetry.
    recv_overhead = send_overhead
    round_trip_half = time_p2p_roundtrip(spec, nbytes, seed=seed + 2)
    latency = max(round_trip_half - send_overhead - recv_overhead, 0.0)
    return LogPParams(
        latency=latency,
        send_overhead=send_overhead,
        recv_overhead=recv_overhead,
        gap=gap,
    )


def measure_loggp(
    spec: ClusterSpec,
    *,
    small: int = 1,
    large: int = 64 * KiB,
    burst: int = DEFAULT_BURST,
    seed: int = 0,
) -> LogGPParams:
    """LogGP: LogP plus the per-byte gap from two saturation sizes."""
    if large <= small:
        raise EstimationError("need large > small to estimate G")
    base = measure_logp(spec, nbytes=small, burst=burst, seed=seed)
    gap_large = _saturation_gap(spec, large, burst, seed + 3)
    gap_per_byte = max((gap_large - base.gap) / (large - small), 0.0)
    return LogGPParams(
        latency=base.latency,
        send_overhead=base.send_overhead,
        recv_overhead=base.recv_overhead,
        gap=base.gap,
        gap_per_byte=gap_per_byte,
    )


def measure_plogp(
    spec: ClusterSpec,
    *,
    sizes: Sequence[int] = (1, 1 * KiB, 8 * KiB, 64 * KiB, 512 * KiB),
    burst: int = DEFAULT_BURST,
    seed: int = 0,
) -> PLogPParams:
    """Kielmann et al.'s PLogP: per-size tables with interpolation."""
    if len(sizes) < 2:
        raise EstimationError("PLogP needs at least two sizes")
    sizes = sorted(set(int(s) for s in sizes))
    gap_table = {
        m: _saturation_gap(spec, m, burst, seed + 11 * i)
        for i, m in enumerate(sizes)
    }
    overhead_table = {
        m: _send_overhead(spec, m, seed + 13 * i) for i, m in enumerate(sizes)
    }
    tiny = sizes[0]
    latency = max(
        time_p2p_roundtrip(spec, tiny, seed=seed + 5)
        - 2 * overhead_table[tiny],
        0.0,
    )

    def interpolate(table: dict[int, float]):
        points = sorted(table.items())

        def lookup(nbytes: int) -> float:
            if nbytes <= points[0][0]:
                return points[0][1]
            for (x0, y0), (x1, y1) in zip(points, points[1:]):
                if nbytes <= x1:
                    weight = (nbytes - x0) / (x1 - x0)
                    return y0 + weight * (y1 - y0)
            # Extrapolate from the last interval's slope.
            (x0, y0), (x1, y1) = points[-2], points[-1]
            slope = (y1 - y0) / (x1 - x0)
            return y1 + slope * (nbytes - x1)

        return lookup

    gap_fn = interpolate(gap_table)
    overhead_fn = interpolate(overhead_table)
    return PLogPParams(
        latency=latency, os_fn=overhead_fn, or_fn=overhead_fn, g_fn=gap_fn
    )
