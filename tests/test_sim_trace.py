"""Tests for the event tracer."""

from repro.sim.trace import NULL_TRACER, TraceEvent, Tracer


class TestTracer:
    def test_records_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.record(2.0, "recv_complete", 1, 0, 7, 100)
        assert len(tracer) == 2
        assert [e.kind for e in tracer] == ["send_post", "recv_complete"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        assert len(tracer) == 0

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled

    def test_of_kind_filters(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.record(2.0, "send_post", 0, 2, 7, 100)
        tracer.record(3.0, "recv_complete", 1, 0, 7, 100)
        assert len(tracer.of_kind("send_post")) == 2
        assert len(tracer.of_kind("recv_post")) == 0

    def test_for_rank_filters(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.record(2.0, "send_post", 3, 1, 7, 100)
        assert [e.rank for e in tracer.for_rank(3)] == [3]

    def test_total_bytes_counts_only_send_posts(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.record(2.0, "recv_complete", 1, 0, 7, 100)
        tracer.record(3.0, "send_post", 1, 0, 7, 50)
        assert tracer.total_bytes_sent() == 150

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "send_post", 0, 1, 7, 100)
        tracer.clear()
        assert len(tracer) == 0

    def test_empty_tracer_is_truthy(self):
        """Guards against the ``tracer or default`` footgun."""
        assert bool(Tracer())
        assert bool(Tracer(enabled=False))

    def test_events_are_immutable_records(self):
        event = TraceEvent(1.0, "send_post", 0, 1, 2, 3)
        try:
            event.time = 5.0
            raised = False
        except AttributeError:
            raised = True
        assert raised
