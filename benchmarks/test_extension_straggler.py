"""Extension bench: straggler sensitivity — the anatomy of Gros's 7297%.

The paper's most dramatic number is the Open MPI chain pick degrading by
up to 7297% on Gros.  Our clean fabric reproduces the *direction* but not
the magnitude (~400%), because the magnitude came from a platform
pathology: the paper's own per-algorithm fit on Gros gives the chain a β
eight times the binary's, i.e. something on that cluster made pipeline
forwarding pathologically slow.

This bench injects that pathology explicitly: one node whose NIC egress
runs 30x slow (a collapsed TCP congestion window).  Placed where it is a
*leaf* of the binary/split-binary trees but an *interior* hop of the
123-node chain, it multiplies the chain's time by an order of magnitude
while leaving the tree algorithms untouched — pushing the Open MPI chain
pick into four-digit degradation, the paper's Gros picture.
"""

import pytest

from repro.selection.model_based import ModelBasedSelector
from repro.selection.ompi_fixed import OmpiFixedSelector
from repro.selection.oracle import MeasuredOracle
from repro.topology import build_binary_tree
from repro.units import KiB

PROCS = 100
#: Egress slowdown of the sick node (30x ~ 25 GbE negotiating sub-Gbit).
SLOW_FACTOR = 30.0
SIZES = (512 * KiB, 1024 * KiB, 2048 * KiB)


def pick_slow_rank() -> int:
    """A rank that is a binary-tree leaf but sits mid-chain."""
    tree = build_binary_tree(PROCS)
    leaves = set(tree.leaves())
    candidates = [r for r in sorted(leaves) if 40 < r < 90]
    return candidates[len(candidates) // 2]


@pytest.fixture(scope="module")
def sick_gros(gros):
    return gros.with_slow_nodes({pick_slow_rank(): SLOW_FACTOR})


def test_extension_straggler_sensitivity(
    benchmark, gros, sick_gros, gros_calibration, gros_oracle
):
    sick_oracle = MeasuredOracle(sick_gros, max_reps=4)
    model_selector = ModelBasedSelector(gros_calibration.platform)
    ompi_selector = OmpiFixedSelector()

    def run_comparison():
        rows = []
        for nbytes in SIZES:
            best, best_time = sick_oracle.best(PROCS, nbytes)
            model = model_selector.select(PROCS, nbytes)
            ompi = ompi_selector.select(PROCS, nbytes)
            rows.append(
                (
                    nbytes,
                    best,
                    best_time,
                    sick_oracle.measure_selection(PROCS, nbytes, model),
                    sick_oracle.measure_selection(PROCS, nbytes, ompi),
                )
            )
        return rows

    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print()
    print(
        f"Straggler study (gros + one {SLOW_FACTOR:.0f}x-slow egress node, "
        f"P={PROCS}): degradation vs best [%]"
    )
    print(f"{'m':>10} {'best':>14} {'model-based':>12} {'Open MPI (chain)':>17}")
    for nbytes, best, best_time, model_time, ompi_time in rows:
        model_deg = 100 * (model_time - best_time) / best_time
        ompi_deg = 100 * (ompi_time - best_time) / best_time
        print(
            f"{nbytes:>10} {best.algorithm:>14} {model_deg:>12.1f} {ompi_deg:>17.1f}"
        )
        # The tree algorithms (and hence the model-based pick, calibrated on
        # the healthy platform) shrug the straggler off...
        assert model_deg < 30.0
        # ...while the hard-coded chain pick degrades catastrophically —
        # the four-digit territory of the paper's Gros Table 3.
        assert ompi_deg > 500.0

    # The healthy-platform comparison for reference: the same chain pick was
    # only ~moderately bad there.
    healthy_chain = gros_oracle.measure(PROCS, SIZES[0], "chain")
    sick_chain = sick_oracle.measure(PROCS, SIZES[0], "chain")
    print(
        f"chain at {SIZES[0]} B: healthy {healthy_chain * 1e3:.2f} ms -> "
        f"sick {sick_chain * 1e3:.2f} ms ({sick_chain / healthy_chain:.1f}x)"
    )
    assert sick_chain > 1.5 * healthy_chain
