"""Benchmark: regenerate the paper's Fig. 1 (traditional models vs reality).

Fig. 1 shows that the classical analytical models — textbook formulas with
ping-pong-measured Hockney parameters — do not reproduce the measured
performance of the binary and binomial broadcast implementations at P = 90:
the predicted curves have the wrong magnitude *and* the wrong ordering, so
they cannot drive algorithm selection.

Shape assertions: the traditional binomial prediction is off by more than
2x somewhere in the sweep, and the traditional models order binary/binomial
differently from the measurements in part of the range.
"""

import pytest

from repro.bench.figures import ascii_plot, fig1_series, write_csv
from repro.estimation.p2p import estimate_hockney_p2p

from conftest import MAX_REPS, PAPER_SIZES


@pytest.fixture(scope="module")
def fig1(grisou, grisou_oracle):
    p2p = estimate_hockney_p2p(grisou, max_reps=MAX_REPS)
    return fig1_series(
        grisou,
        p2p.params,
        procs=90,
        sizes=PAPER_SIZES,
        algorithms=("binary", "binomial"),
        oracle=grisou_oracle,
    )


def test_fig1_traditional_models(benchmark, fig1, tmp_path_factory):
    """Times the traditional-model evaluation; prints/saves the series."""
    from repro.models.hockney import HockneyParams
    from repro.models.traditional import TRADITIONAL_BCAST_MODELS

    params = HockneyParams(50e-6, 1e-9)

    def evaluate_models():
        return [
            TRADITIONAL_BCAST_MODELS[name](None).predict(90, m, 8192, params)
            for name in ("binary", "binomial")
            for m in PAPER_SIZES
        ]

    benchmark.pedantic(evaluate_models, rounds=20, iterations=5)

    csv_path = tmp_path_factory.mktemp("fig1") / "fig1.csv"
    write_csv(csv_path, fig1)
    print()
    print(ascii_plot(fig1, title="Fig.1: traditional models vs experiment (grisou, P=90)"))
    print(f"(series written to {csv_path})")

    # The traditional binomial model (whole-message log-depth formula) is
    # far from the measured segmented implementation somewhere.
    worst_ratio = max(
        fig1["binomial_model"][m] / fig1["binomial_measured"][m]
        for m in PAPER_SIZES
    )
    assert worst_ratio > 2.0, f"traditional binomial only {worst_ratio:.2f}x off"

    # Traditional models also mis-rank the two algorithms in part of the
    # sweep: prediction says one order, measurement the other.
    mismatch = [
        m
        for m in PAPER_SIZES
        if (fig1["binary_model"][m] < fig1["binomial_model"][m])
        != (fig1["binary_measured"][m] < fig1["binomial_measured"][m])
    ]
    assert mismatch, "traditional models never mis-ranked binary vs binomial"
