"""Shared fixtures for the test suite.

Expensive artefacts (a calibrated platform model for the small test
cluster) are session-scoped so the selection/estimation tests share them.
"""

from __future__ import annotations

import pytest

from repro.clusters import GRISOU, GROS, MINICLUSTER
from repro.estimation.workflow import CalibrationResult, calibrate_platform
from repro.units import KiB, MiB, log_spaced_sizes


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Keep CLI-enabled persistent caches out of the user's ~/.cache."""
    import os

    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture(scope="session")
def mini():
    """The deterministic 16-node test cluster."""
    return MINICLUSTER


@pytest.fixture(scope="session")
def grisou_nonoise():
    """Grisou preset with noise disabled (deterministic timings)."""
    return GRISOU.with_noise(0.0)


@pytest.fixture(scope="session")
def gros_nonoise():
    """Gros preset with noise disabled (deterministic timings)."""
    return GROS.with_noise(0.0)


@pytest.fixture(scope="session")
def mini_calibration() -> CalibrationResult:
    """A full §4 calibration of the test cluster (shared, ~seconds)."""
    return calibrate_platform(
        MINICLUSTER,
        procs=8,
        sizes=log_spaced_sizes(8 * KiB, 1 * MiB, 6),
        gamma_max_procs=5,
        max_reps=3,
    )


@pytest.fixture(scope="session")
def mini_platform(mini_calibration):
    """The platform model from the shared test-cluster calibration."""
    return mini_calibration.platform
