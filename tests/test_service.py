"""Tests for the deployment subsystem: artifacts + the selection server.

The round-trip invariant under test (ISSUE 2 satellite): build → save →
load → serve must agree with offline ``DecisionTable.select`` and with
the ``compile_python`` decision function on every grid cell and on
off-grid points.
"""

from __future__ import annotations

import json
import random
import threading
from http.client import HTTPConnection

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import ArtifactError
from repro.selection.codegen import compile_python
from repro.service import (
    ARTIFACT_SCHEMA,
    ArtifactRegistry,
    LruCache,
    SelectionService,
    ServiceThread,
    build_artifact,
    load_artifact,
)
from repro.service.metrics import Histogram, ServiceMetrics
from repro.units import KiB, MiB, log_spaced_sizes

GRID_PROCS = tuple(range(2, 17, 2))
GRID_SIZES = tuple(log_spaced_sizes(8 * KiB, 1 * MiB, 6))


@pytest.fixture(scope="module")
def artifact(mini_platform):
    """An artifact over the shared test calibration (no re-simulation)."""
    return build_artifact(
        MINICLUSTER,
        proc_points=GRID_PROCS,
        size_points=GRID_SIZES,
        platforms={"bcast": mini_platform},
    )


@pytest.fixture(scope="module")
def artifact_dir(artifact, tmp_path_factory):
    directory = tmp_path_factory.mktemp("artifacts")
    artifact.save(directory / "minicluster.json")
    return directory


def off_grid_points(count=20, seed=7):
    rng = random.Random(seed)
    return [
        (rng.randint(2, GRID_PROCS[-1] + 5), rng.randint(1, 2 * GRID_SIZES[-1]))
        for _ in range(count)
    ]


class TestArtifact:
    def test_identity_fields(self, artifact):
        assert artifact.cluster == "minicluster"
        assert artifact.cluster_fingerprint == MINICLUSTER.fingerprint()
        assert artifact.operations == ["bcast"]
        assert artifact.artifact_id.startswith("minicluster-")

    def test_verify_passes(self, artifact):
        artifact.verify()

    def test_content_hash_deterministic(self, artifact, mini_platform):
        rebuilt = build_artifact(
            MINICLUSTER,
            proc_points=GRID_PROCS,
            size_points=GRID_SIZES,
            platforms={"bcast": mini_platform},
        )
        assert rebuilt.content_hash() == artifact.content_hash()

    def test_save_load_round_trip(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "a.json")
        loaded = load_artifact(path)
        assert loaded.content_hash() == artifact.content_hash()
        assert loaded.entries["bcast"].table == artifact.entries["bcast"].table
        loaded.verify()

    def test_round_trip_agrees_on_grid_and_off_grid(self, artifact, tmp_path):
        """Grid cells + 20 off-grid points: table == compiled fn == loaded."""
        loaded = load_artifact(artifact.save(tmp_path / "b.json"))
        table = artifact.entries["bcast"].table
        fn = compile_python(table)
        stored_fn = loaded.entries["bcast"].compile()
        points = [
            (p, m) for p in table.proc_points for m in table.size_points
        ] + off_grid_points(20)
        for procs, nbytes in points:
            expected = table.select(procs, nbytes)
            assert loaded.select("bcast", procs, nbytes) == expected
            pair = (expected.algorithm, expected.segment_size)
            assert fn(procs, nbytes) == pair
            assert stored_fn(procs, nbytes) == pair

    def test_load_rejects_tampered_payload(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "c.json")
        data = json.loads(path.read_text())
        data["payload"]["cluster"] = "impostor"
        path.write_text(json.dumps(data))
        with pytest.raises(ArtifactError, match="hash mismatch"):
            load_artifact(path)

    def test_load_rejects_wrong_schema(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "d.json")
        data = json.loads(path.read_text())
        data["schema"] = ARTIFACT_SCHEMA + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ArtifactError, match="schema"):
            load_artifact(path)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "e.json"
        path.write_text("not an artifact")
        with pytest.raises(ArtifactError, match="not JSON"):
            load_artifact(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(tmp_path / "absent.json")

    def test_unknown_collective_needs_platform(self):
        with pytest.raises(ArtifactError, match="no calibration pipeline"):
            build_artifact(MINICLUSTER, collectives=("reduce_scatter",))


class TestRegistry:
    def test_scan_lookup_and_errors(self, artifact, tmp_path):
        artifact.save(tmp_path / "good.json")
        (tmp_path / "bad.json").write_text("{}")
        registry = ArtifactRegistry(tmp_path)
        assert len(registry) == 1
        assert "bad.json" in registry.errors
        found = registry.lookup("minicluster", "bcast")
        assert found.content_hash() == artifact.content_hash()
        with pytest.raises(ArtifactError, match="no artifact"):
            registry.lookup("minicluster", "reduce")
        summaries = registry.summaries()
        assert summaries[0]["cluster"] == "minicluster"
        assert summaries[0]["file"] == "good.json"

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="does not exist"):
            ArtifactRegistry(tmp_path / "nowhere")


class TestLruCache:
    def test_hit_miss_accounting(self):
        cache = LruCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3


class TestMetrics:
    def test_histogram_buckets_cumulative(self):
        histogram = Histogram("h", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        lines = histogram.render()
        assert 'h_bucket{le="0.1"} 1' in lines
        assert 'h_bucket{le="1.0"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_count 3" in lines

    def test_render_is_prometheus_text(self):
        metrics = ServiceMetrics()
        metrics.requests.inc(endpoint="/select", status="200")
        text = metrics.render()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="/select",status="200"} 1' in text
        assert "# TYPE repro_request_seconds histogram" in text
        assert "repro_query_cache_hit_ratio" in text


class Client:
    """Tiny keep-alive JSON client for the test server."""

    def __init__(self, port):
        self.conn = HTTPConnection("127.0.0.1", port, timeout=10)

    def request(self, method, path, payload=None):
        body = None if payload is None else json.dumps(payload)
        self.conn.request(method, path, body)
        response = self.conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        data = json.loads(raw) if "json" in content_type else raw.decode()
        return response.status, data

    def close(self):
        self.conn.close()


@pytest.fixture(scope="module")
def server(artifact_dir):
    service = SelectionService(ArtifactRegistry(artifact_dir), cache_size=64)
    with ServiceThread(service) as handle:
        yield handle


@pytest.fixture()
def client(server):
    client = Client(server.port)
    yield client
    client.close()


class TestServer:
    def test_healthz(self, client):
        status, data = client.request("GET", "/healthz")
        assert status == 200
        assert data == {"status": "ok", "artifacts": 1}

    def test_single_select_matches_offline_table(self, client, artifact):
        table = artifact.entries["bcast"].table
        status, data = client.request(
            "POST", "/select",
            {"cluster": "minicluster", "procs": 12, "nbytes": 200_000},
        )
        assert status == 200
        expected = table.select(12, 200_000)
        assert data["algorithm"] == expected.algorithm
        assert data["segment_size"] == expected.segment_size
        assert data["operation"] == "bcast"
        assert data["artifact"] == artifact.artifact_id

    def test_batched_select_bit_identical_everywhere(self, client, artifact):
        """Served batch == offline table on every grid cell + 20 off-grid."""
        table = artifact.entries["bcast"].table
        fn = compile_python(table)
        points = [
            (p, m) for p in table.proc_points for m in table.size_points
        ] + off_grid_points(20)
        queries = [
            {"cluster": "minicluster", "operation": "bcast",
             "procs": p, "nbytes": m}
            for p, m in points
        ]
        status, data = client.request("POST", "/select", {"queries": queries})
        assert status == 200
        assert len(data["results"]) == len(points)
        for (procs, nbytes), result in zip(points, data["results"]):
            expected = table.select(procs, nbytes)
            assert result["algorithm"] == expected.algorithm
            assert result["segment_size"] == expected.segment_size
            assert fn(procs, nbytes) == (
                result["algorithm"], result["segment_size"]
            )

    @pytest.mark.parametrize(
        "query,fragment",
        [
            ({"procs": 4, "nbytes": 100}, "cluster"),
            ({"cluster": "minicluster", "nbytes": 100}, "procs"),
            ({"cluster": "minicluster", "procs": 0, "nbytes": 1}, "procs"),
            ({"cluster": "minicluster", "procs": 4, "nbytes": -1}, "nbytes"),
            ({"cluster": "minicluster", "procs": True, "nbytes": 1}, "procs"),
            ({"cluster": "minicluster", "procs": 4}, "nbytes"),
        ],
    )
    def test_validation_errors_are_typed_400s(self, client, query, fragment):
        status, data = client.request("POST", "/select", query)
        assert status == 400
        assert data["error"]["code"] == "validation"
        assert fragment in data["error"]["message"]

    def test_batch_error_names_the_query_index(self, client):
        queries = [
            {"cluster": "minicluster", "procs": 4, "nbytes": 100},
            {"cluster": "minicluster", "procs": "four", "nbytes": 100},
        ]
        status, data = client.request("POST", "/select", {"queries": queries})
        assert status == 400
        assert "query #1" in data["error"]["message"]

    def test_unknown_cluster_is_404(self, client):
        status, data = client.request(
            "POST", "/select",
            {"cluster": "atlantis", "procs": 4, "nbytes": 100},
        )
        assert status == 404
        assert data["error"]["code"] == "unknown_artifact"

    def test_bad_json_body(self, server):
        conn = HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/select", "{not json")
        response = conn.getresponse()
        data = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert data["error"]["code"] == "bad_json"

    def test_unknown_endpoint_and_wrong_method(self, client):
        status, data = client.request("GET", "/nope")
        assert status == 404 and data["error"]["code"] == "not_found"
        status, data = client.request("GET", "/select")
        assert status == 405 and data["error"]["code"] == "method_not_allowed"

    def test_artifacts_listing(self, client, artifact):
        status, data = client.request("GET", "/artifacts")
        assert status == 200
        assert data["errors"] == {}
        [summary] = data["artifacts"]
        assert summary["id"] == artifact.artifact_id
        assert summary["content_hash"] == artifact.content_hash()
        assert summary["operations"]["bcast"]["proc_points"] == len(GRID_PROCS)

    def test_repeat_query_hits_lru_cache(self, client, server):
        query = {"cluster": "minicluster", "procs": 14, "nbytes": 123_456}
        before = server.service.metrics.cache_hits.total()
        client.request("POST", "/select", query)
        client.request("POST", "/select", query)
        assert server.service.metrics.cache_hits.total() > before

    def test_metrics_endpoint_exposes_counters(self, client):
        client.request(
            "POST", "/select",
            {"cluster": "minicluster", "procs": 4, "nbytes": 8192},
        )
        status, text = client.request("GET", "/metrics")
        assert status == 200
        assert 'repro_requests_total{endpoint="/select",status="200"}' in text
        assert "repro_request_seconds_bucket" in text
        assert 'repro_selections_total{algorithm="' in text
        assert "repro_query_cache_hit_ratio" in text
        assert "repro_artifacts_loaded 1" in text


class TestReload:
    def test_hot_reload_picks_up_new_artifact(self, artifact, mini_platform,
                                              tmp_path):
        artifact.save(tmp_path / "one.json")
        service = SelectionService(ArtifactRegistry(tmp_path))
        with ServiceThread(service) as handle:
            client = Client(handle.port)
            # A second artifact with a coarser grid appears on disk...
            coarse = build_artifact(
                MINICLUSTER,
                proc_points=(2, 16),
                size_points=GRID_SIZES,
                platforms={"bcast": mini_platform},
            )
            coarse.save(tmp_path / "two.json")
            status, data = client.request("GET", "/artifacts")
            assert len(data["artifacts"]) == 1
            status, data = client.request("POST", "/reload")
            assert status == 200 and data["artifacts"] == 2
            status, data = client.request("GET", "/artifacts")
            assert len(data["artifacts"]) == 2
            # ...and lexically-last file now answers the queries.
            status, data = client.request(
                "POST", "/select",
                {"cluster": "minicluster", "procs": 8, "nbytes": 8192},
            )
            assert data["artifact"] == coarse.artifact_id
            client.close()


class TestConcurrency:
    def test_parallel_clients_get_bit_identical_answers(self, server, artifact):
        table = artifact.entries["bcast"].table
        points = off_grid_points(40, seed=13)
        failures: list[str] = []

        def worker():
            client = Client(server.port)
            for procs, nbytes in points:
                _, data = client.request(
                    "POST", "/select",
                    {"cluster": "minicluster", "procs": procs,
                     "nbytes": nbytes},
                )
                expected = table.select(procs, nbytes)
                if (data["algorithm"], data["segment_size"]) != (
                    expected.algorithm, expected.segment_size
                ):
                    failures.append(f"{procs},{nbytes}: {data}")
            client.close()

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


# -- robustness: degraded mode, lifecycle, limits (ISSUE 3) -----------------


@pytest.fixture()
def fragile_setup(artifact, tmp_path):
    """A service over its own directory, safe to corrupt per-test."""
    path = tmp_path / "minicluster.json"
    artifact.save(path)
    service = SelectionService(ArtifactRegistry(tmp_path), cache_size=64)
    return service, path


QUERY = {"cluster": "minicluster", "procs": 8, "nbytes": 64 * KiB}


class TestDegradedMode:
    def test_tampered_artifact_keeps_last_known_good(self, fragile_setup):
        service, path = fragile_setup
        with ServiceThread(service) as handle:
            client = Client(handle.port)
            status, before = client.request("POST", "/select", QUERY)
            assert status == 200

            good = path.read_text()
            path.write_text(good.replace('"bcast"', '"bcXst"', 1))
            status, data = client.request("POST", "/reload")
            assert status == 200
            assert data["status"] == "degraded"
            assert "minicluster.json" in data["degraded"]

            # Selections keep flowing, bit-identical to pre-corruption
            # (modulo the per-request trace id).
            status, after = client.request("POST", "/select", QUERY)
            after.pop("trace_id", None)
            before.pop("trace_id", None)
            assert status == 200 and after == before

            status, health = client.request("GET", "/healthz")
            assert health["status"] == "degraded"
            assert "minicluster.json" in health["reason"]
            _, text = client.request("GET", "/metrics")
            assert "repro_service_degraded 1" in text

            # Restoring the file heals the service on the next reload.
            path.write_text(good)
            status, data = client.request("POST", "/reload")
            assert status == 200 and "status" not in data
            status, health = client.request("GET", "/healthz")
            assert health == {"status": "ok", "artifacts": 1}
            _, text = client.request("GET", "/metrics")
            assert "repro_service_degraded 0" in text
            client.close()

    def test_failed_rescan_flips_degraded_and_keeps_serving(
        self, fragile_setup, monkeypatch
    ):
        service, _path = fragile_setup

        def explode():
            raise ArtifactError("directory walked off")

        with ServiceThread(service) as handle:
            client = Client(handle.port)
            monkeypatch.setattr(service.registry, "rescan", explode)
            status, data = client.request("POST", "/reload")
            assert status == 200 and data["status"] == "degraded"
            assert "directory walked off" in data["reason"]
            status, answer = client.request("POST", "/select", QUERY)
            assert status == 200 and "algorithm" in answer
            _, text = client.request("GET", "/metrics")
            assert "repro_artifact_reload_failures_total 1" in text
            assert "repro_service_degraded 1" in text
            client.close()

    def test_reload_over_corrupt_artifact_never_interrupts_selects(
        self, fragile_setup
    ):
        """Hammer /select from several threads while the artifact file is
        corrupted and reloaded mid-stream: every response is 200 and
        bit-identical."""
        service, path = fragile_setup
        with ServiceThread(service) as handle:
            probe = Client(handle.port)
            _, expected = probe.request("POST", "/select", QUERY)
            expected.pop("trace_id", None)
            failures: list[str] = []
            stop = threading.Event()

            def hammer():
                client = Client(handle.port)
                while not stop.is_set():
                    status, data = client.request("POST", "/select", QUERY)
                    data.pop("trace_id", None)
                    if status != 200 or data != expected:
                        failures.append(f"{status}: {data}")
                        break
                client.close()

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            good = path.read_text()
            for _ in range(5):
                path.write_text(good.replace('"bcast"', '"bcXst"', 1))
                probe.request("POST", "/reload")
                path.write_text(good)
                probe.request("POST", "/reload")
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            assert not failures
            probe.close()


class TestServiceThreadLifecycle:
    def test_stop_is_idempotent(self, fragile_setup):
        service, _path = fragile_setup
        handle = ServiceThread(service).start()
        handle.stop()
        handle.stop()  # second stop: no-op, no exception

    def test_stop_before_start_is_noop(self, fragile_setup):
        service, _path = fragile_setup
        ServiceThread(service).stop()  # never started: nothing to join

    def test_port_in_use_raises_typed_error(self, fragile_setup):
        import socket

        from repro.errors import PortInUseError, ServiceError

        service, _path = fragile_setup
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            with pytest.raises(PortInUseError, match="already in use"):
                ServiceThread(service, port=port).start()
            assert issubclass(PortInUseError, ServiceError)
        finally:
            blocker.close()


class TestRequestLimits:
    def test_oversized_body_gets_413(self, fragile_setup):
        import socket

        from repro.service.server import MAX_BODY

        service, _path = fragile_setup
        with ServiceThread(service) as handle:
            raw = socket.create_connection(("127.0.0.1", handle.port), timeout=10)
            try:
                raw.sendall(
                    b"POST /select HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    + f"Content-Length: {MAX_BODY + 1}\r\n\r\n".encode()
                )
                response = raw.recv(65536).decode()
                assert response.startswith("HTTP/1.1 413 ")
                assert "body_too_large" in response
            finally:
                raw.close()

    def test_slow_client_times_out(self, fragile_setup):
        import socket
        import time as _time

        service, _path = fragile_setup
        with ServiceThread(service, read_timeout=0.3) as handle:
            raw = socket.create_connection(("127.0.0.1", handle.port), timeout=10)
            try:
                raw.sendall(b"POST /select HTTP/1.1\r\n")  # never finishes
                raw.settimeout(5)
                started = _time.monotonic()
                assert raw.recv(1024) == b""  # server closed the socket
                assert _time.monotonic() - started < 4
            finally:
                raw.close()

    def test_normal_requests_unaffected_by_read_timeout(self, fragile_setup):
        service, _path = fragile_setup
        with ServiceThread(service, read_timeout=0.5) as handle:
            client = Client(handle.port)
            status, data = client.request("POST", "/select", QUERY)
            assert status == 200 and "algorithm" in data
            client.close()


class TestMalformedContentLength:
    """Bugfix: a malformed or negative ``Content-Length`` used to be
    swallowed by a broad ``ValueError`` handler and silently dropped the
    connection; it must be a typed 400 counted against ``(read)`` like
    the historical 413 path."""

    @pytest.mark.parametrize("value,fragment", [
        ("nope", "malformed Content-Length"),
        ("12x", "malformed Content-Length"),
        ("-5", "negative Content-Length"),
    ])
    def test_bad_content_length_is_typed_400(
        self, fragile_setup, value, fragment
    ):
        import socket

        service, _path = fragile_setup
        with ServiceThread(service) as handle:
            raw = socket.create_connection(
                ("127.0.0.1", handle.port), timeout=10
            )
            try:
                raw.sendall(
                    b"POST /select HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {value}\r\n\r\n".encode()
                )
                response = raw.recv(65536).decode()
                assert response.startswith("HTTP/1.1 400 ")
                assert "bad_request" in response
                assert fragment in response
                raw.settimeout(5)
                assert raw.recv(1024) == b""  # read errors close the socket
            finally:
                raw.close()
            client = Client(handle.port)
            status, text = client.request("GET", "/metrics")
            client.close()
            assert status == 200
            assert (
                'repro_requests_total{endpoint="(read)",status="400"} 1'
                in text
            )


class TestCacheAliasing:
    """Bugfix: ``handle_select`` must hand out fresh dicts — the batched
    path used to embed the LRU cache's own entries, so a caller mutating
    its response corrupted every later answer for that query."""

    @pytest.fixture()
    def service(self, artifact):
        registry = ArtifactRegistry()
        registry.add(artifact)
        return SelectionService(registry, cache_size=64)

    def test_single_result_mutation_does_not_poison_cache(self, service):
        query = dict(QUERY, operation="bcast")
        first = service.handle_select(dict(query))
        algorithm = first["algorithm"]
        segment = first["segment_size"]
        first["algorithm"] = "poisoned"
        first["segment_size"] = -1
        second = service.handle_select(dict(query))
        assert second["algorithm"] == algorithm
        assert second["segment_size"] == segment

    def test_batch_results_are_fresh_copies(self, service):
        query = dict(QUERY, operation="bcast")
        batch = {"queries": [dict(query), dict(query)]}
        results = service.handle_select(batch)["results"]
        algorithm = results[0]["algorithm"]
        assert results[0] is not results[1]
        results[0]["algorithm"] = "poisoned"
        results[1]["segment_size"] = -1
        # Neither the single path (warm LRU) nor a repeat batch sees it.
        assert service.handle_select(dict(query))["algorithm"] == algorithm
        again = service.handle_select(
            {"queries": [dict(query)]}
        )["results"][0]
        assert again["algorithm"] == algorithm
        assert again["segment_size"] != -1


class TestRegistrySwapInvalidation:
    """Bugfix audit: any registry mutation must invalidate warm LRU
    entries even when nobody calls ``service.reload()`` — the registry
    generation counter covers direct ``rescan()`` callers."""

    def test_rescan_without_reload_serves_fresh_artifact(
        self, artifact, mini_platform, tmp_path
    ):
        old = tmp_path / "a.json"
        artifact.save(old)
        registry = ArtifactRegistry(tmp_path)
        service = SelectionService(registry, cache_size=64)
        query = dict(QUERY, operation="bcast")
        warm = service.handle_select(dict(query))
        assert warm["artifact"] == artifact.artifact_id
        # Swap the directory contents and rescan the registry directly,
        # bypassing service.reload() — the served answer must still
        # come from the new artifact, never the warm cache entry.
        coarse = build_artifact(
            MINICLUSTER,
            proc_points=(2, 8),
            size_points=(8 * KiB, 1 * MiB),
            platforms={"bcast": mini_platform},
        )
        assert coarse.artifact_id != artifact.artifact_id
        old.unlink()
        coarse.save(tmp_path / "b.json")
        registry.rescan()
        served = service.handle_select(dict(query))
        assert served["artifact"] == coarse.artifact_id
        batch = service.handle_select(
            {"queries": [dict(query)]}
        )["results"][0]
        assert batch["artifact"] == coarse.artifact_id
