"""Final coverage sweep: corners the other suites leave open."""

import pytest

from repro.clusters import GRISOU, MINICLUSTER
from repro.units import KiB


class TestSubgroupRendezvous:
    def test_rendezvous_respects_subgroup_context(self):
        """A large (rendezvous) message on a subgroup communicator must not
        match a same-tag receive on the world communicator."""
        world = MINICLUSTER.make_world(3)
        sub = world.subgroup_comm([0, 2])
        big = MINICLUSTER.network.eager_limit * 2
        results = {}

        def sub_sender():
            yield from sub[0].send(1, big, tag=7)
            results["sub_sent"] = True

        def sub_receiver():
            status = yield from sub[1].recv(0, tag=7)
            results["sub_recv"] = status.nbytes

        def world_pair(comm):
            if comm.rank == 0:
                yield from comm.send(2, 128, tag=7)
            elif comm.rank == 2:
                status = yield from comm.recv(0, tag=7)
                results["world_recv"] = status.nbytes

        world.sim.process(sub_sender(), name="sub-0")
        world.sim.process(sub_receiver(), name="sub-1")
        world.spawn(world_pair)
        world.sim.run()
        assert results["sub_recv"] == big
        assert results["world_recv"] == 128


class TestOracleDeterminism:
    def test_two_oracles_same_seed_agree(self):
        from repro.selection.oracle import MeasuredOracle

        noisy = MINICLUSTER.with_noise(0.05)
        a = MeasuredOracle(noisy, max_reps=4, seed=9)
        b = MeasuredOracle(noisy, max_reps=4, seed=9)
        assert a.measure(8, 64 * KiB, "binomial") == b.measure(
            8, 64 * KiB, "binomial"
        )

    def test_different_seeds_differ_under_noise(self):
        from repro.selection.oracle import MeasuredOracle

        noisy = MINICLUSTER.with_noise(0.05)
        a = MeasuredOracle(noisy, max_reps=4, seed=1)
        b = MeasuredOracle(noisy, max_reps=4, seed=2)
        assert a.measure(8, 64 * KiB, "binomial") != b.measure(
            8, 64 * KiB, "binomial"
        )


class TestMpiblibUnderNoise:
    def test_benchmark_converges_with_noise(self):
        from repro.mpiblib import CollectiveBenchmark

        bench = CollectiveBenchmark(MINICLUSTER.with_noise(0.02), max_reps=30)
        result = bench.run("bcast", "binomial", procs=8, nbytes=64 * KiB)
        assert result.stats.converged
        assert result.stats.n >= 3
        assert result.stats.relative_precision <= 0.025


class TestGammaBlockMapping:
    def test_block_mapping_gamma_contaminated_by_shm(self):
        """On a multi-rank-per-node cluster, block placement makes the
        P=2 baseline a shared-memory pair and inflates γ — the reason the
        estimation defaults to spread placement."""
        from repro.estimation.gamma import estimate_gamma

        quiet = GRISOU.with_noise(0.0)
        spread = estimate_gamma(quiet, max_procs=4, mapping="spread")
        block = estimate_gamma(quiet, max_procs=4, mapping="block")
        assert block.table[4] > 2.0 * spread.table[4]


class TestWorldReuse:
    def test_sequential_collectives_in_one_world(self):
        """Back-to-back different collectives share tags safely."""
        from repro.collectives.barrier import BARRIER_ALGORITHMS
        from repro.collectives.bcast import BCAST_ALGORITHMS
        from repro.collectives.gather import GATHER_ALGORITHMS
        from repro.measure import run_timed

        def program(comm):
            yield from BCAST_ALGORITHMS["binomial"](comm, 0, 32 * KiB, 8 * KiB)
            yield from BARRIER_ALGORITHMS["recursive_doubling"](comm)
            yield from GATHER_ALGORITHMS["linear"](comm, 0, 2 * KiB)
            yield from BCAST_ALGORITHMS["split_binary"](comm, 0, 64 * KiB, 8 * KiB)

        elapsed = run_timed(MINICLUSTER, program, 9)
        assert elapsed > 0
