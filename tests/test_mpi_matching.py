"""Tests for the tag-matching engine, and schedule-level tag discipline."""

import pytest

from repro.mpi.matching import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    MatchingEngine,
    PostedRecv,
)


def make_recv(cid=0, src=ANY_SOURCE, tag=ANY_TAG, log=None):
    log = log if log is not None else []

    def complete(message, now):
        log.append((message, now))

    return PostedRecv(cid, src, tag, complete), log


def make_envelope(cid=0, src=0, tag=0, nbytes=10, arrival=1.0):
    return Envelope(cid, src, tag, nbytes, arrival)


class TestMatchRules:
    def test_exact_match(self):
        recv, _ = make_recv(cid=1, src=2, tag=3)
        assert recv.matches(1, 2, 3)

    def test_context_mismatch_never_matches(self):
        recv, _ = make_recv(cid=1, src=ANY_SOURCE, tag=ANY_TAG)
        assert not recv.matches(2, 0, 0)

    def test_wildcard_source(self):
        recv, _ = make_recv(src=ANY_SOURCE, tag=5)
        assert recv.matches(0, 7, 5)
        assert not recv.matches(0, 7, 6)

    def test_wildcard_tag(self):
        recv, _ = make_recv(src=3, tag=ANY_TAG)
        assert recv.matches(0, 3, 99)
        assert not recv.matches(0, 4, 99)


class TestEngineQueues:
    def test_arrival_matches_posted_recv(self):
        engine = MatchingEngine()
        recv, log = make_recv(src=1, tag=2)
        engine.post(recv, now=0.0)
        message = make_envelope(src=1, tag=2)
        engine.arrive(message, now=1.5)
        assert log == [(message, 1.5)]
        assert engine.idle()

    def test_unmatched_arrival_queues_as_unexpected(self):
        engine = MatchingEngine()
        engine.arrive(make_envelope(), now=1.0)
        assert not engine.idle()
        recv, log = make_recv()
        engine.post(recv, now=2.0)
        assert len(log) == 1
        assert engine.idle()

    def test_posted_recvs_matched_fifo(self):
        engine = MatchingEngine()
        first, first_log = make_recv(src=ANY_SOURCE, tag=ANY_TAG)
        second, second_log = make_recv(src=ANY_SOURCE, tag=ANY_TAG)
        engine.post(first, now=0.0)
        engine.post(second, now=0.0)
        engine.arrive(make_envelope(nbytes=1), now=1.0)
        assert len(first_log) == 1 and not second_log

    def test_unexpected_matched_in_arrival_order(self):
        """The non-overtaking rule at the queue level."""
        engine = MatchingEngine()
        early = make_envelope(nbytes=1, arrival=1.0)
        late = make_envelope(nbytes=2, arrival=2.0)
        engine.arrive(early, now=1.0)
        engine.arrive(late, now=2.0)
        recv, log = make_recv()
        engine.post(recv, now=3.0)
        assert log[0][0] is early

    def test_selective_recv_skips_non_matching_unexpected(self):
        engine = MatchingEngine()
        engine.arrive(make_envelope(tag=1, nbytes=111), now=1.0)
        engine.arrive(make_envelope(tag=2, nbytes=222), now=1.0)
        recv, log = make_recv(src=ANY_SOURCE, tag=2)
        engine.post(recv, now=2.0)
        assert log[0][0].nbytes == 222
        # The tag-1 message is still waiting.
        assert not engine.idle()

    def test_posted_recv_with_specific_source_not_stolen(self):
        engine = MatchingEngine()
        specific, specific_log = make_recv(src=5, tag=ANY_TAG)
        engine.post(specific, now=0.0)
        engine.arrive(make_envelope(src=4), now=1.0)
        assert not specific_log  # source 4 does not match recv for source 5
        assert len(engine.unexpected) == 1


# -- schedule-level tag discipline -------------------------------------------


class ScheduleRecorder:
    """Fake communicator that records a rank's schedule without running it.

    Drives the collective generators exactly as the engine would (the
    comm methods are generators), but each operation just logs its
    ``(peer, tag)`` pair.  Sends and receives are buffered, so recording
    one rank never blocks on another.
    """

    def __init__(self, rank, size):
        self.rank = rank
        self.size = size
        self.sends = []  # (dest, tag)
        self.recvs = []  # (source, tag)

    def _noop(self):
        return
        yield  # pragma: no cover - generator marker

    def send(self, dest, nbytes, tag=0):
        self.sends.append((dest, tag))
        return self._noop()

    def isend(self, dest, nbytes, tag=0):
        self.sends.append((dest, tag))
        return self._noop()

    def recv(self, source=ANY_SOURCE, tag=ANY_TAG):
        self.recvs.append((source, tag))
        return self._noop()

    def irecv(self, source=ANY_SOURCE, tag=ANY_TAG):
        self.recvs.append((source, tag))
        return self._noop()

    def sendrecv(self, dest, nbytes, source, sendtag=0, recvtag=ANY_TAG):
        self.sends.append((dest, sendtag))
        self.recvs.append((source, recvtag))
        return self._noop()

    def waitall(self, requests):
        return self._noop()

    def compute(self, seconds):
        return self._noop()


def record_schedules(generator, size):
    """Every rank's recorded schedule for one collective call."""
    recorders = [ScheduleRecorder(rank, size) for rank in range(size)]
    for recorder in recorders:
        for _ in generator(recorder):
            pass
    return recorders


def whole_suite_schedules(size, nbytes=4096):
    """(label, per-rank recorders) for every whole-suite algorithm."""
    from repro.collectives.allgather import ALLGATHER_ALGORITHMS
    from repro.collectives.allreduce import ALLREDUCE_ALGORITHMS
    from repro.collectives.alltoall import ALLTOALL_ALGORITHMS
    from repro.collectives.scatter import SCATTER_ALGORITHMS

    for operation, catalogue in (
        ("allreduce", ALLREDUCE_ALGORITHMS),
        ("allgather", ALLGATHER_ALGORITHMS),
        ("alltoall", ALLTOALL_ALGORITHMS),
    ):
        for name, algorithm in catalogue.items():
            yield (
                f"{operation}.{name}",
                record_schedules(lambda c, a=algorithm: a(c, nbytes), size),
            )
    for name, algorithm in SCATTER_ALGORITHMS.items():
        yield (
            f"scatter.{name}",
            record_schedules(lambda c, a=algorithm: a(c, 0, nbytes), size),
        )


class TestScheduleTagDiscipline:
    """No (peer, tag) collision inside any whole-suite schedule.

    Two same-tag sends to one destination (or two same-tag receives from
    one source) posted by the same rank rely on FIFO non-overtaking to
    stay ordered — a latent matching hazard that composite algorithms
    (ring allreduce's two phases, Bruck vs pairwise alltoall rounds) hit
    once their round counts outgrow a fixed tag offset.  P = 129 and 256
    exceed every fixed offset in the tag layout (the +100/+200/+300
    allgather round bases and the ring's former +200 phase gap), so an
    aliasing regression fails here before it can corrupt a simulation.
    """

    @pytest.mark.parametrize("size", (2, 3, 4, 5, 7, 8, 16, 129, 256))
    def test_no_peer_tag_collision_within_any_rank(self, size):
        for label, recorders in whole_suite_schedules(size):
            for recorder in recorders:
                for direction, ops in (
                    ("send", recorder.sends),
                    ("recv", recorder.recvs),
                ):
                    seen = set()
                    for peer, tag in ops:
                        assert (peer, tag) not in seen, (
                            f"{label}: rank {recorder.rank} {direction}s "
                            f"(peer={peer}, tag={tag}) twice at P={size}"
                        )
                        seen.add((peer, tag))

    @pytest.mark.parametrize("size", (2, 3, 5, 8, 129))
    def test_every_send_has_exactly_one_matching_recv(self, size):
        for label, recorders in whole_suite_schedules(size):
            sends = sorted(
                (recorder.rank, dest, tag)
                for recorder in recorders
                for dest, tag in recorder.sends
            )
            recvs = sorted(
                (source, recorder.rank, tag)
                for recorder in recorders
                for source, tag in recorder.recvs
            )
            assert sends == recvs, f"{label}: unmatched traffic at P={size}"
