"""Benchmark: regenerate the paper's Fig. 5 (a-f): selection accuracy curves.

Six panels — P = 50, 80, 90 on Grisou and P = 80, 100, 124 on Gros — each
showing execution time vs message size for three selectors: the Open MPI
fixed decision function (blue in the paper), the model-based selection
(red) and the best measured algorithm (green).

Shape assertions per panel: the model-based curve hugs the best curve
(within 20% everywhere), while the Open MPI curve detaches from it by a
large factor somewhere in the sweep.
"""

import pytest

from repro.bench.figures import ascii_plot, fig5_series, write_csv
from repro.bench.runner import selection_comparison

from conftest import FIG5_PROCS, PAPER_SIZES


@pytest.fixture(scope="module")
def fig5_panels(grisou, gros, grisou_calibration, gros_calibration,
                grisou_oracle, gros_oracle):
    setups = {
        "grisou": (grisou, grisou_calibration, grisou_oracle),
        "gros": (gros, gros_calibration, gros_oracle),
    }
    panels = {}
    for cluster, (spec, calibration, oracle) in setups.items():
        for procs in FIG5_PROCS[cluster]:
            rows = selection_comparison(
                spec, calibration.platform, procs, PAPER_SIZES, oracle=oracle
            )
            panels[(cluster, procs)] = rows
    return panels


def test_fig5_selection_curves(benchmark, fig5_panels, tmp_path_factory):
    """Times one panel's series assembly; prints and saves all six."""

    def assemble_series():
        return {
            key: fig5_series(rows) for key, rows in fig5_panels.items()
        }

    benchmark.pedantic(assemble_series, rounds=5, iterations=2)

    out_dir = tmp_path_factory.mktemp("fig5")
    for (cluster, procs), rows in sorted(fig5_panels.items()):
        series = fig5_series(rows)
        write_csv(out_dir / f"fig5_{cluster}_p{procs}.csv", series)
        print()
        print(
            ascii_plot(
                series, title=f"Fig.5 panel: {cluster} P={procs} (MPI_Bcast)"
            )
        )
    print(f"(series written to {out_dir})")

    for (cluster, procs), rows in fig5_panels.items():
        panel = f"{cluster}/P={procs}"
        for row in rows:
            # Red curve hugs green: model-based within 25% of best (paper:
            # 3% Grisou / 10% Gros; see EXPERIMENTS.md for the gap discussion).
            assert row.model_time <= 1.25 * row.best_time, (
                panel,
                row.nbytes,
                row.model_degradation,
            )
        # Blue curve detaches somewhere: Open MPI >= 1.5x best at some size.
        assert any(row.ompi_time > 1.5 * row.best_time for row in rows), panel
