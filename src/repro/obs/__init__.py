"""``repro.obs`` — unified structured observability.

One span vocabulary across the whole stack (see docs/OBSERVABILITY.md):

==========================  =============================================
span name                   emitted by
==========================  =============================================
``exec.run``                :meth:`repro.exec.ParallelRunner.run` (the
                            single-job memo-hit fast path skips it)
``exec.job``                per *simulated* job (hits are counted on
                            the parent ``exec.run`` span instead)
``exec.execute``            the simulate step (inline/pool/fallback)
``calibrate.platform``      :func:`repro.estimation.workflow.calibrate_platform`
``calibrate.prefetch``      the up-front parallel simulation batch
``estimate.gamma``          :func:`repro.estimation.gamma.estimate_gamma`
``estimate.alphabeta``      :func:`repro.estimation.alphabeta.estimate_alpha_beta`
``artifact.build``          :func:`repro.service.artifact.build_artifact`
``artifact.calibrate``      per-operation calibration phase
``artifact.tables``         per-operation decision-table build
``artifact.codegen``        per-operation code generation
``artifact.package``        hashing + packaging
``http.request``            :class:`repro.service.server.HttpServer`
==========================  =============================================

Collection is off by default and costs one attribute check per span site;
``obs.enable()`` (or the CLI's ``--trace-out`` / ``repro-mpi trace``)
turns it on.  ``obs.save_trace(path)`` writes JSONL (``.jsonl``) or a
Chrome trace (anything else).
"""

from repro.obs.bridge import SpanMetricsBridge
from repro.obs.export import (
    build_tree,
    load_chrome_trace,
    load_jsonl,
    save,
    save_chrome_trace,
    save_jsonl,
    span_names,
    to_chrome_events,
    to_chrome_json,
    to_jsonl,
)
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    SpanRecorder,
    current_span,
    disable,
    enable,
    get_recorder,
    is_enabled,
    new_trace_id,
    span,
    traced,
)


def save_trace(path):
    """Write the process-wide recorder's spans to ``path`` (by suffix)."""
    return save(get_recorder(), path)


__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanMetricsBridge",
    "SpanRecorder",
    "build_tree",
    "current_span",
    "disable",
    "enable",
    "get_recorder",
    "is_enabled",
    "load_chrome_trace",
    "load_jsonl",
    "new_trace_id",
    "save",
    "save_chrome_trace",
    "save_jsonl",
    "save_trace",
    "span",
    "span_names",
    "to_chrome_events",
    "to_chrome_json",
    "to_jsonl",
    "traced",
]
