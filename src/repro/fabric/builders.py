"""Builders turning a :class:`ClusterSpec` into concrete fabric shapes.

Each builder derives the uplink parameters from the cluster's own NIC
parameters so a single named shape (``"leaf_spine_4to1"``) means the
same *relative* bottleneck on every preset: an oversubscription ratio
``R`` gives each rack an aggregate uplink bandwidth of ``1/R`` times the
aggregate NIC bandwidth of its hosts.  With ``g`` nodes per rack, host
per-byte time ``bto`` and ``U`` parallel uplinks, the per-uplink byte
time is therefore ``R * bto * U / g``.

The ``FABRIC_BUILDERS`` registry maps CLI-facing names to builders; use
:func:`build_fabric` to resolve a name (raising :class:`ArtifactError`
listing the alternatives on a miss).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ArtifactError, SimulationError
from repro.fabric.spec import FLAT_FABRIC, FabricSpec, Uplink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clusters.spec import ClusterSpec

#: Extra one-way latency of each additional switch tier, as a fraction
#: of the host NIC latency.  Leaf→spine adds roughly one store-and-
#: forward hop, which on the paper's platforms is about half the
#: end-to-end MPI latency.
UPLINK_LATENCY_FRACTION = 0.5


def _uplink_for(
    spec: "ClusterSpec",
    nodes_per_rack: int,
    oversubscription: float,
    uplinks: int,
) -> Uplink:
    if oversubscription <= 0:
        raise SimulationError("oversubscription ratio must be > 0")
    net = spec.network
    byte_time = oversubscription * net.byte_time_out * uplinks / nodes_per_rack
    return Uplink(
        latency=net.latency * UPLINK_LATENCY_FRACTION,
        byte_time=byte_time,
        count=uplinks,
    )


def _racks(spec: "ClusterSpec", racks: int) -> int:
    """Nodes per rack when splitting ``spec.nodes`` into ``racks`` racks."""
    if spec.nodes < 2 * racks:
        raise SimulationError(
            f"cluster {spec.name!r} has {spec.nodes} nodes; "
            f"need at least {2 * racks} for {racks} racks"
        )
    return (spec.nodes + racks - 1) // racks


def flat_fabric(spec: "ClusterSpec") -> FabricSpec:
    """The explicit single-switch fabric (identical to no fabric)."""
    del spec
    return FLAT_FABRIC


def leaf_spine(
    spec: "ClusterSpec",
    *,
    nodes_per_rack: int,
    oversubscription: float,
    uplinks: int = 1,
    name: str | None = None,
) -> FabricSpec:
    """A two-level rack/leaf-spine hierarchy with oversubscribed uplinks."""
    if nodes_per_rack < 1:
        raise SimulationError("nodes_per_rack must be >= 1")
    return FabricSpec(
        name=name or f"leaf_spine_{oversubscription:g}to1",
        nodes_per_rack=nodes_per_rack,
        uplink=_uplink_for(spec, nodes_per_rack, oversubscription, uplinks),
    )


def fat_tree(
    spec: "ClusterSpec",
    *,
    nodes_per_rack: int,
    pod_racks: int,
    rack_oversubscription: float,
    pod_oversubscription: float,
    name: str | None = None,
) -> FabricSpec:
    """A three-level oversubscribed fat-tree (rack → pod → core).

    The pod uplink carries the traffic of ``pod_racks`` racks, so its
    byte time compounds both ratios relative to the hosts.
    """
    if nodes_per_rack < 1 or pod_racks < 1:
        raise SimulationError("fat tree needs nodes_per_rack and pod_racks >= 1")
    rack_up = _uplink_for(spec, nodes_per_rack, rack_oversubscription, 1)
    pod_nodes = nodes_per_rack * pod_racks
    pod_up = _uplink_for(
        spec, pod_nodes, rack_oversubscription * pod_oversubscription, 1
    )
    total = rack_oversubscription * pod_oversubscription
    return FabricSpec(
        name=name or f"fat_tree_{total:g}to1",
        nodes_per_rack=nodes_per_rack,
        uplink=rack_up,
        pod_racks=pod_racks,
        pod_uplink=pod_up,
    )


def heterogeneous_spine(
    spec: "ClusterSpec",
    *,
    nodes_per_rack: int,
    oversubscription: float,
    slow_racks: dict[int, float],
    name: str | None = None,
) -> FabricSpec:
    """Leaf-spine where some racks' uplinks are slower by a given factor.

    ``slow_racks`` maps rack index → byte-time multiplier (``2.0`` means
    that rack's uplink moves bytes half as fast), modelling mixed-
    generation switch fleets.
    """
    base = _uplink_for(spec, nodes_per_rack, oversubscription, 1)
    overrides = []
    for rack, factor in sorted(slow_racks.items()):
        if factor <= 0:
            raise SimulationError("slow-rack factor must be > 0")
        overrides.append(
            (rack, Uplink(base.latency, base.byte_time * factor, base.count))
        )
    return FabricSpec(
        name=name or f"het_spine_{oversubscription:g}to1",
        nodes_per_rack=nodes_per_rack,
        uplink=base,
        rack_uplinks=tuple(overrides),
    )


def _build_flat(spec: "ClusterSpec") -> FabricSpec:
    return flat_fabric(spec)


def _build_leaf_spine_2to1(spec: "ClusterSpec") -> FabricSpec:
    return leaf_spine(
        spec,
        nodes_per_rack=_racks(spec, 2),
        oversubscription=2.0,
        name="leaf_spine_2to1",
    )


def _build_leaf_spine_4to1(spec: "ClusterSpec") -> FabricSpec:
    return leaf_spine(
        spec,
        nodes_per_rack=_racks(spec, 4),
        oversubscription=4.0,
        name="leaf_spine_4to1",
    )


def _build_fat_tree_4to1(spec: "ClusterSpec") -> FabricSpec:
    return fat_tree(
        spec,
        nodes_per_rack=_racks(spec, 4),
        pod_racks=2,
        rack_oversubscription=2.0,
        pod_oversubscription=2.0,
        name="fat_tree_4to1",
    )


def _build_het_spine_2to1(spec: "ClusterSpec") -> FabricSpec:
    return heterogeneous_spine(
        spec,
        nodes_per_rack=_racks(spec, 2),
        oversubscription=2.0,
        slow_racks={1: 2.0},
        name="het_spine_2to1",
    )


#: CLI-facing registry of named fabric shapes.
FABRIC_BUILDERS: dict[str, Callable[["ClusterSpec"], FabricSpec]] = {
    "flat": _build_flat,
    "leaf_spine_2to1": _build_leaf_spine_2to1,
    "leaf_spine_4to1": _build_leaf_spine_4to1,
    "fat_tree_4to1": _build_fat_tree_4to1,
    "het_spine_2to1": _build_het_spine_2to1,
}


def available_fabrics() -> list[str]:
    """Sorted names accepted by ``--fabric`` flags."""
    return sorted(FABRIC_BUILDERS)


def build_fabric(name: str, spec: "ClusterSpec") -> FabricSpec:
    """Resolve a named fabric shape for ``spec``.

    Raises :class:`ArtifactError` naming the available builders when the
    name is unknown — surfaced verbatim by the CLI ``--fabric`` flags.
    """
    try:
        builder = FABRIC_BUILDERS[name]
    except KeyError:
        raise ArtifactError(
            f"unknown fabric {name!r}; available fabrics: "
            + ", ".join(available_fabrics())
        ) from None
    return builder(spec)
