"""Data series for the paper's figures, with CSV export and ASCII plots.

Figures are regenerated as *data* (CSV rows plus a quick terminal plot) —
the repository carries no plotting dependency; any spreadsheet or
matplotlib one-liner turns the CSV into the paper's graphs.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Mapping, Sequence

from repro.bench.runner import SelectionRow
from repro.clusters.spec import ClusterSpec
from repro.models.hockney import HockneyParams
from repro.models.traditional import TRADITIONAL_BCAST_MODELS
from repro.selection.oracle import MeasuredOracle, Selection
from repro.units import KiB, format_bytes


def fig1_series(
    spec: ClusterSpec,
    p2p_params: HockneyParams,
    procs: int,
    sizes: Sequence[int],
    *,
    algorithms: Sequence[str] = ("binary", "binomial"),
    segment_size: int = 8 * KiB,
    oracle: MeasuredOracle | None = None,
) -> dict[str, dict[int, float]]:
    """Fig. 1: traditional model estimates vs experimental curves.

    Returns ``{"<alg>_model": {m: seconds}, "<alg>_measured": {...}}`` for
    each requested algorithm, using the traditional (definition-based)
    models parameterised by ping-pong-measured Hockney parameters — the
    combination the paper shows to be far from reality.
    """
    if oracle is None:
        oracle = MeasuredOracle(spec, segment_size=segment_size)
    # Fan the whole measurement grid out through the oracle's runner first;
    # only the requested algorithms, not the oracle's full candidate list.
    oracle.prefetch(
        procs,
        [],
        selections=[
            (m, Selection(name, segment_size))
            for name in algorithms
            for m in sizes
        ],
    )
    series: dict[str, dict[int, float]] = {}
    for name in algorithms:
        model = TRADITIONAL_BCAST_MODELS[name](None)
        series[f"{name}_model"] = {
            m: model.predict(procs, m, segment_size, p2p_params) for m in sizes
        }
        series[f"{name}_measured"] = {
            m: oracle.measure(procs, m, name) for m in sizes
        }
    return series


def fig5_series(rows: Sequence[SelectionRow]) -> dict[str, dict[int, float]]:
    """Fig. 5: the three curves (Open MPI, model-based, best) of one panel."""
    return {
        "ompi": {row.nbytes: row.ompi_time for row in rows},
        "model_based": {row.nbytes: row.model_time for row in rows},
        "best": {row.nbytes: row.best_time for row in rows},
    }


def write_csv(
    path: str | Path, series: Mapping[str, Mapping[int, float]]
) -> None:
    """Write ``{series: {x: y}}`` as a wide CSV (one row per x)."""
    xs = sorted({x for ys in series.values() for x in ys})
    names = list(series)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["message_bytes"] + names)
        for x in xs:
            writer.writerow(
                [x] + [series[name].get(x, "") for name in names]
            )


def ascii_plot(
    series: Mapping[str, Mapping[int, float]],
    *,
    width: int = 68,
    title: str = "",
) -> str:
    """Log-log scatter of several series on a shared terminal canvas.

    Each series gets a marker letter; overlapping points show the later
    series' marker.  Good enough to eyeball crossovers in CI logs.
    """
    points = [
        (x, y, index)
        for index, ys in enumerate(series.values())
        for x, y in ys.items()
        if x > 0 and y > 0
    ]
    if not points:
        return f"{title}\n(no data)"
    xs = [math.log10(x) for x, _, _ in points]
    ys = [math.log10(y) for _, y, _ in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    height = 16
    canvas = [[" "] * width for _ in range(height)]
    markers = "abcdefghij"
    for (x, y, index), lx, ly in zip(points, xs, ys):
        col = round((lx - x_lo) / x_span * (width - 1))
        row = (height - 1) - round((ly - y_lo) / y_span * (height - 1))
        canvas[row][col] = markers[index % len(markers)]
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines = [title] if title else []
    lines.append(f"y: {10 ** y_hi:.2e}s .. {10 ** y_lo:.2e}s (log)")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(
        f" x: {format_bytes(round(10 ** x_lo))} .. {format_bytes(round(10 ** x_hi))} (log)"
    )
    lines.append(" " + legend)
    return "\n".join(lines)
