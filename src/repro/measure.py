"""Timed communication experiments on simulated clusters.

Every estimation procedure and benchmark boils down to: build a fresh
simulated world, run one MPI program on all ranks, and read off a time.
This module defines those programs and timing conventions:

* ``policy="global"`` — time until the last rank completes (MPIBlib's
  *global* measurement; used for algorithm comparison, Table 3 / Fig. 5);
* ``policy="root"`` — time measured on the root's clock (the paper's α/β
  experiments start and finish on the root precisely so its clock suffices).

Repetition/statistics live in :mod:`repro.estimation.statistics`; functions
here run exactly one simulation per call and are deterministic given
``seed``.
"""

from __future__ import annotations

from typing import Callable

from repro.clusters.spec import ClusterSpec
from repro.collectives.barrier import (
    BARRIER_ALGORITHMS,
    DEFAULT_BARRIER,
    BarrierAlgorithm,
)
from repro.collectives.allgather import ALLGATHER_ALGORITHMS
from repro.collectives.allreduce import ALLREDUCE_ALGORITHMS
from repro.collectives.alltoall import ALLTOALL_ALGORITHMS
from repro.collectives.bcast import BCAST_ALGORITHMS, BcastAlgorithm
from repro.collectives.gather import GATHER_ALGORITHMS, GatherAlgorithm
from repro.collectives.reduce import REDUCE_ALGORITHMS
from repro.collectives.scatter import SCATTER_ALGORITHMS
from repro.errors import SimulationError
from repro.mpi.communicator import Communicator
from repro.sim.engine import SimGen
from repro.sim.trace import NULL_TRACER, Tracer

#: Timing conventions supported by :func:`run_timed`.
POLICIES = ("global", "root")


def run_timed(
    spec: ClusterSpec,
    program: Callable[[Communicator], SimGen],
    procs: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "global",
    tracer: Tracer = NULL_TRACER,
    mapping: str = "block",
) -> float:
    """Run ``program`` on ``procs`` ranks; return the elapsed simulated time.

    All ranks start at simulated time zero (a perfectly synchronised start,
    the ideal the paper's barrier-separated repetitions approximate).
    """
    if policy not in POLICIES:
        raise SimulationError(f"unknown timing policy {policy!r}; use {POLICIES}")
    world = spec.make_world(procs, seed=seed, tracer=tracer, mapping=mapping)

    def body(comm: Communicator) -> SimGen:
        yield from program(comm)
        return comm.now

    processes = world.run(body)
    finish_times = [p.value for p in processes]
    if not world.quiescent():
        raise SimulationError("run left unmatched messages or receives behind")
    return finish_times[root] if policy == "root" else max(finish_times)


# -- broadcast ---------------------------------------------------------------


def time_bcast(
    spec: ClusterSpec,
    algorithm: BcastAlgorithm | str,
    procs: int,
    nbytes: int,
    segment_size: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "global",
    tracer: Tracer = NULL_TRACER,
    mapping: str = "block",
) -> float:
    """Time one broadcast with the given algorithm."""
    algorithm = _bcast(algorithm)

    def program(comm: Communicator) -> SimGen:
        yield from algorithm(comm, root, nbytes, segment_size)

    return run_timed(
        spec, program, procs, root=root, seed=seed, policy=policy,
        tracer=tracer, mapping=mapping,
    )


def time_bcast_then_gather(
    spec: ClusterSpec,
    algorithm: BcastAlgorithm | str,
    procs: int,
    nbytes: int,
    segment_size: int,
    gather_bytes: int,
    *,
    root: int = 0,
    seed: int = 0,
) -> float:
    """The paper's α/β communication experiment (§4.2), timed on the root.

    Broadcast of ``nbytes`` with the algorithm under test, followed by a
    linear-without-synchronisation gather of ``gather_bytes`` per rank onto
    the root; starts and finishes on the root so the root clock times it.
    """
    algorithm = _bcast(algorithm)
    gather = GATHER_ALGORITHMS["linear"]

    def program(comm: Communicator) -> SimGen:
        yield from algorithm(comm, root, nbytes, segment_size)
        yield from gather(comm, root, gather_bytes)

    return run_timed(spec, program, procs, root=root, seed=seed, policy="root")


def time_repeated_bcast_with_barriers(
    spec: ClusterSpec,
    algorithm: BcastAlgorithm | str,
    procs: int,
    nbytes: int,
    segment_size: int,
    calls: int,
    *,
    root: int = 0,
    seed: int = 0,
    barrier: BarrierAlgorithm = DEFAULT_BARRIER,
    mapping: str = "block",
) -> float:
    """The paper's γ experiment kernel (§4.1): returns ``T1(P, N)``.

    ``calls`` successive broadcasts separated by barriers, timed on the
    root from the first call to the completion of the last barrier.
    """
    if calls < 1:
        raise SimulationError(f"need at least one call, got {calls}")
    algorithm = _bcast(algorithm)

    def program(comm: Communicator) -> SimGen:
        for _ in range(calls):
            yield from algorithm(comm, root, nbytes, segment_size)
            yield from barrier(comm)

    return run_timed(
        spec, program, procs, root=root, seed=seed, policy="root", mapping=mapping
    )


def time_repeated_barrier(
    spec: ClusterSpec,
    procs: int,
    calls: int,
    *,
    root: int = 0,
    seed: int = 0,
    barrier: BarrierAlgorithm = DEFAULT_BARRIER,
) -> float:
    """Root-clock time of ``calls`` back-to-back barriers.

    Used to compensate the barrier share out of the γ experiment.
    """

    def program(comm: Communicator) -> SimGen:
        for _ in range(calls):
            yield from barrier(comm)

    return run_timed(spec, program, procs, root=root, seed=seed, policy="root")


# -- reduce and barrier -------------------------------------------------------


def time_reduce(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    nbytes: int,
    segment_size: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "root",
) -> float:
    """Time one reduction; root-timed by default (it ends on the root)."""
    entry = REDUCE_ALGORITHMS[algorithm]

    def program(comm: Communicator) -> SimGen:
        yield from entry(comm, root, nbytes, segment_size)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


def time_reduce_then_scatter(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    nbytes: int,
    segment_size: int,
    scatter_bytes: int,
    *,
    root: int = 0,
    seed: int = 0,
) -> float:
    """The reduce α/β experiment: reduce under test + linear scatter.

    The dual of :func:`time_bcast_then_gather` — the composite starts and
    finishes on the root, and the linear scatter of ``scatter_bytes`` per
    rank contributes the same ``(P-1, (P-1)·m_g)`` coefficient row the
    gather does for broadcasts.
    """
    entry = REDUCE_ALGORITHMS[algorithm]
    scatter = SCATTER_ALGORITHMS["linear"]

    def program(comm: Communicator) -> SimGen:
        yield from entry(comm, root, nbytes, segment_size)
        yield from scatter(comm, root, scatter_bytes)

    return run_timed(spec, program, procs, root=root, seed=seed, policy="root")


def time_barrier(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "global",
) -> float:
    """Time one barrier (global completion by default)."""
    entry = BARRIER_ALGORITHMS[algorithm]

    def program(comm: Communicator) -> SimGen:
        yield from entry(comm)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


# -- gather and point-to-point ------------------------------------------------


def time_gather(
    spec: ClusterSpec,
    algorithm: GatherAlgorithm | str,
    procs: int,
    nbytes: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "root",
) -> float:
    """Time one gather of ``nbytes`` per rank onto the root."""
    if isinstance(algorithm, str):
        algorithm = GATHER_ALGORITHMS[algorithm]

    def program(comm: Communicator) -> SimGen:
        yield from algorithm(comm, root, nbytes)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


def time_scatter(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    nbytes: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "global",
) -> float:
    """Time one scatter of ``nbytes`` per rank from the root.

    Global-timed by default: unlike gather, the operation *ends* on the
    leaves, so the root's clock would miss the last delivery.
    """
    entry = SCATTER_ALGORITHMS[algorithm]

    def program(comm: Communicator) -> SimGen:
        yield from entry(comm, root, nbytes)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


# -- symmetric collectives (every rank starts and finishes) -------------------


def time_allreduce(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    nbytes: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "global",
) -> float:
    """Time one allreduce of an ``nbytes`` full vector (global completion)."""
    entry = ALLREDUCE_ALGORITHMS[algorithm]

    def program(comm: Communicator) -> SimGen:
        yield from entry(comm, nbytes)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


def time_allgather(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    nbytes: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "global",
) -> float:
    """Time one allgather of ``nbytes`` per rank (global completion)."""
    entry = ALLGATHER_ALGORITHMS[algorithm]

    def program(comm: Communicator) -> SimGen:
        yield from entry(comm, nbytes)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


def time_alltoall(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    nbytes: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "global",
) -> float:
    """Time one alltoall of ``nbytes`` per pair (global completion)."""
    entry = ALLTOALL_ALGORITHMS[algorithm]

    def program(comm: Communicator) -> SimGen:
        yield from entry(comm, nbytes)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


def time_p2p_roundtrip(
    spec: ClusterSpec,
    nbytes: int,
    *,
    seed: int = 0,
    ranks: tuple[int, int] = (0, 1),
    mapping: str = "spread",
) -> float:
    """Half of a ping-pong round trip between two ranks (Hockney's method).

    Defaults to spread mapping so the measured link is a network link even
    on clusters with several ranks per node.

    This is the classical point-to-point experiment of §2.2 that the paper
    argues is *insufficient* for modelling collectives; we implement it for
    the traditional models and the estimation ablation.
    """
    src, dst = ranks
    if src == dst:
        raise SimulationError("round trip needs two distinct ranks")
    procs = max(src, dst) + 1

    def program(comm: Communicator) -> SimGen:
        if comm.rank == src:
            yield from comm.send(dst, nbytes, tag=4_000)
            yield from comm.recv(dst, tag=4_001)
        elif comm.rank == dst:
            yield from comm.recv(src, tag=4_000)
            yield from comm.send(src, nbytes, tag=4_001)

    round_trip = run_timed(
        spec, program, procs, root=src, seed=seed, policy="root", mapping=mapping
    )
    return round_trip / 2.0


def _bcast(algorithm: BcastAlgorithm | str) -> BcastAlgorithm:
    if isinstance(algorithm, str):
        return BCAST_ALGORITHMS[algorithm]
    return algorithm
