"""Estimation of the platform function γ(P) (paper §4.1).

γ(P) is defined (Eq. 3) as the ratio of the non-blocking linear-tree
broadcast's execution time over ``P`` processes to the point-to-point time,
for one segment of ``m_s`` bytes; by definition ``γ(2) = 1``.  Since the
linear broadcast with non-blocking sends only ever pushes segments to the
small number of children of a tree node, measuring ``P = 2..7`` covers
every fanout that occurs on the paper's platforms; larger fanouts use the
linear extrapolation built into :class:`~repro.models.gamma.GammaFunction`.

Two measurement methods are provided:

* ``"direct"`` (default) — time single linear broadcasts to *global*
  completion (the last rank's finish), repeat to the paper's statistical
  precision, and take ratios.  This reads Eq. 3 literally; a simulator (or
  MPIBlib's globally synchronised timers) can observe global completion
  directly.
* ``"paper"`` — the paper's root-clock procedure: time ``N`` successive
  broadcast calls separated by barriers on the root and divide by ``N``.
  On a real cluster this is the practical approximation of the direct
  method; in the simulator it additionally includes the barrier cost, which
  steepens the estimated γ slightly (see EXPERIMENTS.md).

Experiments use spread (one-rank-per-node) placement so every measured link
is a network link even on multi-rank nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.models.gamma import GammaFunction
from repro.units import KiB

#: The paper's segment size for segmented broadcast algorithms.
DEFAULT_SEGMENT_SIZE = 8 * KiB
#: Largest linear-broadcast size measured; 7 covers binomial fanouts on
#: both of the paper's clusters (max children = ceil(log2 124) = 7).
DEFAULT_MAX_PROCS = 7

METHODS = ("direct", "paper")


def _gamma_job(
    spec: ClusterSpec,
    method: str,
    procs: int,
    segment_size: int,
    calls: int,
    mapping: str,
    rep_seed: int,
) -> SimJob:
    """The simulation job behind one γ repetition."""
    if method == "direct":
        return SimJob(
            spec=spec,
            kind="bcast",
            procs=procs,
            algorithm="linear",
            nbytes=segment_size,
            segment_size=0,
            seed=rep_seed,
            policy="global",
            mapping=mapping,
        )
    return SimJob(
        spec=spec,
        kind="bcast_barrier_reps",
        procs=procs,
        algorithm="linear",
        nbytes=segment_size,
        segment_size=0,
        calls=calls,
        seed=rep_seed,
        mapping=mapping,
    )


def gamma_prefetch_jobs(
    spec: ClusterSpec,
    *,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    max_procs: int = DEFAULT_MAX_PROCS,
    method: str = "direct",
    calls: int = 10,
    seed: int = 0,
    mapping: str = "spread",
    reps: int = 2,
) -> list[SimJob]:
    """The first ``reps`` repetitions of every γ measurement, as jobs.

    Enumerates exactly the seeds the adaptive loop in
    :func:`estimate_gamma` will request, so prefetching these through a
    runner makes the loop replay from the memo.
    """
    batch: list[SimJob] = []
    for procs in range(2, max_procs + 1):
        base = seed + 1_000_003 * procs
        for rep in range(reps):
            batch.append(
                _gamma_job(
                    spec, method, procs, segment_size, calls, mapping,
                    base + 7919 * rep,
                )
            )
    return batch


@dataclass(frozen=True)
class GammaEstimate:
    """Result of a γ estimation run."""

    #: γ(P) table for P = 2..max_procs.
    table: dict[int, float]
    #: Per-P statistics of the underlying T2 measurements.
    stats: dict[int, SampleStats]
    #: Measurement method used ("direct" or "paper").
    method: str
    #: Segment size the linear broadcasts carried.
    segment_size: int

    def function(self) -> GammaFunction:
        """The γ(P) function (with linear extrapolation) from this estimate."""
        return GammaFunction(table=self.table)


def estimate_gamma(
    spec: ClusterSpec,
    *,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    max_procs: int = DEFAULT_MAX_PROCS,
    method: str = "direct",
    calls: int = 10,
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    mapping: str = "spread",
    runner: ParallelRunner | None = None,
    prefetch: bool = True,
) -> GammaEstimate:
    """Measure γ(P) for ``P = 2..max_procs`` on ``spec``.

    ``calls`` is the paper's ``N`` (only used by the ``"paper"`` method).
    Simulations run through ``runner`` (default: the process-wide runner);
    ``prefetch=False`` skips the warm-up batch when the caller has already
    prefetched a larger one.
    """
    if method not in METHODS:
        raise EstimationError(f"unknown gamma method {method!r}; use {METHODS}")
    if max_procs < 2:
        raise EstimationError(f"need max_procs >= 2, got {max_procs}")
    if max_procs > spec.max_procs:
        raise EstimationError(
            f"{spec.name} hosts at most {spec.max_procs} processes, "
            f"cannot measure gamma({max_procs})"
        )
    runner = runner if runner is not None else default_runner()
    if prefetch:
        runner.prefetch(
            gamma_prefetch_jobs(
                spec,
                segment_size=segment_size,
                max_procs=max_procs,
                method=method,
                calls=calls,
                seed=seed,
                mapping=mapping,
            )
        )

    with obs.span(
        "estimate.gamma",
        cluster=spec.name,
        method=method,
        max_procs=max_procs,
    ):
        stats: dict[int, SampleStats] = {}
        for procs in range(2, max_procs + 1):

            def measure_once(rep_seed: int, procs: int = procs) -> float:
                total = runner.run_one(
                    _gamma_job(
                        spec, method, procs, segment_size, calls, mapping, rep_seed
                    )
                )
                return total / calls if method == "paper" else total

            stats[procs] = adaptive_measure(
                measure_once,
                precision=precision,
                max_reps=max_reps,
                seed=seed + 1_000_003 * procs,
            )

        baseline = stats[2].mean
        if baseline <= 0:
            raise EstimationError("point-to-point baseline measured as non-positive")
        table = {procs: s.mean / baseline for procs, s in stats.items()}
        return GammaEstimate(
            table=table, stats=stats, method=method, segment_size=segment_size
        )
