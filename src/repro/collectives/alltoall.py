"""Alltoall algorithms (extension).

Alltoall is the fourth operation studied by Pjevsivac-Grbovic et al. [8]
(with barrier, broadcast and reduce), so the catalogue carries it too.
Ports of ``coll_base_alltoall.c``: basic linear (all pairs at once),
pairwise exchange (P-1 structured rounds) and Bruck's log-round algorithm
for small messages.  ``nbytes`` is the per-pair block size.

Tag discipline: linear posts everything on the bare ``TAG_ALLTOALL``
(matching is by source), pairwise tags round ``s`` as ``+s`` with
``s < P``, and Bruck offsets its rounds by the communicator size — so
the three schedules' tag ranges stay disjoint for *any* ``P`` (a fixed
``+100`` offset would alias pairwise rounds once ``P`` passed 100).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mpi.communicator import Communicator
from repro.sim.engine import SimGen

#: Tag space for alltoall rounds.
TAG_ALLTOALL = 10_000


def alltoall_linear(comm: Communicator, nbytes: int) -> SimGen:
    """Basic linear alltoall: post everything, wait for everything.

    Port of ``alltoall_intra_basic_linear``: each rank posts P-1 irecvs and
    P-1 isends and waits for the lot — maximum concurrency, maximum
    contention.
    """
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    rank = comm.rank
    requests = []
    for peer in range(size):
        if peer == rank:
            continue
        request = yield from comm.irecv(peer, tag=TAG_ALLTOALL)
        requests.append(request)
    for peer in range(size):
        if peer == rank:
            continue
        request = yield from comm.isend(peer, nbytes, tag=TAG_ALLTOALL)
        requests.append(request)
    yield from comm.waitall(requests)


def alltoall_pairwise(comm: Communicator, nbytes: int) -> SimGen:
    """Pairwise exchange: P-1 rounds, round ``s`` swaps with ``rank ^ s``-style
    partners (``rank + s`` / ``rank - s`` ring arithmetic, as Open MPI does).

    Port of ``alltoall_intra_pairwise``.
    """
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    rank = comm.rank
    for step in range(1, size):
        send_to = (rank + step) % size
        recv_from = (rank - step + size) % size
        tag = TAG_ALLTOALL + step
        yield from comm.sendrecv(
            dest=send_to, nbytes=nbytes, source=recv_from, sendtag=tag, recvtag=tag
        )


def alltoall_bruck(comm: Communicator, nbytes: int) -> SimGen:
    """Bruck alltoall: ``ceil(log2 P)`` rounds of bundled blocks.

    Port of ``alltoall_intra_bruck``: in round ``k`` every rank ships all
    blocks whose destination index has bit ``k`` set — about half the
    buffer, ``ceil(P/2)`` blocks — to ``rank + 2^k``.  Fewer, larger
    messages: the small-message algorithm.
    """
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    rank = comm.rank
    distance = 1
    round_index = 0
    while distance < size:
        blocks = sum(1 for index in range(size) if index & distance)
        send_to = (rank + distance) % size
        recv_from = (rank - distance + size) % size
        # Offset by the communicator size: pairwise uses +1..+(P-1), so
        # +P+round can never alias it, whatever P is.
        tag = TAG_ALLTOALL + size + round_index
        yield from comm.sendrecv(
            dest=send_to,
            nbytes=blocks * nbytes,
            source=recv_from,
            sendtag=tag,
            recvtag=tag,
        )
        distance *= 2
        round_index += 1


@dataclass(frozen=True)
class AlltoallAlgorithm:
    """Catalogue entry for one alltoall algorithm."""

    name: str
    display_name: str
    func: Callable[[Communicator, int], SimGen]

    def __call__(self, comm: Communicator, nbytes: int) -> SimGen:
        return self.func(comm, nbytes)


#: Alltoall algorithm catalogue.
ALLTOALL_ALGORITHMS: dict[str, AlltoallAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        AlltoallAlgorithm("linear", "Basic linear", alltoall_linear),
        AlltoallAlgorithm("pairwise", "Pairwise exchange", alltoall_pairwise),
        AlltoallAlgorithm("bruck", "Bruck", alltoall_bruck),
    )
}
