"""Performance-guideline verification for selection artifacts.

Hunold and Carpen-Amarie's "Tuning MPI Collectives by Verifying
Performance Guidelines" observes that a well-tuned MPI library satisfies
machine-checkable *self-consistency invariants*: a collective must not be
slower than a combination of other collectives that implements it
(``bcast(m) <= scatter(ceil(m/P)) + allgather(ceil(m/P))`` under this
artifact's per-rank-block size convention), must not get faster when
asked to move more data (monotony), and must not beat itself when the
payload is split (split-robustness).  A violated guideline is not noise —
it is a concrete calibration or selection bug, pinpointed to an
``(operation, P, m)`` cell.

This module applies that idea to a packaged
:class:`~repro.service.artifact.SelectionArtifact`: every registered
:class:`Guideline` is evaluated against the artifact's *model
predictions of its own packaged decisions* across the full ``(P, m)``
decision grid.  Three families ship built in:

* **selection optimality** — the stored table choice must be the
  model-optimal algorithm at its cell (catches perturbed/tampered or
  stale tables that the content hash alone cannot judge *semantically*);
* **monotony / split-robustness** — per-operation sanity of the
  predicted times along the size axis;
* **mock-up guidelines** — Hunold's cross-collective inequalities
  (``bcast <= scatter + allgather`` and friends), with each operand's
  message size converted to that operation's own convention.  A
  guideline whose operand collectives are not in the artifact is
  reported as *skipped*, not silently dropped — a full eight-collective
  build checks all five.

The resulting :class:`GuidelineReport` is stamped into the artifact's
unhashed ``guidelines`` section by :func:`repro.service.artifact.
build_artifact`, and ``--strict`` builds (plus ``repro-mpi artifact
verify --guidelines --strict``) refuse violating artifacts outright.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import GuidelineViolationError, TuningError

__all__ = [
    "DEFAULT_SLACK",
    "Guideline",
    "GuidelineReport",
    "GuidelineViolation",
    "check_guidelines",
    "default_guidelines",
    "register_guideline",
    "registered_guidelines",
    "unregister_guideline",
    "verify_guidelines",
]

#: Default relative slack before an inequality counts as violated.  The
#: self-consistency guidelines compare *model* predictions with *model*
#: predictions, so genuine violations are large and the slack only has to
#: absorb floating-point noise.
DEFAULT_SLACK = 1e-6


@dataclass(frozen=True)
class GuidelineViolation:
    """One violated inequality at one grid cell."""

    guideline: str
    operation: str
    procs: int
    nbytes: int
    #: The side that should have been smaller (seconds).
    lhs: float
    #: The bound it exceeded (seconds).
    rhs: float
    #: Relative excess ``lhs / rhs - 1`` — how badly the bound is broken.
    margin: float
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "guideline": self.guideline,
            "operation": self.operation,
            "procs": self.procs,
            "nbytes": self.nbytes,
            "lhs": self.lhs,
            "rhs": self.rhs,
            "margin": self.margin,
            "detail": self.detail,
        }

    def describe(self) -> str:
        return (
            f"{self.guideline}: {self.operation} P={self.procs} "
            f"m={self.nbytes}: {self.lhs:.3e} > {self.rhs:.3e} "
            f"(+{100.0 * self.margin:.2f}%)"
            + (f" — {self.detail}" if self.detail else "")
        )


@dataclass(frozen=True)
class Guideline:
    """One machine-checkable performance invariant.

    ``check(artifact, slack)`` returns the violations it found;
    ``requires`` names the collective operations the artifact must carry
    for the guideline to be evaluable at all — an artifact missing one is
    *skipped* for this guideline (and says so in the report).
    """

    name: str
    description: str
    requires: frozenset[str]
    check: Callable[[object, float], list[GuidelineViolation]]

    def applicable(self, artifact) -> bool:
        return self.requires <= set(artifact.operations)


@dataclass
class GuidelineReport:
    """The outcome of verifying one artifact against a guideline set."""

    artifact_id: str
    #: Guidelines that were evaluated.
    checked: tuple[str, ...]
    #: Guideline name -> reason it could not be evaluated.
    skipped: dict[str, str]
    #: Grid cells inspected across all evaluated guidelines.
    cells: int
    violations: tuple[GuidelineViolation, ...]

    def ok(self) -> bool:
        return not self.violations

    @property
    def worst_margin(self) -> float:
        return max((v.margin for v in self.violations), default=0.0)

    def as_dict(self) -> dict:
        return {
            "artifact_id": self.artifact_id,
            "checked": list(self.checked),
            "skipped": dict(self.skipped),
            "cells": self.cells,
            "ok": self.ok(),
            "violations": [v.as_dict() for v in self.violations],
        }

    def format(self) -> str:
        lines = [
            f"guideline verification: {self.artifact_id}",
            f"  checked  {', '.join(self.checked) or '<none>'} "
            f"({self.cells} cells)",
        ]
        for name in sorted(self.skipped):
            lines.append(f"  skipped  {name}: {self.skipped[name]}")
        if self.ok():
            lines.append("  OK: no guideline violations")
        else:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            for violation in self.violations:
                lines.append(f"    {violation.describe()}")
        return "\n".join(lines)


def _cell_time(entry, procs: int, nbytes: int) -> float:
    """Model-predicted time of the artifact's *packaged decision*.

    This is the quantity guidelines constrain: not the model optimum in
    the abstract, but what a client following the shipped table will run.
    """
    choice = entry.table.select(procs, nbytes)
    return entry.platform.predict(
        choice.algorithm, procs, nbytes, segment_size=choice.segment_size
    )


def _grid(entry) -> Iterable[tuple[int, int]]:
    for procs in entry.table.proc_points:
        for nbytes in entry.table.size_points:
            yield procs, nbytes


def _check_selection_optimal(artifact, slack: float) -> list[GuidelineViolation]:
    """The stored choice must be model-optimal at its own grid cell.

    An honest build produces the table *from* the model argmin, so any
    violation means the table and the packaged model disagree — a
    perturbed, hand-edited or stale table.
    """
    from repro.selection.model_based import ModelBasedSelector

    violations: list[GuidelineViolation] = []
    for operation, entry in sorted(artifact.entries.items()):
        selector = ModelBasedSelector(entry.platform)
        for procs, nbytes in _grid(entry):
            stored = entry.table.select(procs, nbytes)
            stored_time = entry.platform.predict(
                stored.algorithm, procs, nbytes,
                segment_size=stored.segment_size,
            )
            best, best_time = selector.select_with_prediction(procs, nbytes)
            if best_time <= 0:
                continue  # degenerate cells (m = 0 no-ops) have no order
            if stored_time > best_time * (1.0 + slack):
                violations.append(
                    GuidelineViolation(
                        guideline="selection_optimal",
                        operation=operation,
                        procs=procs,
                        nbytes=nbytes,
                        lhs=stored_time,
                        rhs=best_time,
                        margin=stored_time / best_time - 1.0,
                        detail=(
                            f"table stores {stored.algorithm}"
                            f"/{stored.segment_size}, model prefers "
                            f"{best.algorithm}/{best.segment_size}"
                        ),
                    )
                )
    return violations


def _check_monotone_in_size(artifact, slack: float) -> list[GuidelineViolation]:
    """Hunold's monotony: moving more data must not be (predicted) faster."""
    violations: list[GuidelineViolation] = []
    for operation, entry in sorted(artifact.entries.items()):
        sizes = entry.table.size_points
        if len(sizes) < 2:
            continue  # size-independent collectives (barrier)
        for procs in entry.table.proc_points:
            for smaller, larger in zip(sizes, sizes[1:]):
                lhs = _cell_time(entry, procs, smaller)
                rhs = _cell_time(entry, procs, larger)
                if rhs <= 0:
                    continue
                if lhs > rhs * (1.0 + slack):
                    violations.append(
                        GuidelineViolation(
                            guideline="monotone_in_size",
                            operation=operation,
                            procs=procs,
                            nbytes=larger,
                            lhs=lhs,
                            rhs=rhs,
                            margin=lhs / rhs - 1.0,
                            detail=f"t({smaller}) > t({larger})",
                        )
                    )
    return violations


def _check_split_robustness(artifact, slack: float) -> list[GuidelineViolation]:
    """Hunold's split-robustness: ``t(k·m) <= k · t(m)``.

    Evaluated on adjacent size-grid pairs (``k = ceil(m2 / m1)``) — the
    default paper grid is log-spaced with exact doublings, so this is the
    classic ``t(2m) <= 2·t(m)`` check there.
    """
    violations: list[GuidelineViolation] = []
    for operation, entry in sorted(artifact.entries.items()):
        sizes = [s for s in entry.table.size_points if s > 0]
        if len(sizes) < 2:
            continue
        for procs in entry.table.proc_points:
            for smaller, larger in zip(sizes, sizes[1:]):
                k = math.ceil(larger / smaller)
                lhs = _cell_time(entry, procs, larger)
                rhs = k * _cell_time(entry, procs, smaller)
                if rhs <= 0:
                    continue
                if lhs > rhs * (1.0 + slack):
                    violations.append(
                        GuidelineViolation(
                            guideline="split_robustness",
                            operation=operation,
                            procs=procs,
                            nbytes=larger,
                            lhs=lhs,
                            rhs=rhs,
                            margin=lhs / rhs - 1.0,
                            detail=f"t({larger}) > {k}*t({smaller})",
                        )
                    )
    return violations


@dataclass(frozen=True)
class MockupTerm:
    """One right-hand operand of a cross-collective mock-up inequality.

    ``size(procs, nbytes)`` maps the lhs cell to the operand's message
    size — necessary because the artifact's size conventions differ per
    operation (bcast/reduce carry the full vector, gather/scatter/
    allgather a per-rank block, alltoall a per-pair block), so a sound
    mock-up must convert between them (``bcast(m) <=
    scatter(ceil(m/P)) + allgather(ceil(m/P))``, not ``scatter(m)``).
    ``count(procs)`` is how many sequential invocations
    the mock-up issues (``alltoall(m) <= P * scatter(m)``: every rank
    scatters its row in turn).
    """

    operation: str
    size: Callable[[int, int], int] = lambda procs, nbytes: nbytes
    count: Callable[[int], int] = lambda procs: 1


def _mockup_check(
    lhs_op: str, terms: Sequence[MockupTerm], description: str
) -> Callable[[object, float], list[GuidelineViolation]]:
    """A mock-up inequality: lhs(m) <= sum(count_i * rhs_i(size_i(m))).

    Evaluated on the lhs operation's grid; the rhs operations answer via
    their own tables' floor lookup at the *converted* operand size,
    exactly as a client composing the mock-up from served decisions
    would.
    """
    name = f"{lhs_op}_le_{'_plus_'.join(t.operation for t in terms)}"

    def check(artifact, slack: float) -> list[GuidelineViolation]:
        violations: list[GuidelineViolation] = []
        lhs_entry = artifact.entries[lhs_op]
        for procs, nbytes in _grid(lhs_entry):
            lhs = _cell_time(lhs_entry, procs, nbytes)
            rhs = sum(
                term.count(procs)
                * _cell_time(
                    artifact.entries[term.operation],
                    procs,
                    term.size(procs, nbytes),
                )
                for term in terms
            )
            if rhs <= 0:
                continue
            if lhs > rhs * (1.0 + slack):
                violations.append(
                    GuidelineViolation(
                        guideline=name,
                        operation=lhs_op,
                        procs=procs,
                        nbytes=nbytes,
                        lhs=lhs,
                        rhs=rhs,
                        margin=lhs / rhs - 1.0,
                        detail=description,
                    )
                )
        return violations

    return check


_GUIDELINES: dict[str, Guideline] = {}


def register_guideline(guideline: Guideline, *, replace: bool = False) -> None:
    """Add a guideline to the catalogue (refuses silent shadowing)."""
    if guideline.name in _GUIDELINES and not replace:
        raise TuningError(
            f"guideline {guideline.name!r} already registered; "
            "pass replace=True to override"
        )
    _GUIDELINES[guideline.name] = guideline


def unregister_guideline(name: str) -> None:
    _GUIDELINES.pop(name, None)


def registered_guidelines() -> list[str]:
    """Names of all catalogued guidelines, sorted."""
    return sorted(_GUIDELINES)


def default_guidelines() -> list[Guideline]:
    """The full catalogue, deterministic order."""
    return [_GUIDELINES[name] for name in sorted(_GUIDELINES)]


register_guideline(
    Guideline(
        name="selection_optimal",
        description="every stored table choice is model-optimal at its cell",
        requires=frozenset(),
        check=_check_selection_optimal,
    )
)
register_guideline(
    Guideline(
        name="monotone_in_size",
        description="predicted time never decreases with the message size",
        requires=frozenset(),
        check=_check_monotone_in_size,
    )
)
register_guideline(
    Guideline(
        name="split_robustness",
        description="t(k*m) <= k*t(m) along the size grid",
        requires=frozenset(),
        check=_check_split_robustness,
    )
)
def _per_rank_block(procs: int, nbytes: int) -> int:
    """The lhs full vector split into per-rank blocks: ``ceil(m / P)``."""
    return -(-nbytes // procs)


#: Hunold's cross-collective mock-up inequalities, stated for this
#: artifact's size conventions (bcast/reduce/allreduce size the full
#: vector; gather/scatter/allgather a per-rank block; alltoall a
#: per-pair block).  Every registered collective has a pipeline since the
#: whole-suite registry landed, so a full eight-collective build checks
#: all five; narrower artifacts report the inapplicable ones as skipped,
#: not silently dropped.
for _lhs, _terms, _description in (
    (
        "bcast",
        (
            MockupTerm("scatter", size=_per_rank_block),
            MockupTerm("allgather", size=_per_rank_block),
        ),
        "bcast(m) <= scatter(ceil(m/P)) + allgather(ceil(m/P))",
    ),
    (
        "scatter",
        (MockupTerm("alltoall"),),
        "scatter(m) <= alltoall(m)",
    ),
    (
        "gather",
        (MockupTerm("allgather"),),
        "gather(m) <= allgather(m)",
    ),
    (
        "reduce",
        (MockupTerm("allreduce"),),
        "reduce(m) <= allreduce(m)",
    ),
    (
        "alltoall",
        (MockupTerm("scatter", count=lambda procs: procs),),
        "alltoall(m) <= P * scatter(m)",
    ),
):
    register_guideline(
        Guideline(
            name=f"{_lhs}_le_{'_plus_'.join(t.operation for t in _terms)}",
            description=_description,
            requires=frozenset({_lhs, *(t.operation for t in _terms)}),
            check=_mockup_check(_lhs, _terms, _description),
        )
    )
del _lhs, _terms, _description


def _count_cells(artifact, names: Sequence[str]) -> int:
    per_op = {
        operation: len(entry.table.proc_points) * len(entry.table.size_points)
        for operation, entry in artifact.entries.items()
    }
    total = 0
    for name in names:
        requires = _GUIDELINES[name].requires
        if requires:
            total += per_op.get(next(iter(requires)), 0)
        else:
            total += sum(per_op.values())
    return total


def verify_guidelines(
    artifact,
    *,
    guidelines: Sequence[Guideline] | None = None,
    slack: float = DEFAULT_SLACK,
) -> GuidelineReport:
    """Evaluate every (applicable) guideline against ``artifact``.

    Returns a :class:`GuidelineReport`; never raises on violations — use
    :func:`check_guidelines` for the refusing gate.
    """
    chosen = list(guidelines) if guidelines is not None else default_guidelines()
    checked: list[str] = []
    skipped: dict[str, str] = {}
    violations: list[GuidelineViolation] = []
    present = set(artifact.operations)
    for guideline in chosen:
        missing = sorted(guideline.requires - present)
        if missing:
            skipped[guideline.name] = (
                f"artifact has no {', '.join(missing)} table"
            )
            continue
        checked.append(guideline.name)
        violations.extend(guideline.check(artifact, slack))
    violations.sort(key=lambda v: (-v.margin, v.guideline, v.operation))
    return GuidelineReport(
        artifact_id=artifact.artifact_id,
        checked=tuple(checked),
        skipped=skipped,
        cells=_count_cells(artifact, checked),
        violations=tuple(violations),
    )


def check_guidelines(
    artifact,
    *,
    guidelines: Sequence[Guideline] | None = None,
    slack: float = DEFAULT_SLACK,
) -> GuidelineReport:
    """Verify and *refuse*: raises on any violation.

    The strict packaging gate: :func:`repro.service.artifact.
    build_artifact(strict=True)` and ``artifact verify --guidelines
    --strict`` route through here.
    """
    report = verify_guidelines(artifact, guidelines=guidelines, slack=slack)
    if not report.ok():
        worst = report.violations[0]
        raise GuidelineViolationError(
            f"guideline verification refused {artifact.artifact_id}: "
            f"{len(report.violations)} violation(s), worst "
            f"{worst.describe()}",
            report=report,
        )
    return report
