"""Tag matching: posted-receive and unexpected-message queues.

Implements MPI's matching semantics for the simulated runtime:

* a receive matches a message when communicator context, source and tag all
  match (``ANY_SOURCE``/``ANY_TAG`` wildcards supported);
* the **non-overtaking rule**: messages from the same source on the same
  communicator and tag are matched in the order they were sent.  The fabric
  delivers messages from one source in injection order, and both queues here
  are scanned FIFO, which together preserve the rule.

Two kinds of arrival are handled: eager payloads (data already at the host)
and rendezvous ready-to-send notices (payload transfer starts only after the
match, via a clear-to-send callback).
"""

from __future__ import annotations

from typing import Callable

ANY_SOURCE = -1
ANY_TAG = -1


class Envelope:
    """An arrived eager message (payload already delivered)."""

    __slots__ = ("cid", "src", "tag", "nbytes", "arrival")

    def __init__(self, cid: int, src: int, tag: int, nbytes: int, arrival: float):
        self.cid = cid
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.arrival = arrival


class RtsNotice:
    """An arrived rendezvous ready-to-send notice.

    ``grant`` is invoked exactly once, at match time, as
    ``grant(match_time, recv_done)``; it triggers the clear-to-send and the
    payload transfer, then calls ``recv_done(deliver_time)`` so the receive
    side can schedule its completion.
    """

    __slots__ = ("cid", "src", "tag", "nbytes", "grant")

    def __init__(
        self,
        cid: int,
        src: int,
        tag: int,
        nbytes: int,
        grant: Callable[[float, Callable[[float], None]], None],
    ):
        self.cid = cid
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.grant = grant


class PostedRecv:
    """A posted receive waiting for a matching arrival.

    ``complete`` is invoked exactly once with the matched arrival (an
    :class:`Envelope` or :class:`RtsNotice`) and the match timestamp.
    """

    __slots__ = ("cid", "src", "tag", "complete")

    def __init__(
        self,
        cid: int,
        src: int,
        tag: int,
        complete: Callable[[Envelope | RtsNotice, float], None],
    ):
        self.cid = cid
        self.src = src
        self.tag = tag
        self.complete = complete

    def matches(self, cid: int, src: int, tag: int) -> bool:
        return (
            self.cid == cid
            and (self.src == ANY_SOURCE or self.src == src)
            and (self.tag == ANY_TAG or self.tag == tag)
        )


class MatchingEngine:
    """Per-rank matching state: one posted queue, one unexpected queue."""

    __slots__ = ("posted", "unexpected")

    def __init__(self) -> None:
        self.posted: list[PostedRecv] = []
        self.unexpected: list[Envelope | RtsNotice] = []

    # -- arrivals ---------------------------------------------------------

    def arrive(self, message: Envelope | RtsNotice, now: float) -> None:
        """Handle an arriving message: match a posted recv or queue it."""
        for i, recv in enumerate(self.posted):
            if recv.matches(message.cid, message.src, message.tag):
                del self.posted[i]
                recv.complete(message, now)
                return
        self.unexpected.append(message)

    # -- receives ---------------------------------------------------------

    def post(self, recv: PostedRecv, now: float) -> None:
        """Post a receive: match an unexpected arrival or queue it."""
        for i, message in enumerate(self.unexpected):
            if recv.matches(message.cid, message.src, message.tag):
                del self.unexpected[i]
                recv.complete(message, now)
                return
        self.posted.append(recv)

    # -- diagnostics -------------------------------------------------------

    def idle(self) -> bool:
        """True when no receives or messages are outstanding."""
        return not self.posted and not self.unexpected
