"""Command-line front end: ``repro-mpi`` (or ``python -m repro``).

Subcommands mirror the paper's workflow:

* ``clusters`` — list the simulated platforms;
* ``calibrate`` — run the §4 estimation procedure, write a JSON platform
  model;
* ``predict`` / ``select`` — evaluate a calibration at one ``(P, m)``;
* ``table1`` / ``table2`` / ``table3`` — regenerate the paper's tables;
* ``fig5`` — regenerate one panel of Fig. 5 (CSV + ASCII plot);
* ``reduce-table`` — the future-work extension: MPI_Reduce selection;
* ``decision-table`` — precompute and save a deployment decision table;
* ``decision-fn`` — compile a decision table to C or Python source;
* ``artifact build`` / ``artifact verify`` — package calibration + tables
  + generated code into a versioned, content-hashed artifact;
* ``serve`` — run the online selection server over an artifact directory;
* ``cache stats`` / ``cache clear`` — inspect or prune the persistent
  simulation-result cache.

Simulation-heavy subcommands share three execution flags: ``--jobs N``
fans simulations out over N worker processes (0 = all cores), and the
persistent result cache — on by default for the CLI — is controlled by
``--no-cache`` / ``--cache-dir`` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import repro.exec as exec_

from repro import obs
from repro.bench.figures import ascii_plot, fig5_series, write_csv
from repro.bench.runner import selection_comparison
from repro.bench.tables import format_table1, format_table2, format_table3
from repro.clusters import PRESETS, get_preset
from repro.errors import ReproError
from repro.estimation.gamma import estimate_gamma
from repro.estimation.workflow import PlatformModel, calibrate_platform
from repro.selection.decision_table import build_decision_table
from repro.selection.model_based import ModelBasedSelector
from repro.units import KiB, MiB, format_bytes, format_seconds, log_spaced_sizes

#: The paper's size sweep, reused by table3/fig5 commands.
PAPER_SIZES = log_spaced_sizes(8 * KiB, 4 * MiB, 10)


def parse_size(text: str) -> int:
    """Parse ``"8K"``, ``"4M"``, ``"512"`` into bytes."""
    text = text.strip().upper().removesuffix("B").removesuffix("I")
    multiplier = 1
    if text.endswith("K"):
        multiplier, text = KiB, text[:-1]
    elif text.endswith("M"):
        multiplier, text = MiB, text[:-1]
    try:
        return int(float(text) * multiplier)
    except ValueError:
        raise ReproError(f"cannot parse size {text!r}") from None


def _cmd_clusters(_args) -> int:
    for spec in PRESETS.values():
        print(spec.describe())
    return 0


def _cmd_calibrate(args) -> int:
    spec = get_preset(args.cluster)
    result = calibrate_platform(
        spec,
        procs=args.procs,
        max_reps=args.max_reps,
        seed=args.seed,
    )
    result.platform.save(args.output)
    print(f"calibrated {spec.name}; platform model written to {args.output}")
    gamma = result.platform.gamma
    print("gamma:", {p: round(g, 3) for p, g in sorted(gamma.table.items())})
    for name in result.platform.algorithms:
        params = result.platform.parameters[name]
        print(f"  {name:13s} {params}")
    return 0


def _cmd_predict(args) -> int:
    platform = PlatformModel.load(args.calibration)
    nbytes = parse_size(args.message)
    predictions = platform.predict_all(args.procs, nbytes)
    for name in sorted(predictions, key=predictions.get):
        print(f"  {name:13s} {format_seconds(predictions[name])}")
    return 0


def _cmd_select(args) -> int:
    platform = PlatformModel.load(args.calibration)
    selector = ModelBasedSelector(platform)
    nbytes = parse_size(args.message)
    choice, predicted = selector.select_with_prediction(args.procs, nbytes)
    print(
        f"P={args.procs} m={format_bytes(nbytes)}: {choice.describe()} "
        f"(predicted {format_seconds(predicted)})"
    )
    return 0


def _cmd_table1(args) -> int:
    estimates = {}
    for name in args.clusters.split(","):
        spec = get_preset(name.strip())
        estimates[spec.name] = estimate_gamma(spec, seed=args.seed)
    print(format_table1(estimates))
    return 0


def _cmd_table2(args) -> int:
    blocks = {}
    for name in args.clusters.split(","):
        spec = get_preset(name.strip())
        result = calibrate_platform(spec, max_reps=args.max_reps, seed=args.seed)
        blocks[spec.name] = result.alpha_beta
    print(format_table2(blocks))
    return 0


def _cmd_table3(args) -> int:
    spec = get_preset(args.cluster)
    if args.calibration:
        platform = PlatformModel.load(args.calibration)
    else:
        platform = calibrate_platform(
            spec, max_reps=args.max_reps, seed=args.seed
        ).platform
    rows = selection_comparison(spec, platform, args.procs, PAPER_SIZES)
    print(
        format_table3(rows, title=f"P={args.procs}, MPI_Bcast, {spec.name}")
    )
    return 0


def _cmd_fig5(args) -> int:
    spec = get_preset(args.cluster)
    if args.calibration:
        platform = PlatformModel.load(args.calibration)
    else:
        platform = calibrate_platform(
            spec, max_reps=args.max_reps, seed=args.seed
        ).platform
    rows = selection_comparison(spec, platform, args.procs, PAPER_SIZES)
    series = fig5_series(rows)
    if args.csv:
        write_csv(args.csv, series)
        print(f"wrote {args.csv}")
    print(
        ascii_plot(
            series, title=f"Fig.5 panel: {spec.name} P={args.procs} (MPI_Bcast)"
        )
    )
    return 0


def _cmd_reduce_table(args) -> int:
    from repro.collectives.reduce import DEFAULT_REDUCE_ALGORITHMS
    from repro.estimation.reduce_calibration import calibrate_reduce, time_reduce
    from repro.selection.ompi_fixed import OmpiFixedSelector

    spec = get_preset(args.cluster)
    platform, _estimates = calibrate_reduce(
        spec, max_reps=args.max_reps, seed=args.seed
    )
    model_selector = ModelBasedSelector(platform)
    ompi_selector = OmpiFixedSelector(operation="reduce")
    print(f"P={args.procs}, MPI_Reduce, {spec.name}")
    print(f"{'m':>10} {'best':>20} {'model (deg%)':>24} {'Open MPI (deg%)':>30}")
    for nbytes in PAPER_SIZES:
        times = {
            name: time_reduce(spec, name, args.procs, nbytes, 8 * KiB,
                              seed=args.seed)
            for name in DEFAULT_REDUCE_ALGORITHMS
        }
        best = min(times, key=times.get)
        model = model_selector.select(args.procs, nbytes)
        ompi = ompi_selector.select(args.procs, nbytes)
        model_time = time_reduce(
            spec, model.algorithm, args.procs, nbytes, model.segment_size,
            seed=args.seed,
        )
        ompi_time = time_reduce(
            spec, ompi.algorithm, args.procs, nbytes, ompi.segment_size,
            seed=args.seed,
        )
        model_deg = 100 * (model_time - times[best]) / times[best]
        ompi_deg = 100 * (ompi_time - times[best]) / times[best]
        print(
            f"{format_bytes(nbytes):>10} {best:>20} "
            f"{model.algorithm:>16} ({model_deg:4.0f}) "
            f"{ompi.describe():>22} ({ompi_deg:5.0f})"
        )
    return 0


def _cmd_decision_table(args) -> int:
    platform = PlatformModel.load(args.calibration)
    selector = ModelBasedSelector(platform)
    procs = range(args.min_procs, args.max_procs + 1, args.procs_step)
    table = build_decision_table(selector, list(procs), PAPER_SIZES)
    table.save(args.output)
    print(f"decision table with {len(table.proc_points)}x"
          f"{len(table.size_points)} entries written to {args.output}")
    if args.emit_c or args.emit_python:
        from repro.selection.codegen import generate_c, generate_python

        if args.emit_c:
            with open(args.emit_c, "w") as handle:
                handle.write(generate_c(table))
            print(f"C decision function written to {args.emit_c}")
        if args.emit_python:
            with open(args.emit_python, "w") as handle:
                handle.write(generate_python(table))
            print(f"Python decision function written to {args.emit_python}")
    return 0


def _cmd_decision_fn(args) -> int:
    from repro.selection.codegen import generate_c, generate_python
    from repro.selection.decision_table import DecisionTable

    try:
        table = DecisionTable.load(args.table)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as error:
        raise ReproError(f"cannot load decision table {args.table}: {error}") from error
    if args.backend == "c":
        source = generate_c(table, function_name=args.function_name
                            or "coll_bcast_dec_generated")
    else:
        source = generate_python(table, function_name=args.function_name
                                 or "select_bcast")
    with open(args.out, "w") as handle:
        handle.write(source)
    print(
        f"{args.backend} decision function "
        f"({len(table.proc_points)}x{len(table.size_points)} grid) "
        f"written to {args.out}"
    )
    return 0


def _apply_fabric(spec, fabric_name):
    """Attach a named fabric to ``spec`` (``None``/"" leaves it flat)."""
    if not fabric_name:
        return spec
    from repro.fabric import build_fabric

    return spec.with_fabric(build_fabric(fabric_name, spec))


def _cmd_chaos(args) -> int:
    from repro.bench.chaos import chaos_sweep, format_chaos

    spec = _apply_fabric(get_preset(args.cluster), args.fabric)
    severities = tuple(
        float(s) for s in args.severities.split(",") if s.strip()
    )
    kwargs = {}
    if args.screen_mad is not None:  # else chaos_sweep's default (3.5)
        kwargs["screen_mad"] = args.screen_mad
    reports = chaos_sweep(
        spec,
        operation=args.operation,
        procs=args.procs,
        severities=severities,
        max_reps=args.max_reps,
        seed=args.seed,
        retry_budget=args.retry_budget,
        **kwargs,
    )
    print(format_chaos(reports))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([report.as_dict() for report in reports], handle, indent=2)
        print(f"drift report written to {args.json}")
    return 0


def _cmd_artifact_build(args) -> int:
    from repro.service.artifact import build_artifact

    spec = _apply_fabric(get_preset(args.cluster), args.fabric)
    proc_points = None
    if args.max_procs:
        proc_points = range(args.min_procs, args.max_procs + 1, args.procs_step)
    artifact = build_artifact(
        spec,
        collectives=[c.strip() for c in args.collectives.split(",")],
        proc_points=proc_points,
        procs=args.procs,
        gamma_max_procs=args.gamma_max_procs,
        max_reps=args.max_reps,
        seed=args.seed,
        strict=args.strict,
        screen_mad=args.screen_mad,
        retry_budget=args.retry_budget,
        batch=args.batch,
    )
    artifact.verify()
    artifact.save(args.output)
    print(f"artifact {artifact.artifact_id} written to {args.output}")
    for operation, info in artifact.summary()["operations"].items():
        print(
            f"  {operation}: {info['proc_points']}x{info['size_points']} grid, "
            f"algorithms: {', '.join(info['algorithms'])}"
        )
    return 0


def _cmd_artifact_verify(args) -> int:
    from repro.service.artifact import load_artifact

    artifact = load_artifact(args.path)
    artifact.verify()
    print(f"artifact {artifact.artifact_id} OK "
          f"(schema valid, hash verified, codegen agrees with tables)")
    if not args.guidelines:
        return 0
    from repro.tuning.guidelines import verify_guidelines

    slack_kwargs = {} if args.slack is None else {"slack": args.slack}
    report = verify_guidelines(artifact, **slack_kwargs)
    print(report.format())
    if not report.ok() and args.strict:
        print(f"strict: refusing artifact with {len(report.violations)} "
              f"guideline violation(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_artifact_diff(args) -> int:
    from repro.service.artifact import load_artifact
    from repro.tuning.diff import diff_artifacts, format_diff

    diff = diff_artifacts(load_artifact(args.old), load_artifact(args.new))
    print(format_diff(diff))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(diff.as_dict(), handle, indent=2)
        print(f"diff written to {args.json}")
    return 0 if diff.identical() else 1


def _cmd_serve(args) -> int:
    if args.workers > 1:
        from repro.service.shard import serve_sharded

        return serve_sharded(
            args.artifacts,
            host=args.host,
            port=args.port,
            workers=args.workers,
            admin_port=args.admin_port,
            cache_size=args.cache_size,
        )
    from repro.service.server import serve

    return serve(
        args.artifacts,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
    )


def _cmd_cache(args) -> int:
    from repro.exec.cache import CACHE_SCHEMA, ResultCache, default_cache_dir

    directory = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    path = directory / f"results-v{CACHE_SCHEMA}.jsonl"
    if args.cache_command == "stats":
        if not path.exists():
            print(f"cache at {directory}: empty (no {path.name})")
            return 0
        cache = ResultCache(directory)
        info = cache.describe()
        print(f"cache at {directory}:")
        print(f"  entries   {info['entries']}")
        print(f"  file size {info['file_bytes']} bytes")
        print(f"  loaded    {info['loaded']}")
        print(f"  dropped   {info['invalidated']} (stale salt / unparseable)")
        cache.close()
        return 0
    # clear: safe pruning — rewrites the file with a fresh header.
    cache = ResultCache(directory)
    removed = len(cache)
    cache.clear()
    cache.close()
    print(f"cache at {directory}: removed {removed} entries")
    return 0


def _cmd_trace(args) -> int:
    """Run another repro-mpi command with span tracing enabled.

    Works for *any* subcommand (unlike ``--trace-out``, which only the
    simulation-heavy commands expose): enable the process-wide recorder,
    re-enter :func:`main` with the remaining argv, then write the trace.
    """
    rest = [token for token in args.rest if token != "--"]
    if not rest:
        raise ReproError(
            "trace: give a command to run, e.g. "
            "'repro-mpi trace --out build.json artifact build ...'"
        )
    if rest[0] == "trace":
        raise ReproError("trace: cannot trace itself")
    recorder = obs.enable()
    try:
        return main(rest)
    finally:
        path = obs.save_trace(args.out)
        count = len(recorder.finished())
        obs.disable()
        recorder.clear()
        print(f"trace: {count} spans written to {path}", file=sys.stderr)


def _cmd_report(args) -> int:
    from repro.models.report import render_report

    platform = PlatformModel.load(args.calibration)
    text = render_report(platform)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _exec_flags() -> argparse.ArgumentParser:
    """Shared parent parser: execution flags of simulation-heavy commands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulations (0 = all cores; default: 1)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent simulation-result cache",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: ~/.cache/repro)",
    )
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record a structured span trace of this run "
             "(*.jsonl = JSONL, anything else = Chrome trace JSON)",
    )
    group.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=True,
        help="run prefetched simulation grids through the batched engine "
             "(bit-identical to the serial path; default: on)",
    )
    group.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="disable the batched engine (one event loop per simulation)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mpi",
        description="Model-based selection of MPI collective algorithms "
        "(PaCT 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    exec_flags = _exec_flags()

    sub.add_parser("clusters", help="list simulated cluster presets").set_defaults(
        func=_cmd_clusters
    )

    calibrate = sub.add_parser(
        "calibrate", help="run the full §4 calibration", parents=[exec_flags]
    )
    calibrate.add_argument("--cluster", required=True)
    calibrate.add_argument("--output", required=True)
    calibrate.add_argument("--procs", type=int, default=None)
    calibrate.add_argument("--max-reps", type=int, default=8)
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.set_defaults(func=_cmd_calibrate)

    predict = sub.add_parser("predict", help="predict all algorithms at (P, m)")
    predict.add_argument("--calibration", required=True)
    predict.add_argument("-P", "--procs", type=int, required=True)
    predict.add_argument("-m", "--message", required=True)
    predict.set_defaults(func=_cmd_predict)

    select = sub.add_parser("select", help="model-based selection at (P, m)")
    select.add_argument("--calibration", required=True)
    select.add_argument("-P", "--procs", type=int, required=True)
    select.add_argument("-m", "--message", required=True)
    select.set_defaults(func=_cmd_select)

    table1 = sub.add_parser(
        "table1", help="regenerate Table 1 (gamma)", parents=[exec_flags]
    )
    table1.add_argument("--clusters", default="grisou,gros")
    table1.add_argument("--seed", type=int, default=0)
    table1.set_defaults(func=_cmd_table1)

    table2 = sub.add_parser(
        "table2", help="regenerate Table 2 (alpha/beta)", parents=[exec_flags]
    )
    table2.add_argument("--clusters", default="grisou,gros")
    table2.add_argument("--max-reps", type=int, default=8)
    table2.add_argument("--seed", type=int, default=0)
    table2.set_defaults(func=_cmd_table2)

    table3 = sub.add_parser(
        "table3", help="regenerate Table 3 (selection)", parents=[exec_flags]
    )
    table3.add_argument("--cluster", required=True)
    table3.add_argument("-P", "--procs", type=int, required=True)
    table3.add_argument("--calibration", default=None)
    table3.add_argument("--max-reps", type=int, default=8)
    table3.add_argument("--seed", type=int, default=0)
    table3.set_defaults(func=_cmd_table3)

    fig5 = sub.add_parser(
        "fig5", help="regenerate one Fig. 5 panel", parents=[exec_flags]
    )
    fig5.add_argument("--cluster", required=True)
    fig5.add_argument("-P", "--procs", type=int, required=True)
    fig5.add_argument("--calibration", default=None)
    fig5.add_argument("--csv", default=None)
    fig5.add_argument("--max-reps", type=int, default=8)
    fig5.add_argument("--seed", type=int, default=0)
    fig5.set_defaults(func=_cmd_fig5)

    reduce_table = sub.add_parser(
        "reduce-table",
        help="future-work extension: MPI_Reduce selection table",
        parents=[exec_flags],
    )
    reduce_table.add_argument("--cluster", required=True)
    reduce_table.add_argument("-P", "--procs", type=int, required=True)
    reduce_table.add_argument("--max-reps", type=int, default=6)
    reduce_table.add_argument("--seed", type=int, default=0)
    reduce_table.set_defaults(func=_cmd_reduce_table)

    table = sub.add_parser(
        "decision-table", help="precompute a deployment decision table"
    )
    table.add_argument("--calibration", required=True)
    table.add_argument("--output", required=True)
    table.add_argument("--min-procs", type=int, default=2)
    table.add_argument("--max-procs", type=int, default=128)
    table.add_argument("--procs-step", type=int, default=2)
    table.add_argument("--emit-c", default=None,
                       help="also write a generated C decision function")
    table.add_argument("--emit-python", default=None,
                       help="also write a generated Python decision function")
    table.set_defaults(func=_cmd_decision_table)

    decision_fn = sub.add_parser(
        "decision-fn",
        help="compile a decision table to C or Python source",
    )
    decision_fn.add_argument("--table", required=True,
                             help="decision table JSON (from decision-table)")
    decision_fn.add_argument("--backend", choices=("c", "python"),
                             required=True)
    decision_fn.add_argument("--out", required=True)
    decision_fn.add_argument("--function-name", default=None)
    decision_fn.set_defaults(func=_cmd_decision_fn)

    artifact = sub.add_parser(
        "artifact", help="build / verify versioned selection artifacts"
    )
    artifact_sub = artifact.add_subparsers(dest="artifact_command", required=True)
    build = artifact_sub.add_parser(
        "build",
        help="calibrate, build tables, generate code, package",
        parents=[exec_flags],
    )
    build.add_argument("--cluster", required=True)
    build.add_argument("--output", required=True)
    build.add_argument("--collectives", default="bcast",
                       help="comma-separated (bcast,reduce,gather,barrier,"
                            "allreduce,allgather,alltoall,scatter)")
    build.add_argument("--procs", type=int, default=None,
                       help="calibration communicator size")
    build.add_argument("--gamma-max-procs", type=int, default=None,
                       help="largest communicator used by the gamma(P) "
                            "estimation (bcast and reduce pipelines)")
    build.add_argument("--min-procs", type=int, default=2)
    build.add_argument("--max-procs", type=int, default=None,
                       help="decision grid upper bound (default: cluster capacity)")
    build.add_argument("--procs-step", type=int, default=2)
    build.add_argument("--max-reps", type=int, default=8)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--strict", action="store_true",
                       help="refuse to package fits that fail the "
                            "calibration quality gate")
    build.add_argument("--screen-mad", type=float, default=None,
                       help="MAD outlier-screening threshold (off by default)")
    build.add_argument("--retry-budget", type=int, default=0,
                       help="re-measurements allowed per non-converged "
                            "experiment")
    build.add_argument("--fabric", default=None,
                       help="condition the build on a named multi-level "
                            "fabric (see repro.fabric.available_fabrics)")
    build.set_defaults(func=_cmd_artifact_build)
    verify = artifact_sub.add_parser(
        "verify", help="validate schema, content hash and codegen agreement"
    )
    verify.add_argument("path")
    verify.add_argument("--guidelines", action="store_true",
                        help="also verify performance-guideline invariants "
                             "across the full decision grid")
    verify.add_argument("--strict", action="store_true",
                        help="exit non-zero when --guidelines finds "
                             "violations")
    verify.add_argument("--slack", type=float, default=None,
                        help="relative slack before an inequality counts as "
                             "violated (default: 1e-6)")
    verify.set_defaults(func=_cmd_artifact_verify)
    diff = artifact_sub.add_parser(
        "diff",
        help="per-cell decision deltas between two artifact versions",
    )
    diff.add_argument("old", help="the older artifact JSON")
    diff.add_argument("new", help="the newer artifact JSON")
    diff.add_argument("--json", default=None,
                      help="also write the full diff as JSON")
    diff.set_defaults(func=_cmd_artifact_diff)

    chaos = sub.add_parser(
        "chaos",
        help="measure selection drift under injected faults",
        parents=[exec_flags],
    )
    chaos.add_argument("--cluster", required=True)
    chaos.add_argument("--operation", default="bcast",
                       help="collective to sweep (any registered calibration "
                            "pipeline; default: bcast)")
    chaos.add_argument("-P", "--procs", type=int, default=None,
                       help="communicator size (default: half the cluster)")
    chaos.add_argument("--severities", default="0,0.01,0.02,0.05,0.1",
                       help="comma-separated straggler severities")
    chaos.add_argument("--max-reps", type=int, default=6)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--screen-mad", type=float,
                       default=None,
                       help="MAD screening threshold (default: 3.5)")
    chaos.add_argument("--retry-budget", type=int, default=1)
    chaos.add_argument("--fabric", default=None,
                       help="run the sweep on a named multi-level fabric "
                            "(see repro.fabric.available_fabrics)")
    chaos.add_argument("--json", default=None,
                       help="also write the full drift report as JSON")
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve", help="run the online selection server"
    )
    serve.add_argument("--artifacts", required=True,
                       help="directory of artifact JSON files")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="LRU query-cache capacity")
    serve.add_argument("--workers", type=int, default=1,
                       help="SO_REUSEPORT worker processes sharing the "
                            "port (1 = single process, no supervisor)")
    serve.add_argument("--admin-port", type=int, default=None,
                       help="supervisor admin port for aggregated "
                            "/metrics (default: port + 1; only with "
                            "--workers > 1)")
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser(
        "cache", help="inspect or prune the persistent result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="size and hit statistics")
    cache_stats.add_argument("--cache-dir", default=None)
    cache_stats.set_defaults(func=_cmd_cache)
    cache_clear = cache_sub.add_parser("clear", help="drop every cached result")
    cache_clear.add_argument("--cache-dir", default=None)
    cache_clear.set_defaults(func=_cmd_cache)

    report = sub.add_parser(
        "report", help="render a calibration as a Markdown report"
    )
    report.add_argument("--calibration", required=True)
    report.add_argument("--output", default=None)
    report.set_defaults(func=_cmd_report)

    trace = sub.add_parser(
        "trace", help="run another repro-mpi command with span tracing on"
    )
    trace.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="trace output (*.jsonl = JSONL, anything else = Chrome trace "
             "JSON; default: trace.json)",
    )
    trace.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="the command to run, e.g. 'artifact build --cluster ...'",
    )
    trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        obs.enable()
    try:
        if hasattr(args, "jobs"):
            # Simulation-heavy command: install the process-wide runner.  The
            # persistent cache is on by default for the CLI (interactive use
            # benefits most from cross-invocation reuse); the library default
            # stays cache-less.
            exec_.configure(
                jobs=args.jobs,
                cache=not args.no_cache,
                cache_dir=args.cache_dir,
                batch=getattr(args, "batch", None),
            )
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if trace_out:
            recorder = obs.get_recorder()
            path = obs.save_trace(trace_out)
            count = len(recorder.finished())
            obs.disable()
            recorder.clear()
            print(f"trace: {count} spans written to {path}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
