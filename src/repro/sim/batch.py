"""Batched grid simulation: many independent cells, one engine pass.

Calibration sweeps and artifact builds execute thousands of *independent*
simulations — one per (P, m, algorithm, seed) grid cell — and each cell
pays the full generator-coroutine event-loop overhead (~90 Python function
calls per simulated message).  :class:`BatchSimulator` runs a whole grid in
one call and removes that overhead where it provably can:

* **Seed dedupe.**  A noise-free cell (``noise_sigma == 0`` and no enabled
  fault plan) is seed-independent: the seed only feeds the noise and fault
  models.  Cells differing solely in ``seed`` collapse to one simulation,
  and calibration prefetches ship every measurement twice (the adaptive
  loop's zero-variance convergence needs two identical repetitions) — a
  structural 2x.

* **Columnar kernels.**  For the collectives that dominate calibration
  (the generic-tree and linear broadcasts, the tree/linear reductions, the
  linear gather/scatter phases), the event loop is replaced by direct
  arithmetic on per-rank clocks and per-NIC ``free_at`` arrays — the exact
  recurrences the discrete-event engine executes, evaluated in dependency
  order without futures, heaps or coroutines.  Topology construction and
  placement are hoisted out of the per-cell loop and shared across message
  sizes (:class:`_Grid`).

* **Event-loop fallback.**  Anything the kernels cannot reproduce
  *bit-for-bit* — noise or fault models, degraded nodes, shared NIC ports,
  unsupported algorithms (split-binary, scatter-allgather, barriers), or a
  detected unsafe event-time tie — falls back to
  :func:`repro.exec.job.execute_job` for that cell.  The batch layer is
  therefore always exact: the fast path is taken only where equality with
  the event loop is guaranteed, and parity tests (``tests/test_sim_batch.py``)
  assert bit-identical results over the full calibration grid.

Exactness argument (why plain arithmetic can match an event loop):

1. Within one rank, simulated time only advances through ``timeout`` /
   future completions whose timestamps are pure float expressions of
   earlier timestamps — mirrored here verbatim (same operation order).
2. The only *shared* mutable state is the per-NIC ``free_at`` clock, and a
   NIC's reservations happen in the global order of ``transfer()`` calls.
   With one exclusive (node, port) per rank, each egress NIC is reserved in
   its owner's program order, and each ingress NIC's reservation order is
   derivable: a single statically-known sender stream (tree phases), or a
   sorted merge of sender call times (fan-in phases).
3. Where two transfer calls carry the same timestamp the event loop's
   ordering is an implementation detail of its heap; the kernels either
   prove the outcome permutation-invariant (equal arrive/drain feeding one
   ``waitall``) or refuse and fall back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.collectives.reduce import DEFAULT_OP_BYTE_TIME
from repro.mpi.segmentation import plan_segments
from repro.topology import (
    Tree,
    build_binary_tree,
    build_binomial_tree,
    build_chain_tree,
    build_in_order_binomial_tree,
)

__all__ = ["BatchSimulator", "BatchStats", "dedupe_key", "noise_free"]


class _Unsupported(Exception):
    """Internal: this cell cannot take the columnar path; fall back."""


def noise_free(spec: ClusterSpec) -> bool:
    """Whether a spec's simulations are seed-independent.

    True when the fabric noise is unit (``noise_sigma == 0``) and no fault
    plan is enabled — then the seed feeds nothing, so results for any two
    seeds are bit-identical and seed-deduplication is sound.
    """
    return spec.noise_sigma == 0.0 and (
        spec.faults is None or not spec.faults.enabled()
    )


def dedupe_key(job) -> str:
    """Collapsing key for grid cells that must produce the same float.

    A noise-free cell's result is seed-independent (the seed only feeds the
    noise and fault models), so seed repetitions of one measurement share a
    key; anything else falls back to the full job fingerprint.
    """
    if not noise_free(job.spec):
        return job.fingerprint()
    return "|".join(
        (
            "nf", job.spec.fingerprint(), job.kind, str(job.procs),
            job.algorithm, str(job.nbytes), str(job.segment_size),
            str(job.gather_bytes), str(job.calls), str(job.root),
            job.policy, job.mapping, repr(tuple(job.ranks)),
        )
    )


@dataclass
class BatchStats:
    """Counters of one :class:`BatchSimulator`'s activity."""

    #: Cells submitted / distinct cells after seed dedupe.
    cells: int = 0
    unique_cells: int = 0
    #: Cells resolved by the columnar kernels / by event-loop fallback.
    columnar: int = 0
    event_loop: int = 0
    #: Cells answered by another cell's result (seed dedupe).
    deduped: int = 0
    #: Reuses of a (spec, procs, mapping) placement across cells.
    shared_setup_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "cells": self.cells,
            "unique_cells": self.unique_cells,
            "columnar": self.columnar,
            "event_loop": self.event_loop,
            "deduped": self.deduped,
            "shared_setup_hits": self.shared_setup_hits,
        }


class _Grid:
    """Shared per-(spec, procs, mapping) setup, hoisted out of the cell loop.

    Holds the rank placement and the fabric constants; verified eligible for
    the columnar kernels at construction (raises :class:`_Unsupported`
    otherwise).  NIC clocks are *not* here — they are per-cell run state.
    """

    __slots__ = (
        "procs", "node", "latency", "bto", "bti", "pmo", "so", "ro",
        "eager", "cl", "slat", "sbt",
    )

    def __init__(self, spec: ClusterSpec, procs: int, mapping: str):
        if not noise_free(spec):
            raise _Unsupported("noisy or faulty spec")
        if spec.slow_nodes:
            raise _Unsupported("degraded nodes")
        if spec.fabric is not None and not spec.fabric.is_flat():
            # Uplink reservations interleave across cells in ways only the
            # event loop models; non-flat fabrics take the exact fallback.
            raise _Unsupported("multi-level fabric")
        net = spec.network
        if net.send_overhead <= 0.0:
            # Zero send overhead collapses distinct isend call times onto
            # one timestamp; the tie-safety proofs below need them distinct.
            raise _Unsupported("zero send_overhead")
        placement = spec.rank_to_node(procs, mapping=mapping)
        slots_seen: dict[int, int] = {}
        endpoints = set()
        for node in placement:
            slot = slots_seen.get(node, 0)
            slots_seen[node] = slot + 1
            endpoint = (node, slot % spec.nics_per_node)
            if endpoint in endpoints:
                # Two ranks sharing a NIC port interleave reservations in
                # ways only the event loop can order.
                raise _Unsupported("shared NIC port")
            endpoints.add(endpoint)
        self.procs = procs
        self.node = placement
        self.latency = net.latency
        self.bto = net.byte_time_out
        self.bti = net.byte_time_in
        self.pmo = net.per_message_overhead
        self.so = net.send_overhead
        self.ro = net.recv_overhead
        self.eager = net.eager_limit
        self.cl = net.control_latency
        self.slat = net.shm_latency
        self.sbt = net.shm_byte_time


class _Cell:
    """Mutable per-cell run state: rank clocks plus per-rank NIC clocks.

    ``eg``/``ig`` are each rank's exclusive egress/ingress ``free_at``
    clocks (exclusivity checked by :class:`_Grid`); ``eg_call``/``ig_call``
    record the last transfer-call time seen per NIC, guarding that every
    reservation happens in global call order — a violated guard means the
    kernel mis-derived the order and must fall back, not guess.
    """

    __slots__ = ("g", "eg", "ig", "eg_call", "ig_call")

    def __init__(self, grid: _Grid):
        self.g = grid
        procs = grid.procs
        self.eg = [0.0] * procs
        self.ig = [0.0] * procs
        self.eg_call = [0.0] * procs
        self.ig_call = [0.0] * procs

    # -- primitive transfers ------------------------------------------------

    def send_eager(self, src: int, dst: int, nbytes: int, t: float):
        """Eager transfer called at ``t``; returns ``(inject_end, deliver)``.

        Reserves both NICs immediately — valid only where ``t`` respects
        each NIC's global call order (guarded).
        """
        g = self.g
        if g.node[src] == g.node[dst]:
            inject_end = t + nbytes * g.sbt
            return inject_end, inject_end + g.slat
        inject_end = self._reserve_egress(src, t, nbytes)
        return inject_end, self._reserve_ingress(dst, t, inject_end + g.latency,
                                                 nbytes * g.bti)

    def _reserve_egress(self, src: int, t: float, nbytes: int) -> float:
        if t < self.eg_call[src]:
            raise _Unsupported("egress call order violated")
        self.eg_call[src] = t
        cost = self.g.pmo + nbytes * self.g.bto
        free = self.eg[src]
        start = t if t > free else free
        end = start + cost
        self.eg[src] = end
        return end

    def _reserve_ingress(
        self, dst: int, t: float, arrive: float, drain: float
    ) -> float:
        if t < self.ig_call[dst]:
            raise _Unsupported("ingress call order violated")
        self.ig_call[dst] = t
        free = self.ig[dst]
        start = arrive if arrive > free else free
        deliver = start + drain
        self.ig[dst] = deliver
        return deliver

    def control(self, src: int, dst: int, t: float) -> float:
        """Delivery time of an RTS/CTS control message sent at ``t``."""
        g = self.g
        return t + (g.slat if g.node[src] == g.node[dst] else g.cl)

    # -- fan-out: one sender, many receivers --------------------------------

    def fan_out(
        self,
        src: int,
        targets: list[int],
        nbytes: int,
        clock: float,
        post_of,
        ties_ok: bool,
    ):
        """``isend`` of ``nbytes`` to each target, in order, from ``clock``.

        Mirrors the root loop of the linear broadcast / scatter / generic
        tree segment: each ``isend`` charges ``send_overhead`` to the
        sender, then starts an eager or rendezvous transfer.  ``post_of``
        maps a target to its (statically known) receive-post time — needed
        for the rendezvous match.  Returns ``(clock_after_isends,
        {target: (inject_end, deliver)})``.

        ``ties_ok`` admits equal rendezvous payload-call times contending
        for the sender's egress: safe only when the tied targets' downstream
        behaviour is a pure function of their deliver time within one
        enclosing ``waitall`` (linear broadcast, scatter) — the inject-end
        and deliver *multisets* are permutation-invariant, so root-timed and
        max-over-ranks results are unchanged.  Tree fan-outs pass ``False``
        (children have distinct subtrees) and rely on strictly increasing
        call times instead.
        """
        g = self.g
        eager = nbytes <= g.eager
        pending: list[tuple[float, int]] = []
        out: dict[int, tuple[float, float]] = {}
        for dst in targets:
            clock = clock + g.so
            if eager:
                # Eager transfer calls happen at the isend times, strictly
                # increasing: reserve in program order.
                out[dst] = self.send_eager(src, dst, nbytes, clock)
                continue
            # Rendezvous: RTS out now; payload moves at CTS arrival.
            rts = self.control(src, dst, clock)
            post = post_of(dst)
            match = rts if rts > post else post
            cts = self.control(dst, src, match)
            if g.node[src] == g.node[dst]:
                inject_end = cts + nbytes * g.sbt
                out[dst] = (inject_end, inject_end + g.slat)
            else:
                pending.append((cts, dst))
        if pending:
            pending.sort(key=lambda e: e[0])
            if not ties_ok:
                for (a, _), (b, _) in zip(pending, pending[1:]):
                    if a == b:
                        raise _Unsupported("tied rendezvous fan-out")
            for cts, dst in pending:
                inject_end = self._reserve_egress(src, cts, nbytes)
                deliver = self._reserve_ingress(
                    dst, cts, inject_end + g.latency, nbytes * g.bti
                )
                out[dst] = (inject_end, deliver)
        return clock, out

    # -- fan-in: many senders, one receiver ---------------------------------

    def fan_in(self, dst: int, events: list) -> dict:
        """Serialise inter-node arrivals on ``dst``'s ingress NIC.

        ``events`` are ``(call_t, arrive, drain, group, key)`` tuples whose
        egress half is already reserved (``arrive`` is final).  Reservation
        order is ascending transfer-call time; a tie is permutation-safe —
        and therefore allowed — only when the tied messages are
        indistinguishable to the receiver: identical ``(arrive, drain)``
        and the same ``group`` (one ``waitall``), making the deliver
        multiset and its max invariant.  Returns ``{key: deliver}``.
        """
        events = sorted(events, key=lambda e: e[0])
        index = 0
        while index + 1 < len(events):
            a, b = events[index], events[index + 1]
            if a[0] == b[0] and (a[1] != b[1] or a[2] != b[2] or a[3] != b[3]):
                raise _Unsupported("unsafe ingress tie")
            index += 1
        out = {}
        for call_t, arrive, drain, _group, key in events:
            out[key] = self._reserve_ingress(dst, call_t, arrive, drain)
        return out


def _bfs_order(tree: Tree, procs: int) -> list[int]:
    order = [tree.root]
    frontier = [tree.root]
    while frontier:
        nxt: list[int] = []
        for rank in frontier:
            nxt.extend(tree.children[rank])
        order.extend(nxt)
        frontier = nxt
    if len(order) != procs:
        raise _Unsupported("tree does not span the communicator")
    return order


# -- broadcast kernels --------------------------------------------------------


def _bcast_linear(cell: _Cell, root: int, nbytes: int) -> list[float]:
    """Per-rank finish clocks of the linear broadcast (never segmented)."""
    g = cell.g
    finish = [0.0] * g.procs
    if g.procs == 1 or nbytes == 0:
        return finish
    peers = [p for p in range(g.procs) if p != root]
    # Every peer's sole action is one recv posted at time zero.
    clock, sends = cell.fan_out(
        root, peers, nbytes, 0.0, post_of=lambda _p: 0.0, ties_ok=True
    )
    eager = nbytes <= g.eager
    for peer in peers:
        inject_end, deliver = sends[peer]
        # Eager: match = max(deliver, post=0) = deliver; rendezvous
        # completes at deliver regardless of post.
        finish[peer] = deliver + g.ro
        if inject_end > clock:
            clock = inject_end
    del eager
    finish[root] = clock
    return finish


_BCAST_TREES = {
    "chain": lambda procs, root: build_chain_tree(procs, root, 1),
    "k_chain": lambda procs, root: build_chain_tree(procs, root, 4),
    "binary": build_binary_tree,
    "binomial": build_binomial_tree,
}


def _bcast_tree(
    cell: _Cell, tree: Tree, nbytes: int, segment_size: int
) -> list[float]:
    """Per-rank finish clocks of the generic pipelined tree broadcast."""
    g = cell.g
    finish = [0.0] * g.procs
    plan = plan_segments(nbytes, segment_size)
    segments = plan.num_segments
    if segments == 0:
        return finish
    sizes = plan.sizes
    if segments > 1 and any(size > g.eager for size in sizes):
        # Multi-segment rendezvous couples receiver post times back into
        # sender timelines mid-pipeline; only the event loop orders that.
        raise _Unsupported("segmented rendezvous pipeline")
    # arrivals[rank][i]: deliver time of segment i from the parent, filled
    # during the parent's walk (BFS order ensures it precedes the child's).
    arrivals: list[list[float]] = [[] for _ in range(g.procs)]

    def forward(rank: int, clock: float, children, size: int) -> float:
        """isend ``size`` to every child, then waitall; returns the clock."""
        # Single-segment rendezvous is admitted because every non-root rank
        # posts its first receive at its local time zero (leaves and
        # interiors alike start with the segment-0 irecv).
        clock, sends = cell.fan_out(
            rank, list(children), size, clock, post_of=lambda _c: 0.0,
            ties_ok=False,
        )
        for child in children:
            inject_end, deliver = sends[child]
            arrivals[child].append(deliver)
            if inject_end > clock:
                clock = inject_end
        return clock

    rendezvous = sizes[0] > g.eager

    def recv_done(rank: int, index: int, post: float) -> float:
        deliver = arrivals[rank][index]
        if rendezvous:
            return deliver + g.ro
        match = deliver if deliver > post else post
        return match + g.ro

    for rank in _bfs_order(tree, g.procs):
        children = tree.children[rank]
        if rank == tree.root:
            clock = 0.0
            for size in sizes:
                clock = forward(rank, clock, children, size)
            finish[rank] = clock
            continue
        # Non-root: double-buffered receive (and forward, if interior).
        clock = 0.0
        posts = [0.0] * segments
        for index in range(1, segments):
            posts[index] = clock
            done = recv_done(rank, index - 1, posts[index - 1])
            if done > clock:
                clock = done
            if children:
                clock = forward(rank, clock, children, sizes[index - 1])
        done = recv_done(rank, segments - 1, posts[segments - 1])
        if done > clock:
            clock = done
        if children:
            clock = forward(rank, clock, children, sizes[segments - 1])
        finish[rank] = clock
    return finish


def _bcast_finishes(
    cell: _Cell, algorithm: str, root: int, nbytes: int, segment_size: int
) -> list[float]:
    if algorithm == "linear":
        return _bcast_linear(cell, root, nbytes)
    builder = _BCAST_TREES.get(algorithm)
    if builder is None:
        raise _Unsupported(f"bcast algorithm {algorithm!r}")
    if cell.g.procs == 1 or nbytes == 0:
        return [0.0] * cell.g.procs
    return _bcast_tree(cell, builder(cell.g.procs, root), nbytes, segment_size)


# -- gather / scatter phases --------------------------------------------------


def _gather_linear(
    cell: _Cell, root: int, nbytes: int, finish: list[float]
) -> list[float]:
    """Linear gather appended to per-rank clocks ``finish`` (mutated)."""
    g = cell.g
    if g.procs == 1:
        return finish
    peers = [p for p in range(g.procs) if p != root]
    # The root posts every receive, in peer order, at its current clock.
    root_post = finish[root]
    eager = nbytes <= g.eager
    events = []
    completes = []
    for peer in peers:
        clock = finish[peer] + g.so
        if eager:
            call_t = clock
        else:
            rts = cell.control(peer, root, clock)
            match = rts if rts > root_post else root_post
            call_t = cell.control(root, peer, match)
        if g.node[peer] == g.node[root]:
            inject_end = call_t + nbytes * g.sbt
            deliver = inject_end + g.slat
            if eager:
                match = deliver if deliver > root_post else root_post
                completes.append(match + g.ro)
            else:
                completes.append(deliver + g.ro)
        else:
            inject_end = cell._reserve_egress(peer, call_t, nbytes)
            events.append(
                (call_t, inject_end + g.latency, nbytes * g.bti, 0, peer)
            )
        finish[peer] = clock if inject_end < clock else inject_end
    delivers = cell.fan_in(root, events)
    for _call_t, _arrive, _drain, _group, peer in events:
        deliver = delivers[peer]
        if eager:
            match = deliver if deliver > root_post else root_post
            completes.append(match + g.ro)
        else:
            completes.append(deliver + g.ro)
    clock = root_post
    for done in completes:
        if done > clock:
            clock = done
    finish[root] = clock
    return finish


def _scatter_linear(
    cell: _Cell, root: int, nbytes: int, finish: list[float]
) -> list[float]:
    """Linear scatter appended to per-rank clocks ``finish`` (mutated)."""
    g = cell.g
    if g.procs == 1:
        return finish
    peers = [p for p in range(g.procs) if p != root]
    # Each peer's receive is posted at its current clock (known statically:
    # the scatter is the peer's first action after its reduce-phase finish).
    clock, sends = cell.fan_out(
        root, peers, nbytes, finish[root],
        post_of=lambda peer: finish[peer], ties_ok=True,
    )
    eager = nbytes <= g.eager
    for peer in peers:
        inject_end, deliver = sends[peer]
        if eager:
            post = finish[peer]
            match = deliver if deliver > post else post
            finish[peer] = match + g.ro
        else:
            finish[peer] = deliver + g.ro
        if inject_end > clock:
            clock = inject_end
    finish[root] = clock
    return finish


# -- reduce kernels -----------------------------------------------------------


_REDUCE_TREES = {
    "chain": lambda procs, root: build_chain_tree(procs, root, 1),
    "binary": build_binary_tree,
    "binomial": build_binomial_tree,
    "in_order_binomial": build_in_order_binomial_tree,
}


def _reduce_linear(cell: _Cell, root: int, nbytes: int) -> list[float]:
    """Per-rank finish clocks of the linear (direct) reduce."""
    g = cell.g
    finish = [0.0] * g.procs
    if g.procs == 1 or nbytes == 0:
        return finish
    eager = nbytes <= g.eager
    events = []
    completes = []
    for peer in range(g.procs):
        if peer == root:
            continue
        clock = 0.0 + g.so
        if eager:
            call_t = clock
        else:
            # The root posts every receive at time zero, before any RTS.
            rts = cell.control(peer, root, clock)
            call_t = cell.control(root, peer, rts)
        if g.node[peer] == g.node[root]:
            inject_end = call_t + nbytes * g.sbt
            deliver = inject_end + g.slat
            completes.append(deliver + g.ro)
        else:
            inject_end = cell._reserve_egress(peer, call_t, nbytes)
            events.append(
                (call_t, inject_end + g.latency, nbytes * g.bti, 0, peer)
            )
        finish[peer] = clock if inject_end < clock else inject_end
    delivers = cell.fan_in(root, events)
    for _call_t, _arrive, _drain, _group, peer in events:
        # Posted at 0: eager match = deliver; rendezvous completes at
        # deliver as well — identical expression either way.
        completes.append(delivers[peer] + g.ro)
    clock = 0.0
    for done in completes:
        if done > clock:
            clock = done
    compute = (g.procs - 1) * nbytes * DEFAULT_OP_BYTE_TIME
    if compute > 0:
        clock = clock + compute
    finish[root] = clock
    return finish


def _reduce_tree(
    cell: _Cell, tree: Tree, nbytes: int, segment_size: int
) -> list[float]:
    """Per-rank finish clocks of the generic pipelined tree reduce."""
    g = cell.g
    finish = [0.0] * g.procs
    plan = plan_segments(nbytes, segment_size)
    segments = plan.num_segments
    if segments == 0:
        return finish
    sizes = plan.sizes
    if segments > 1 and any(size > g.eager for size in sizes):
        raise _Unsupported("segmented rendezvous pipeline")
    rendezvous = sizes[0] > g.eager
    # inbox[parent]: (call_t, arrive, drain, segment, (child, segment))
    # events plus intra-node delivers, filled by children (walked first).
    inbox: list[list] = [[] for _ in range(g.procs)]
    intra: list[dict] = [{} for _ in range(g.procs)]

    order = _bfs_order(tree, g.procs)
    for rank in reversed(order):
        children = tree.children[rank]
        parent = tree.parent[rank]
        delivers = cell.fan_in(rank, inbox[rank]) if children else {}
        delivers.update(intra[rank])
        clock = 0.0
        for index, size in enumerate(sizes):
            if children:
                post = clock
                for child in children:
                    deliver = delivers[(child, index)]
                    if not rendezvous:
                        deliver = deliver if deliver > post else post
                    done = deliver + g.ro
                    if done > clock:
                        clock = done
                compute = len(children) * size * DEFAULT_OP_BYTE_TIME
                if compute > 0:
                    clock = clock + compute
            if rank != tree.root:
                clock = clock + g.so
                if rendezvous:
                    # Single segment only (guarded above): the parent posts
                    # all its receives at its local time zero.
                    rts = cell.control(rank, parent, clock)
                    call_t = cell.control(parent, rank, rts)
                else:
                    call_t = clock
                if g.node[rank] == g.node[parent]:
                    inject_end = call_t + size * g.sbt
                    intra[parent][(rank, index)] = inject_end + g.slat
                else:
                    inject_end = cell._reserve_egress(rank, call_t, size)
                    inbox[parent].append(
                        (call_t, inject_end + g.latency, size * g.bti,
                         index, (rank, index))
                    )
                if inject_end > clock:
                    clock = inject_end
        finish[rank] = clock
    return finish


def _reduce_finishes(
    cell: _Cell, algorithm: str, root: int, nbytes: int, segment_size: int
) -> list[float]:
    if algorithm == "linear":
        return _reduce_linear(cell, root, nbytes)
    builder = _REDUCE_TREES.get(algorithm)
    if builder is None:
        raise _Unsupported(f"reduce algorithm {algorithm!r}")
    if cell.g.procs == 1 or nbytes == 0:
        return [0.0] * cell.g.procs
    return _reduce_tree(cell, builder(cell.g.procs, root), nbytes, segment_size)


# -- the batch front end ------------------------------------------------------


class BatchSimulator:
    """Runs a grid of :class:`~repro.exec.job.SimJob` cells in one pass.

    Bit-for-bit identical to per-cell :func:`~repro.exec.job.execute_job`
    on every input: the columnar kernels only claim cells they reproduce
    exactly, everything else falls back to the event loop, and noise-free
    seed variants of one cell share a single simulation.
    """

    def __init__(self) -> None:
        self.stats = BatchStats()
        self._grids: dict[tuple, _Grid | None] = {}

    def _grid_for(self, job) -> _Grid:
        # ``execute_job`` forwards ``job.mapping`` only for the plain
        # broadcast; the composite/gather/reduce measurements use
        # ``measure``'s default block mapping — mirror that exactly.
        mapping = job.mapping if job.kind == "bcast" else "block"
        key = (job.spec.fingerprint(), job.procs, mapping)
        grid = self._grids.get(key, False)
        if grid is False:
            try:
                grid = _Grid(job.spec, job.procs, mapping)
            except _Unsupported:
                grid = None
            self._grids[key] = grid
        else:
            self.stats.shared_setup_hits += 1
        if grid is None:
            raise _Unsupported("ineligible platform")
        return grid

    # -- columnar dispatch --------------------------------------------------

    def _columnar(self, job) -> float | None:
        """The cell's result via the columnar kernels, or None."""
        try:
            grid = self._grid_for(job)
            cell = _Cell(grid)
            if job.kind == "bcast":
                finish = _bcast_finishes(
                    cell, job.algorithm, job.root, job.nbytes, job.segment_size
                )
            elif job.kind == "bcast_then_gather":
                finish = _bcast_finishes(
                    cell, job.algorithm, job.root, job.nbytes, job.segment_size
                )
                finish = _gather_linear(cell, job.root, job.gather_bytes, finish)
            elif job.kind == "gather":
                if job.algorithm != "linear":
                    raise _Unsupported("non-linear gather")
                finish = _gather_linear(
                    cell, job.root, job.nbytes, [0.0] * grid.procs
                )
            elif job.kind == "reduce":
                finish = _reduce_finishes(
                    cell, job.algorithm, job.root, job.nbytes, job.segment_size
                )
            elif job.kind == "reduce_then_scatter":
                finish = _reduce_finishes(
                    cell, job.algorithm, job.root, job.nbytes, job.segment_size
                )
                finish = _scatter_linear(
                    cell, job.root, job.gather_bytes, finish
                )
            else:
                raise _Unsupported(f"kind {job.kind!r}")
        except _Unsupported:
            return None
        # The composite experiments hardcode root timing in ``measure``
        # (their programs end on the root); ``job.policy`` only reaches the
        # simple-collective measurements.
        policy = (
            "root"
            if job.kind in ("bcast_then_gather", "reduce_then_scatter")
            else job.policy
        )
        if policy == "root":
            return finish[job.root]
        if policy == "global":
            return max(finish)
        return None

    # -- execution ----------------------------------------------------------

    def run(self, jobs) -> list[float]:
        """Results of ``jobs``, in order — one grid, one pass."""
        from repro.exec.job import execute_job

        jobs = list(jobs)
        with obs.span("sim.batch", cells=len(jobs)) as span:
            groups: dict[str, list[int]] = {}
            for index, job in enumerate(jobs):
                groups.setdefault(dedupe_key(job), []).append(index)
            self.stats.cells += len(jobs)
            self.stats.unique_cells += len(groups)
            self.stats.deduped += len(jobs) - len(groups)
            results: list[float] = [0.0] * len(jobs)
            for indices in groups.values():
                job = jobs[indices[0]]
                value = self._columnar(job)
                if value is None:
                    self.stats.event_loop += 1
                    value = execute_job(job)
                else:
                    self.stats.columnar += 1
                for index in indices:
                    results[index] = value
            span.set_attrs(
                unique_cells=self.stats.unique_cells,
                columnar=self.stats.columnar,
                event_loop=self.stats.event_loop,
                shared_setup_hits=self.stats.shared_setup_hits,
            )
        return results
