"""Calibration of the barrier models (extension).

Barriers carry no payload, so the two-parameter canonical system of §4.2
degenerates: every equation has ``c_β = 0`` and only α is identifiable.
The in-context experiment is the barrier itself, timed on the root, run at
several communicator sizes (the x-axis that varies here is ``P``, not
``m``); α comes from the least-squares line through the origin,

    α = Σ c_i·T_i / Σ c_i²,

which is the maximum-likelihood estimate under i.i.d. noise for the model
``T_i = c_i·α``.

All measurements route through the execution subsystem: the whole
experiment schedule is prefetched as one parallel batch and the adaptive
loops replay from the runner's memo, so a warm persistent cache rebuilds
the calibration with zero simulations.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.alphabeta import RETRY_SEED_STRIDE, FitQuality
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.estimation.workflow import PlatformModel
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.measure import time_barrier  # noqa: F401
from repro.models.barrier_models import DERIVED_BARRIER_MODELS
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams

__all__ = [
    "time_barrier",
    "barrier_prefetch_jobs",
    "estimate_barrier_alpha",
    "calibrate_barrier",
    "calibrate_barrier_with_quality",
]


def _check_proc_counts(spec: ClusterSpec, proc_counts: Sequence[int]) -> None:
    if len(proc_counts) < 1:
        raise EstimationError("need at least one communicator size")
    for procs in proc_counts:
        if not 2 <= procs <= spec.max_procs:
            raise EstimationError(f"{spec.name}: invalid procs {procs}")


def barrier_prefetch_jobs(
    spec: ClusterSpec,
    algorithm: str,
    *,
    proc_counts: Sequence[int],
    seed: int = 0,
    reps: int = 2,
) -> list[SimJob]:
    """The first ``reps`` repetitions of one barrier algorithm's sweep.

    Enumerates exactly the seeds :func:`estimate_barrier_alpha`'s adaptive
    loop will request, so prefetching these makes the loop replay from the
    runner's memo.
    """
    batch: list[SimJob] = []
    for index, procs in enumerate(proc_counts):
        base = seed + 53_777 * (index + 1)
        for rep in range(reps):
            batch.append(
                SimJob(
                    spec=spec,
                    kind="barrier",
                    procs=procs,
                    algorithm=algorithm,
                    seed=base + 7919 * rep,
                )
            )
    return batch


def _estimate_barrier(
    spec: ClusterSpec,
    algorithm: str,
    *,
    proc_counts: Sequence[int],
    precision: float,
    max_reps: int,
    seed: int,
    runner: ParallelRunner,
    retry_budget: int = 0,
) -> tuple[HockneyParams, dict[int, SampleStats], FitQuality]:
    """The α fit plus quality diagnostics (shared implementation)."""
    if len(proc_counts) < 1:
        raise EstimationError("need at least one communicator size")
    model = DERIVED_BARRIER_MODELS[algorithm](GammaFunction.ideal())
    with obs.span(
        "estimate.alphabeta",
        operation="barrier",
        algorithm=algorithm,
        cluster=spec.name,
        sizes=len(proc_counts),
    ) as ab_span:
        memo_before = runner.stats.memo_hits
        sims_before = runner.stats.simulations
        counts: list[float] = []
        stats: dict[int, SampleStats] = {}
        retried = 0
        numerator = 0.0
        denominator = 0.0
        for index, procs in enumerate(proc_counts):
            if not 2 <= procs <= spec.max_procs:
                raise EstimationError(f"{spec.name}: invalid procs {procs}")
            count = model.coefficients(procs).c_alpha
            if count <= 0:
                raise EstimationError(f"{algorithm}: zero message count at P={procs}")

            def measure_once(rep_seed: int, procs: int = procs) -> float:
                return runner.run_one(
                    SimJob(
                        spec=spec,
                        kind="barrier",
                        procs=procs,
                        algorithm=algorithm,
                        seed=rep_seed,
                    )
                )

            base_seed = seed + 53_777 * (index + 1)
            sample = adaptive_measure(
                measure_once,
                precision=precision,
                max_reps=max_reps,
                seed=base_seed,
            )
            attempt = 0
            while not sample.converged and attempt < retry_budget:
                attempt += 1
                retried += 1
                candidate = adaptive_measure(
                    measure_once,
                    precision=precision,
                    max_reps=max_reps,
                    seed=base_seed + RETRY_SEED_STRIDE * attempt,
                )
                if candidate.relative_precision < sample.relative_precision:
                    sample = candidate
            counts.append(count)
            stats[procs] = sample
            numerator += count * sample.mean
            denominator += count * count
        alpha = numerator / denominator

        samples = list(stats.values())
        residuals = [
            abs(s.mean - c * alpha) for c, s in zip(counts, samples)
        ]
        mean_abs_t = sum(abs(s.mean) for s in samples) / len(samples)
        quality = FitQuality(
            points=len(samples),
            screened=0,
            fitted=len(samples),
            max_abs_residual=float(max(residuals)),
            relative_residual=float(
                max(residuals) / mean_abs_t if mean_abs_t > 0 else 0.0
            ),
            converged=sum(1 for s in samples if s.converged),
            retried=retried,
            mean_relative_precision=float(
                sum(s.relative_precision for s in samples) / len(samples)
            ),
        )
        ab_span.set_attrs(
            memo_hits=runner.stats.memo_hits - memo_before,
            simulations=runner.stats.simulations - sims_before,
            retried=retried,
        )
        return HockneyParams(alpha=alpha, beta=0.0), stats, quality


def estimate_barrier_alpha(
    spec: ClusterSpec,
    algorithm: str,
    *,
    proc_counts: Sequence[int],
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    prefetch: bool = True,
    retry_budget: int = 0,
) -> tuple[HockneyParams, dict[int, SampleStats]]:
    """Fit the per-algorithm α from barriers at several sizes."""
    _check_proc_counts(spec, proc_counts)
    runner = runner if runner is not None else default_runner()
    if prefetch:
        runner.prefetch(
            barrier_prefetch_jobs(
                spec, algorithm, proc_counts=proc_counts, seed=seed
            )
        )
    params, stats, _quality = _estimate_barrier(
        spec,
        algorithm,
        proc_counts=proc_counts,
        precision=precision,
        max_reps=max_reps,
        seed=seed,
        runner=runner,
        retry_budget=retry_budget,
    )
    return params, stats


def default_barrier_proc_counts(spec: ClusterSpec) -> list[int]:
    """The default communicator-size sweep for barrier calibration."""
    top = spec.max_procs
    return sorted({max(2, top // 8), max(2, top // 3), max(2, top // 2)})


def calibrate_barrier_with_quality(
    spec: ClusterSpec,
    *,
    proc_counts: Sequence[int] | None = None,
    algorithms: Sequence[str] | None = None,
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    retry_budget: int = 0,
) -> tuple[PlatformModel, dict[str, FitQuality]]:
    """Barrier calibration returning per-algorithm fit diagnostics.

    The whole schedule (every algorithm × every communicator size) is
    prefetched as one batch, so a parallel runner simulates concurrently
    and a warm cache replays with zero simulations.
    """
    if proc_counts is None:
        proc_counts = default_barrier_proc_counts(spec)
    _check_proc_counts(spec, proc_counts)
    if algorithms is None:
        algorithms = sorted(DERIVED_BARRIER_MODELS)
    with obs.span(
        "calibrate.platform",
        cluster=spec.name,
        estimation="collective",
        model_family="barrier_derived",
        algorithms=",".join(algorithms),
    ):
        runner = runner if runner is not None else default_runner()
        batch: list[SimJob] = []
        for index, name in enumerate(algorithms):
            batch += barrier_prefetch_jobs(
                spec,
                name,
                proc_counts=proc_counts,
                seed=seed + 7_103 * (index + 1),
            )
        with obs.span(
            "calibrate.prefetch", jobs=len(batch), batched=runner.batch
        ):
            runner.prefetch(batch)

        parameters: dict[str, HockneyParams] = {}
        quality: dict[str, FitQuality] = {}
        for index, name in enumerate(algorithms):
            params, _stats, fit_quality = _estimate_barrier(
                spec,
                name,
                proc_counts=proc_counts,
                precision=precision,
                max_reps=max_reps,
                seed=seed + 7_103 * (index + 1),
                runner=runner,
                retry_budget=retry_budget,
            )
            parameters[name] = params
            quality[name] = fit_quality
        platform = PlatformModel(
            cluster=spec.name,
            segment_size=0,
            gamma=GammaFunction.ideal(),
            parameters=parameters,
            model_family="barrier_derived",
        )
        return platform, quality


def calibrate_barrier(
    spec: ClusterSpec,
    *,
    proc_counts: Sequence[int] | None = None,
    algorithms: Sequence[str] | None = None,
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
) -> PlatformModel:
    """Calibrate every barrier algorithm; returns a selectable platform."""
    platform, _quality = calibrate_barrier_with_quality(
        spec,
        proc_counts=proc_counts,
        algorithms=algorithms,
        precision=precision,
        max_reps=max_reps,
        seed=seed,
        runner=runner,
    )
    return platform
