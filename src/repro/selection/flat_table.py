"""Flat-array decision tables for the serving hot path.

A :class:`~repro.selection.decision_table.DecisionTable` stores a grid of
:class:`Selection` dataclasses behind tuple-of-tuples indirection — the
right shape for building, auditing and serialising, but each lookup pays
attribute walks and object indirection per query.  The serving layer
answers hundreds of thousands of queries a second, most of them batched,
so it wants the paper's "straight-line decision function" idea taken one
step further: the whole grid compiled once into four flat parallel
arrays —

* ``proc_points`` / ``size_points`` — the sorted grid axes, for bisect;
* ``algorithm_ids`` — one small int per cell, row-major, indexing
  ``algorithms`` (the deduplicated name list);
* ``segment_sizes`` — one int per cell, row-major.

A lookup is then two ``bisect_right`` calls and two list indexes — no
dict walks, no dataclass attribute access, no per-query allocation.
:meth:`FlatDecisionTable.lookup` is bit-identical to
:meth:`DecisionTable.lookup` (same floor semantics, same below-grid
clamp flag); ``tests/test_flat_table.py`` holds the differential
property test across all eight collectives.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import SelectionError
from repro.selection.decision_table import DecisionTable


class FlatDecisionTable:
    """A decision grid compiled to flat parallel arrays.

    Attributes are public and immutable by convention — the serving layer
    reads them directly (inlining the bisect into its own hot loop) and
    must never mutate them.
    """

    __slots__ = (
        "operation",
        "proc_points",
        "size_points",
        "algorithms",
        "algorithm_ids",
        "segment_sizes",
        "n_sizes",
        "min_procs",
        "min_size",
    )

    def __init__(
        self,
        operation: str,
        proc_points: tuple[int, ...],
        size_points: tuple[int, ...],
        algorithms: tuple[str, ...],
        algorithm_ids: tuple[int, ...],
        segment_sizes: tuple[int, ...],
    ):
        cells = len(proc_points) * len(size_points)
        if not proc_points or not size_points:
            raise SelectionError("flat table needs a non-empty grid")
        if len(algorithm_ids) != cells or len(segment_sizes) != cells:
            raise SelectionError(
                f"flat table arrays have {len(algorithm_ids)}/"
                f"{len(segment_sizes)} cells, grid has {cells}"
            )
        if algorithm_ids and not (
            0 <= min(algorithm_ids) and max(algorithm_ids) < len(algorithms)
        ):
            raise SelectionError("algorithm_ids index outside algorithms")
        self.operation = operation
        self.proc_points = proc_points
        self.size_points = size_points
        self.algorithms = algorithms
        self.algorithm_ids = algorithm_ids
        self.segment_sizes = segment_sizes
        self.n_sizes = len(size_points)
        self.min_procs = proc_points[0]
        self.min_size = size_points[0]

    @classmethod
    def from_table(
        cls, table: DecisionTable, operation: str = "bcast"
    ) -> "FlatDecisionTable":
        """Compile a :class:`DecisionTable` grid into flat arrays."""
        algorithms: list[str] = []
        index: dict[str, int] = {}
        ids: list[int] = []
        segments: list[int] = []
        for row in table.choices:
            for selection in row:
                algorithm_id = index.get(selection.algorithm)
                if algorithm_id is None:
                    algorithm_id = index[selection.algorithm] = len(algorithms)
                    algorithms.append(selection.algorithm)
                ids.append(algorithm_id)
                segments.append(selection.segment_size)
        return cls(
            operation=operation,
            proc_points=tuple(table.proc_points),
            size_points=tuple(table.size_points),
            algorithms=tuple(algorithms),
            algorithm_ids=tuple(ids),
            segment_sizes=tuple(segments),
        )

    def cell_index(self, procs: int, nbytes: int) -> int:
        """Row-major index of the floor cell for ``(procs, nbytes)``."""
        i = bisect_right(self.proc_points, procs) - 1
        if i < 0:
            i = 0
        j = bisect_right(self.size_points, nbytes) - 1
        if j < 0:
            j = 0
        return i * self.n_sizes + j

    def lookup(self, procs: int, nbytes: int) -> tuple[str, int, bool]:
        """``(algorithm, segment_size, clamped)`` — the flat counterpart
        of :meth:`DecisionTable.lookup`, bit-identical by construction
        and by the differential test."""
        k = self.cell_index(procs, nbytes)
        return (
            self.algorithms[self.algorithm_ids[k]],
            self.segment_sizes[k],
            procs < self.min_procs or nbytes < self.min_size,
        )

    def lookup_many(
        self, queries: "list[tuple[int, int]]"
    ) -> "list[tuple[str, int, bool]]":
        """Answer a batch of ``(procs, nbytes)`` pairs in one pass."""
        cell_index = self.cell_index
        algorithms = self.algorithms
        ids = self.algorithm_ids
        segments = self.segment_sizes
        min_procs = self.min_procs
        min_size = self.min_size
        out = []
        append = out.append
        for procs, nbytes in queries:
            k = cell_index(procs, nbytes)
            append((
                algorithms[ids[k]],
                segments[k],
                procs < min_procs or nbytes < min_size,
            ))
        return out
