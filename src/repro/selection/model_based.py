"""The paper's model-based runtime selector (§5.3).

Given a calibrated :class:`~repro.estimation.workflow.PlatformModel`, the
selector evaluates every algorithm's analytical model at the requested
``(P, m)`` and returns the argmin.  The evaluation is a handful of
floating-point operations per algorithm — this is the efficiency claim of
the paper, benchmarked in ``benchmarks/test_decision_overhead.py``.
"""

from __future__ import annotations

from repro.errors import SelectionError
from repro.estimation.workflow import PlatformModel
from repro.selection.oracle import Selection


class ModelBasedSelector:
    """Selects the algorithm whose model predicts the lowest time."""

    def __init__(self, platform: PlatformModel):
        if not platform.parameters:
            raise SelectionError("platform model has no calibrated algorithms")
        self.platform = platform

    def predictions(self, procs: int, nbytes: int) -> dict[str, float]:
        """Model-predicted times of all calibrated algorithms."""
        return self.platform.predict_all(procs, nbytes)

    def select(self, procs: int, nbytes: int) -> Selection:
        """The model-optimal algorithm for ``(procs, nbytes)``.

        The segment size is the platform's calibrated segment size (the
        paper fixes 8 KB; choosing the optimal segment size is explicitly
        out of its scope).
        """
        choice, _predicted = self.select_with_prediction(procs, nbytes)
        return choice

    def select_with_prediction(
        self, procs: int, nbytes: int
    ) -> tuple[Selection, float]:
        """The selection plus its predicted execution time."""
        predicted = self.predictions(procs, nbytes)
        winner = min(predicted, key=predicted.get)
        operation = self.platform.operation
        segment = (
            self.platform.segment_size
            if _is_segmented(operation, winner)
            else 0
        )
        return Selection(winner, segment, operation), predicted[winner]


    def select_with_segments(
        self, procs: int, nbytes: int, segment_sizes
    ) -> tuple[Selection, float]:
        """Joint algorithm *and* segment-size selection (extension).

        The paper fixes the segment size at 8 KB and scopes its optimisation
        out; the models, however, are functions of the segment size, so the
        same argmin can range over (algorithm, segment) pairs.  Unsegmented
        algorithms participate once with segment 0.

        Caveat: α and β were fitted at the platform's calibrated segment
        size, so they implicitly amortise per-message costs over segments
        of that size.  Sweeping *below* the calibrated size extrapolates
        outside the fit — the pipeline (chain) models in particular have no
        per-segment α term and would predict tiny segments to be free —
        so candidate segments smaller than the calibration anchor are
        skipped for such models (those whose α-coefficient does not grow
        with the segment count).
        """
        operation = self.platform.operation
        anchor = self.platform.segment_size
        best: tuple[float, Selection] | None = None
        for name in self.platform.algorithms:
            if _is_segmented(operation, name):
                if self._alpha_scales_with_segments(name, procs):
                    candidates = list(segment_sizes)
                else:
                    candidates = [s for s in segment_sizes if s >= anchor]
                if not candidates:
                    candidates = [anchor]
            else:
                candidates = [0]
            for segment in candidates:
                predicted = self.platform.predict(
                    name, procs, nbytes, segment_size=segment
                )
                candidate = (predicted, Selection(name, segment, operation))
                if best is None or predicted < best[0]:
                    best = candidate
        assert best is not None  # platform has >= 1 algorithm by invariant
        return best[1], best[0]

    def _alpha_scales_with_segments(self, name: str, procs: int) -> bool:
        """Whether the model's α-coefficient grows with the segment count.

        Models where it does (the γ-weighted tree broadcasts) price small
        segments realistically; models where it does not (the latency-split
        pipelines) cannot be extrapolated below the calibrated segment.
        """
        model = self.platform.model_for(name)
        probe = 1 << 20
        coarse = model.coefficients(procs, probe, probe // 4).c_alpha
        fine = model.coefficients(procs, probe, probe // 64).c_alpha
        return fine > coarse * 1.5


def _is_segmented(operation: str, algorithm: str) -> bool:
    from repro.collectives.registry import get_algorithm

    return bool(getattr(get_algorithm(operation, algorithm), "segmented", False))
