"""Extension bench: adding a new algorithm to the selection framework.

What would it take for Open MPI to evaluate a candidate algorithm — say the
scatter-allgather (Van de Geijn) broadcast that MPICH uses for large
messages?  With the paper's framework the answer is mechanical: derive its
model, run the §4.2 calibration experiment for it, and let the argmin
consider it.  This bench does exactly that on the simulated Grisou and
reports whether the newcomer ever wins.
"""

import pytest

from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS
from repro.estimation.workflow import calibrate_platform
from repro.selection.model_based import ModelBasedSelector

from conftest import MAX_REPS, PAPER_SIZES, TABLE3_PROCS

SEVEN = sorted(list(PAPER_BCAST_ALGORITHMS) + ["scatter_allgather"])


@pytest.fixture(scope="module")
def seven_algorithm_calibration(grisou):
    return calibrate_platform(
        grisou,
        procs=40,
        sizes=PAPER_SIZES,
        max_reps=MAX_REPS,
        algorithms=SEVEN,
    )


def test_extension_seventh_algorithm(
    benchmark, grisou, seven_algorithm_calibration, grisou_oracle
):
    procs = TABLE3_PROCS["grisou"]
    selector = ModelBasedSelector(seven_algorithm_calibration.platform)

    def select_with_seven():
        return [selector.select(procs, nbytes) for nbytes in PAPER_SIZES]

    choices = benchmark.pedantic(select_with_seven, rounds=3, iterations=2)

    print()
    print(f"Selection with 7 candidate algorithms (grisou, P={procs}):")
    newcomer_wins = []
    for choice, nbytes in zip(choices, PAPER_SIZES):
        # Oracle extended with the newcomer's measurements.
        measured = {
            name: grisou_oracle.measure(
                procs, nbytes, name,
                0 if name in ("linear", "scatter_allgather") else None,
            )
            for name in SEVEN
        }
        best = min(measured, key=measured.get)
        degradation = 100 * (measured[choice.algorithm] - measured[best]) / measured[best]
        print(
            f"  m={nbytes:>8}: pick={choice.algorithm:>18} best={best:>18} "
            f"(+{degradation:.1f}%)"
        )
        if choice.algorithm == "scatter_allgather":
            newcomer_wins.append(nbytes)
        # The enlarged selection stays near-optimal.
        assert degradation < 25.0, (nbytes, choice.algorithm)

    verdict = (
        f"scatter-allgather selected at {newcomer_wins}"
        if newcomer_wins
        else "scatter-allgather never selected on this fabric"
    )
    print(f"  verdict: {verdict}")
    # On this clean fabric the pipelined chain already matches the
    # newcomer's bandwidth optimality, so the framework should (correctly)
    # keep preferring the incumbents at the paper's sizes.
    assert not newcomer_wins
