"""Experiment orchestration for the paper's evaluation section."""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.errors import SelectionError
from repro.estimation.workflow import PlatformModel
from repro.selection.model_based import ModelBasedSelector
from repro.selection.ompi_fixed import OmpiFixedSelector
from repro.selection.oracle import MeasuredOracle, Selection

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SelectionRow:
    """One row of a Table-3-style selection comparison."""

    nbytes: int
    best: Selection
    best_time: float
    model: Selection
    model_time: float
    ompi: Selection
    ompi_time: float

    @property
    def model_degradation(self) -> float:
        """Model-based pick's slowdown vs the best, in percent."""
        return 100.0 * (self.model_time - self.best_time) / self.best_time

    @property
    def ompi_degradation(self) -> float:
        """Open MPI pick's slowdown vs the best, in percent."""
        return 100.0 * (self.ompi_time - self.best_time) / self.best_time


def selection_comparison(
    spec: ClusterSpec,
    platform: PlatformModel,
    procs: int,
    sizes: Sequence[int],
    *,
    oracle: MeasuredOracle | None = None,
    max_reps: int = 8,
) -> list[SelectionRow]:
    """Compare best / model-based / Open MPI selections over ``sizes``.

    This is the experiment behind Table 3 and the three curves of Fig. 5.
    Passing a shared ``oracle`` lets several configurations reuse the
    (memoised) measurements.

    The collective under comparison is read off ``platform.operation``
    — a reduce-calibrated platform compares reduce algorithms against
    the fixed reduce decision, and so on for every registered collective.

    The whole experiment grid — every candidate algorithm at every size,
    plus the model-based and Open MPI picks (whose segment sizes may
    differ) — is prefetched through the oracle's runner up front, so with
    a parallel runner all simulations fan out at once and the per-size
    loop replays from the memo.
    """
    operation = platform.operation
    if oracle is None:
        oracle = MeasuredOracle(spec, operation=operation, max_reps=max_reps)
    elif getattr(oracle, "operation", "bcast") != operation:
        raise SelectionError(
            f"oracle measures {oracle.operation!r} but the platform models "
            f"{operation!r}"
        )
    model_selector = ModelBasedSelector(platform)
    ompi_selector = OmpiFixedSelector(operation)

    # The selectors are pure model/table lookups, so the full set of extra
    # (algorithm, segment) pairs is known before any measurement runs.
    picks = {
        nbytes: (
            model_selector.select(procs, nbytes),
            ompi_selector.select(procs, nbytes),
        )
        for nbytes in sizes
    }
    oracle.prefetch(
        procs,
        sizes,
        selections=[
            (nbytes, choice)
            for nbytes, pair in picks.items()
            for choice in pair
        ],
    )

    rows: list[SelectionRow] = []
    for nbytes in sizes:
        best, best_time = oracle.best(procs, nbytes)
        model, ompi = picks[nbytes]
        rows.append(
            SelectionRow(
                nbytes=nbytes,
                best=best,
                best_time=best_time,
                model=model,
                model_time=oracle.measure_selection(procs, nbytes, model),
                ompi=ompi,
                ompi_time=oracle.measure_selection(procs, nbytes, ompi),
            )
        )
    runner = oracle._runner()
    logger.info(
        "selection_comparison %s P=%d: oracle %s, runner %s",
        spec.name,
        procs,
        oracle.stats.as_dict(),
        runner.stats.as_dict(),
    )
    return rows
