"""Estimation of analytical-model parameters (paper §4).

Two estimation procedures make up the paper's second contribution:

* :mod:`repro.estimation.gamma` — measures ``γ(P)``, the slowdown of the
  non-blocking linear-tree broadcast relative to a point-to-point message,
  from collective communication experiments (§4.1);
* :mod:`repro.estimation.alphabeta` — measures per-algorithm Hockney
  parameters ``α, β`` from experiments that *contain the modelled
  algorithm* (broadcast under test + linear gather, timed on the root),
  solved by Huber regression over the canonical linear system of the
  paper's Fig. 4 (§4.2).

Supporting machinery: :mod:`repro.estimation.statistics` (confidence-
interval driven adaptive repetition, following MPIBlib),
:mod:`repro.estimation.regression` (OLS and Huber IRLS),
:mod:`repro.estimation.p2p` (classical point-to-point estimation used by the
traditional models and the ablation), and :mod:`repro.estimation.workflow`
(one-call calibration of a platform).
"""

from repro.estimation.alphabeta import AlphaBeta, FitQuality, estimate_alpha_beta
from repro.estimation.barrier_calibration import calibrate_barrier
from repro.estimation.gamma import estimate_gamma
from repro.estimation.gather_calibration import calibrate_gather
from repro.estimation.p2p import estimate_hockney_p2p
from repro.estimation.regression import huber_fit, mad_screen, ols_fit
from repro.estimation.registry import (
    CalibrationOutcome,
    CalibrationPipeline,
    get_pipeline,
    register_pipeline,
    registered_collectives,
    unregister_pipeline,
)
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.estimation.reduce_calibration import calibrate_reduce
from repro.estimation.workflow import (
    PlatformModel,
    QualityThresholds,
    calibrate_platform,
)

__all__ = [
    "AlphaBeta",
    "CalibrationOutcome",
    "CalibrationPipeline",
    "FitQuality",
    "PlatformModel",
    "QualityThresholds",
    "SampleStats",
    "adaptive_measure",
    "calibrate_barrier",
    "calibrate_gather",
    "calibrate_platform",
    "calibrate_reduce",
    "estimate_alpha_beta",
    "estimate_gamma",
    "estimate_hockney_p2p",
    "get_pipeline",
    "huber_fit",
    "mad_screen",
    "ols_fit",
    "register_pipeline",
    "registered_collectives",
    "unregister_pipeline",
]
