"""Visualise the virtual topologies behind the six broadcast algorithms.

Renders the trees of the paper's Figs. 2-3 (binomial, binary, chains) for a
small communicator and then replays a segmented binomial broadcast in the
simulator, printing the per-stage message timeline — the execution-stage
structure the analytical models are derived from.

Run:  python examples/visualize_trees.py
"""

from repro.clusters import MINICLUSTER
from repro.measure import time_bcast
from repro.sim.trace import Tracer
from repro.topology import (
    build_binary_tree,
    build_binomial_tree,
    build_chain_tree,
)
from repro.units import KiB, format_seconds

SIZE = 8  # the paper's Fig. 3 uses P = 8


def show_topologies() -> None:
    trees = {
        "Binomial tree (Fig. 2): root fans out to log2(P) subtrees": (
            build_binomial_tree(SIZE)
        ),
        "Balanced binary tree: heap-shaped, every interior node 2 children": (
            build_binary_tree(SIZE)
        ),
        "Chain (pipeline): one hop per rank": build_chain_tree(SIZE, chains=1),
        "K-chain (K=4): four parallel pipelines": build_chain_tree(SIZE, chains=4),
    }
    for title, tree in trees.items():
        print(f"\n{title}")
        print(tree.render())
        print(
            f"  height={tree.height}, max fanout={tree.max_fanout()}, "
            f"leaves={len(tree.leaves())}"
        )


def replay_binomial_broadcast() -> None:
    nbytes, segment = 24 * KiB, 8 * KiB  # 3 segments, like the paper's Fig. 3
    print(
        f"\nExecution stages of the binomial broadcast "
        f"(P={SIZE}, {nbytes // 1024} KB in 3 segments of 8 KB):"
    )
    tracer = Tracer()
    elapsed = time_bcast(
        MINICLUSTER, "binomial", SIZE, nbytes, segment, tracer=tracer
    )
    for event in tracer.of_kind("send_post"):
        segment_index = event.tag - 1000
        print(
            f"  t={format_seconds(event.time):>10}  rank {event.rank} -> "
            f"rank {event.peer}  segment #{segment_index}"
        )
    print(f"  total: {format_seconds(elapsed)}")
    print(
        "\nNote how each node pushes segment i to all its children "
        "(the non-blocking linear broadcast, cost gamma(k+1) per stage)\n"
        "while segment i+1 is already arriving — the pipelining that the\n"
        "paper's Eq. 6 counts stage by stage."
    )


def main() -> None:
    show_topologies()
    replay_binomial_broadcast()


if __name__ == "__main__":
    main()
