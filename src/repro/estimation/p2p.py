"""Classical point-to-point parameter estimation (Hockney's method, §2.2).

The state of the art before the paper: measure ping-pong round trips over a
range of message sizes and fit ``T_p2p(m) = α + β·m``.  The paper argues
(and §5.2 shows) that parameters obtained this way miss the context the
point-to-point transfers run in inside a collective algorithm; we implement
the method both to parameterise the traditional models of Fig. 1 and as the
baseline of the estimation ablation
(``benchmarks/test_ablation_estimation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.regression import FitResult, get_regressor
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.models.hockney import HockneyParams
from repro.units import KiB, MiB, log_spaced_sizes

#: Default ping-pong sweep (same range as the broadcast experiments).
DEFAULT_P2P_SIZES = tuple(log_spaced_sizes(8 * KiB, 4 * MiB, 10))


def _p2p_job(spec: ClusterSpec, nbytes: int, rep_seed: int) -> SimJob:
    # time_p2p_roundtrip defaults to spread mapping; mirror it here so the
    # job fingerprints the experiment actually run.
    return SimJob(
        spec=spec,
        kind="p2p_roundtrip",
        procs=2,
        nbytes=nbytes,
        seed=rep_seed,
        mapping="spread",
    )


def p2p_prefetch_jobs(
    spec: ClusterSpec,
    *,
    sizes: Sequence[int] = DEFAULT_P2P_SIZES,
    seed: int = 0,
    reps: int = 2,
) -> list[SimJob]:
    """The first ``reps`` repetitions of the ping-pong sweep, as jobs."""
    batch: list[SimJob] = []
    for index, nbytes in enumerate(sizes):
        base = seed + 15_485_863 * (index + 1)
        for rep in range(reps):
            batch.append(_p2p_job(spec, nbytes, base + 7919 * rep))
    return batch


@dataclass(frozen=True)
class P2pEstimate:
    """Ping-pong derived Hockney parameters plus diagnostics."""

    params: HockneyParams
    fit: FitResult
    sizes: tuple[int, ...]
    stats: tuple[SampleStats, ...]

    @property
    def alpha(self) -> float:
        return self.params.alpha

    @property
    def beta(self) -> float:
        return self.params.beta


def estimate_hockney_p2p(
    spec: ClusterSpec,
    *,
    sizes: Sequence[int] = DEFAULT_P2P_SIZES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    prefetch: bool = True,
) -> P2pEstimate:
    """Fit Hockney α/β from ping-pong experiments between two ranks."""
    if len(sizes) < 2:
        raise EstimationError("need at least two message sizes to fit a line")
    fit_fn = get_regressor(regressor)
    runner = runner if runner is not None else default_runner()
    if prefetch:
        runner.prefetch(p2p_prefetch_jobs(spec, sizes=sizes, seed=seed))
    stats: list[SampleStats] = []
    for index, nbytes in enumerate(sizes):

        def measure_once(rep_seed: int, nbytes: int = nbytes) -> float:
            return runner.run_one(_p2p_job(spec, nbytes, rep_seed))

        stats.append(
            adaptive_measure(
                measure_once,
                precision=precision,
                max_reps=max_reps,
                seed=seed + 15_485_863 * (index + 1),
            )
        )
    fit = fit_fn(list(sizes), [s.mean for s in stats])
    params = HockneyParams(alpha=max(fit.intercept, 0.0), beta=max(fit.slope, 0.0))
    return P2pEstimate(
        params=params, fit=fit, sizes=tuple(sizes), stats=tuple(stats)
    )
