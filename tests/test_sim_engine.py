"""Tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Future, Simulator


class TestFuture:
    def test_succeed_sets_value(self):
        sim = Simulator()
        future = Future(sim)
        assert not future.done
        future.succeed(42)
        assert future.done
        assert future.value == 42

    def test_value_before_done_raises(self):
        future = Future(Simulator())
        with pytest.raises(SimulationError):
            _ = future.value

    def test_double_completion_raises(self):
        future = Future(Simulator())
        future.succeed(1)
        with pytest.raises(SimulationError):
            future.succeed(2)

    def test_fail_propagates_exception(self):
        future = Future(Simulator())
        future.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            _ = future.value

    def test_callback_after_completion_runs_immediately(self):
        future = Future(Simulator())
        future.succeed("x")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.value))
        assert seen == ["x"]


class TestTimeout:
    def test_advances_clock(self):
        sim = Simulator()

        def body(sim):
            yield sim.timeout(1.5)
            yield sim.timeout(0.25)
            return sim.now

        process = sim.process(body(sim))
        sim.run()
        assert process.value == pytest.approx(1.75)
        assert sim.now == pytest.approx(1.75)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_at_in_past_clamps_to_now(self):
        sim = Simulator()
        results = []

        def body(sim):
            yield sim.timeout(2.0)
            yield sim.at(1.0)  # already in the past
            results.append(sim.now)

        sim.process(body(sim))
        sim.run()
        assert results == [pytest.approx(2.0)]


class TestDeterminism:
    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.schedule(0.5, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "first", "second"]

    def test_two_runs_identical(self):
        def make():
            sim = Simulator()

            def worker(sim, delays):
                total = 0.0
                for d in delays:
                    yield sim.timeout(d)
                    total += sim.now
                return total

            p = sim.process(worker(sim, [0.1, 0.2, 0.3]))
            sim.run()
            return p.value, sim.now

        assert make() == make()


class TestProcesses:
    def test_return_value(self):
        def body(sim):
            yield sim.timeout(1)
            return "done"

        sim, (process,) = run_to_completion_single(body)
        assert process.value == "done"

    def test_fork_join(self):
        sim = Simulator()

        def child(sim, delay):
            yield sim.timeout(delay)
            return delay

        def parent(sim):
            children = [sim.process(child(sim, d)) for d in (3.0, 1.0, 2.0)]
            values = yield sim.all_of(children)
            return values

        process = sim.process(parent(sim))
        sim.run()
        assert process.value == [3.0, 1.0, 2.0]
        assert sim.now == pytest.approx(3.0)

    def test_yielding_non_future_fails_process(self):
        sim = Simulator()

        def body(sim):
            yield 42

        process = sim.process(body(sim))
        sim.run()
        with pytest.raises(SimulationError, match="must yield Future"):
            _ = process.value

    def test_exception_in_body_captured(self):
        sim = Simulator()

        def body(sim):
            yield sim.timeout(1)
            raise RuntimeError("worker died")

        process = sim.process(body(sim))
        sim.run()
        with pytest.raises(RuntimeError, match="worker died"):
            _ = process.value

    def test_exception_propagates_through_yield(self):
        sim = Simulator()
        failing = Future(sim)

        def body(sim):
            try:
                yield failing
            except ValueError:
                return "caught"

        process = sim.process(body(sim))
        sim.schedule(1.0, lambda: failing.fail(ValueError("x")))
        sim.run()
        assert process.value == "caught"

    def test_ready_future_resumes_inline_without_heap_churn(self):
        sim = Simulator()

        def body(sim):
            for _ in range(100):
                done = Future(sim)
                done.succeed(None)
                yield done
            return sim.now

        process = sim.process(body(sim))
        sim.run()
        assert process.value == 0.0  # no simulated time passed


class TestCombinators:
    def test_all_of_empty(self):
        sim = Simulator()
        future = sim.all_of([])
        assert future.done and future.value == []

    def test_any_of_returns_winner_index(self):
        sim = Simulator()

        def body(sim):
            slow = sim.timeout(5.0, "slow")
            fast = sim.timeout(1.0, "fast")
            index, value = yield sim.any_of([slow, fast])
            return index, value, sim.now

        process = sim.process(body(sim))
        sim.run(until=10)
        assert process.value == (1, "fast", pytest.approx(1.0))

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([])

    def test_all_of_propagates_failure(self):
        sim = Simulator()
        bad = Future(sim)
        good = sim.timeout(1.0)
        combined = sim.all_of([good, bad])
        bad.fail(ValueError("nope"))
        sim.run(until=2)
        with pytest.raises(ValueError):
            _ = combined.value

    def test_any_of_detaches_callbacks_from_losers(self):
        # Regression: any_of used to leave its callback on every losing
        # future, so a rank repeatedly racing the same long-lived futures
        # (e.g. a timeout against a receive) accumulated one dead callback
        # per call — an unbounded leak on the simulation hot path.
        sim = Simulator()
        losers = [Future(sim) for _ in range(3)]
        winner = sim.timeout(1.0)
        sim.any_of([winner] + losers)
        sim.run(until=2)
        assert all(not loser._callbacks for loser in losers)

    def test_any_of_losers_can_still_complete(self):
        sim = Simulator()
        loser = Future(sim)
        combined = sim.any_of([sim.timeout(1.0), loser])
        sim.run(until=2)
        assert combined.value[0] == 0
        loser.succeed("late")  # no stale callback fires, no error
        assert loser.value == "late"

    def test_all_of_failure_detaches_from_pending(self):
        sim = Simulator()
        bad = Future(sim)
        pending = Future(sim)
        combined = sim.all_of([pending, bad])
        bad.fail(ValueError("nope"))
        assert combined.done
        assert not pending._callbacks


class TestDeadlockDetection:
    def test_blocked_process_raises_deadlock(self):
        sim = Simulator()

        def body(sim):
            yield Future(sim)  # never completed

        sim.process(body(sim), name="stuck-rank")
        with pytest.raises(DeadlockError, match="stuck-rank"):
            sim.run()

    def test_run_until_does_not_report_deadlock(self):
        sim = Simulator()

        def body(sim):
            yield Future(sim)

        sim.process(body(sim))
        sim.run(until=1.0)  # bounded run: fine
        assert sim.pending_processes()

    def test_max_events_guard(self):
        sim = Simulator()

        def ticker(sim):
            while True:
                yield sim.timeout(1.0)

        sim.process(ticker(sim))
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=10)


def run_to_completion_single(body):
    sim = Simulator()
    process = sim.process(body(sim))
    sim.run()
    return sim, [process]
