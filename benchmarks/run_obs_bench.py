"""Measure the overhead of the repro.obs span layer; write BENCH_obs.json.

Two traced workloads:

1. **Warm-cache artifact build** — ``build_artifact`` against a
   pre-populated persistent result cache, the heaviest traced code path:
   calibrate → tables → codegen.
2. **Service p99** — a keep-alive client streaming ``POST /select``
   requests at a live :class:`ServiceThread`; the server always runs its
   forced ``http.request`` spans, so enabling tracing only adds span
   *retention*.

Methodology: a sub-2% effect cannot be resolved by differencing two
wall-clock measurements on a shared machine — background load drifts by
more than the signal.  The bench therefore *accounts* for the overhead
from precisely measurable ingredients:

* the per-span cost, microbenchmarked as the minimum over many sub-ms
  batches (bursts of contention cannot push a minimum down, and a batch
  is too short for one to inflate every sample);
* the exact span count of the traced workload (read off the recorder);
* the workload's own best-of-N duration (its uncontended cost, the
  matching denominator).

``accounted overhead = span count x per-span cost / workload time`` is
asserted against :data:`OVERHEAD_BUDGET` (2%), and the raw A/B timings
are recorded alongside for reference.  One traced build also exports a
Chrome trace (``--trace-out``) so CI can archive a browsable span tree.

Usage::

    PYTHONPATH=src python benchmarks/run_obs_bench.py
    PYTHONPATH=src python benchmarks/run_obs_bench.py --trials 7 \\
        --trace-out obs_bench_trace.json
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import statistics
import sys
import tempfile
import time
from http.client import HTTPConnection
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import obs  # noqa: E402
from repro.clusters import MINICLUSTER  # noqa: E402
from repro.exec import ParallelRunner, cpu_count  # noqa: E402
from repro.exec.cache import ResultCache  # noqa: E402
from repro.obs.export import build_tree, save_chrome_trace  # noqa: E402
from repro.obs.spans import SpanRecorder  # noqa: E402
from repro.service import (  # noqa: E402
    ArtifactRegistry,
    SelectionService,
    ServiceThread,
    build_artifact,
)
from repro.units import KiB, MiB, log_spaced_sizes  # noqa: E402

#: Maximum tolerated slowdown with tracing enabled (fraction).
OVERHEAD_BUDGET = 0.02

#: Root span names every traced artifact build must produce.
REQUIRED_PHASES = ("artifact.calibrate", "artifact.tables", "artifact.codegen")

# Paper-shaped workload (10 sizes up to 4 MiB): the span count per build
# is fixed (~15), so a toy grid would overstate the relative overhead.
SIZES = log_spaced_sizes(8 * KiB, 4 * MiB, 10)
BUILD_KWARGS = dict(
    procs=8,
    gamma_max_procs=5,
    max_reps=3,
    sizes=SIZES,
    proc_points=range(2, 17, 2),
    size_points=SIZES,
)


def calibrate_span_cost() -> float:
    """Per-span cost in seconds: min over many short enabled batches."""
    recorder = SpanRecorder(enabled=True)
    batch = 500
    best = float("inf")
    for _ in range(60):
        started = time.perf_counter()
        for _ in range(batch):
            with recorder.span("bench.calibrate", a=1, b=2, c=3) as span:
                span.set_attrs(d=4, e=5)
        best = min(best, (time.perf_counter() - started) / batch)
        recorder.spans.clear()
    return best


def timed_build(cache_dir: str):
    """One warm-cache artifact build; returns (cpu_seconds, artifact)."""
    runner = ParallelRunner(jobs=1, cache=ResultCache(cache_dir))
    try:
        # CPU time: the build is single-threaded and CPU-bound, so
        # process_time tracks its real cost, not scheduler luck.
        started = time.process_time()
        artifact = build_artifact(MINICLUSTER, runner=runner, **BUILD_KWARGS)
        elapsed = time.process_time() - started
    finally:
        runner.close()
    return elapsed, artifact


def bench_build(trials: int, span_cost: float, trace_out: Path | None):
    with tempfile.TemporaryDirectory(prefix="obs-bench-cache-") as cache_dir:
        print("populating result cache (cold build)...")
        timed_build(cache_dir)
        timed_build(cache_dir)  # warm-up: caches, allocator, sqlite pages

        disabled, enabled = [], []
        spans = []
        for trial in range(trials):
            # Alternate which mode runs first so drift cannot
            # systematically favour one of them.
            modes = ("off", "on") if trial % 2 == 0 else ("on", "off")
            for mode in modes:
                if mode == "off":
                    seconds, artifact = timed_build(cache_dir)
                    disabled.append(seconds)
                    continue
                obs.enable()
                try:
                    seconds, artifact = timed_build(cache_dir)
                finally:
                    spans = obs.get_recorder().finished()
                    obs.disable()
                    obs.get_recorder().clear()
                enabled.append(seconds)
            print(f"  build trial {trial + 1}/{trials}: "
                  f"off {disabled[-1] * 1e3:.1f} ms, "
                  f"on {enabled[-1] * 1e3:.1f} ms ({len(spans)} spans)")

        records = [span.to_dict() for span in spans]
        roots = {record["name"] for record in build_tree(records)}
        missing = [
            name for name in REQUIRED_PHASES
            if not any(span.name == name for span in spans)
        ]
        if missing:
            raise RuntimeError(f"traced build missing spans: {missing}")
        if trace_out is not None:
            save_chrome_trace(spans, trace_out)
            print(f"wrote {trace_out} ({len(spans)} spans, "
                  f"roots: {sorted(roots)})")

    build_s = min(disabled)
    return {
        "trials": trials,
        "spans_per_build": len(spans),
        "build_best_s": build_s,
        "build_median_s": statistics.median(disabled),
        "traced_best_s": min(enabled),
        "traced_median_s": statistics.median(enabled),
        "measured_overhead": min(enabled) / build_s - 1.0,
        "overhead": len(spans) * span_cost / build_s,
    }, artifact


def drive_queries(port: int, queries: list[dict]) -> list[float]:
    """Issue the queries on one keep-alive connection; return latencies."""
    latencies = []
    conn = HTTPConnection("127.0.0.1", port)
    try:
        for query in queries:
            body = json.dumps(query)
            started = time.perf_counter()
            conn.request("POST", "/select", body,
                         {"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read())
            latencies.append(time.perf_counter() - started)
            if response.status != 200:
                raise RuntimeError(f"HTTP {response.status}: {payload}")
            if "trace_id" not in payload:
                raise RuntimeError(f"response missing trace_id: {payload}")
    finally:
        conn.close()
    return latencies


def make_queries(artifact, count: int, seed: int) -> list[dict]:
    rng = random.Random(seed)
    table = artifact.entries["bcast"].table
    queries = []
    for _ in range(count):
        queries.append({
            "cluster": artifact.cluster,
            "operation": "bcast",
            "procs": rng.randint(2, table.proc_points[-1]),
            "nbytes": rng.randint(1, table.size_points[-1] * 2),
        })
    return queries


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def bench_service(artifact, trials: int, queries_per_trial: int,
                  span_cost: float) -> dict:
    registry = ArtifactRegistry()
    registry.add(artifact)
    service = SelectionService(registry)

    disabled, enabled = [], []
    with ServiceThread(service) as handle:
        queries = make_queries(artifact, queries_per_trial, seed=0)
        drive_queries(handle.port, queries[:50])  # warm caches + code paths
        for trial in range(trials):
            modes = ("off", "on") if trial % 2 == 0 else ("on", "off")
            for mode in modes:
                if mode == "off":
                    latencies = drive_queries(handle.port, queries)
                    disabled.append(percentile(latencies, 0.99))
                    continue
                obs.enable()
                try:
                    latencies = drive_queries(handle.port, queries)
                finally:
                    obs.disable()
                    obs.get_recorder().clear()
                enabled.append(percentile(latencies, 0.99))
            print(f"  service trial {trial + 1}/{trials}: "
                  f"p99 off {disabled[-1] * 1e3:.3f} ms, "
                  f"on {enabled[-1] * 1e3:.3f} ms")

    # The request's forced http.request span runs in both modes; enabling
    # tracing adds at most one span's worth of retention bookkeeping.
    p99 = min(disabled)
    return {
        "trials": trials,
        "queries_per_trial": queries_per_trial,
        "p99_best_ms": p99 * 1e3,
        "p99_median_ms": statistics.median(disabled) * 1e3,
        "traced_p99_best_ms": min(enabled) * 1e3,
        "traced_p99_median_ms": statistics.median(enabled) * 1e3,
        "measured_overhead": min(enabled) / p99 - 1.0,
        "overhead": span_cost / p99,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO / "BENCH_obs.json"))
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument(
        "--queries", type=int, default=1000, help="queries per service trial"
    )
    parser.add_argument(
        "--trace-out", default=str(REPO / "obs_bench_trace.json"),
        help="Chrome trace exported from one traced build",
    )
    args = parser.parse_args(argv)

    # Cyclic-GC pauses are pure measurement noise here: spans are acyclic
    # (__slots__, string ids), so collection frees nothing they hold.
    gc.disable()
    span_cost = calibrate_span_cost()
    print(f"per-span cost: {span_cost * 1e6:.2f} us")
    build, artifact = bench_build(args.trials, span_cost,
                                  Path(args.trace_out))
    service = bench_service(artifact, args.trials, args.queries, span_cost)
    gc.enable()

    run = {
        "metadata": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": cpu_count(),
        },
        "overhead_budget": OVERHEAD_BUDGET,
        "span_cost_us": span_cost * 1e6,
        "warm_build": build,
        "service": service,
    }

    output = Path(args.output)
    document = (
        json.loads(output.read_text()) if output.exists() else {"runs": []}
    )
    document["runs"].append(run)
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {output}")
    print(
        f"warm build: {build['build_best_s'] * 1e3:.1f} ms, "
        f"{build['spans_per_build']} spans -> "
        f"{build['overhead'] * 100:.3f}% overhead "
        f"(measured A/B {build['measured_overhead'] * 100:+.2f}%) | "
        f"service p99 {service['p99_best_ms']:.3f} ms -> "
        f"{service['overhead'] * 100:.3f}% overhead "
        f"(measured A/B {service['measured_overhead'] * 100:+.2f}%) | "
        f"budget {OVERHEAD_BUDGET * 100:.0f}%"
    )

    failures = [
        f"{what} overhead {result['overhead'] * 100:.3f}% exceeds "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget"
        for what, result in (("warm build", build), ("service p99", service))
        if result["overhead"] >= OVERHEAD_BUDGET
    ]
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
