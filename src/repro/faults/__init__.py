"""Deterministic fault injection for the simulated cluster.

Public surface:

* :class:`FaultPlan` and its parts (:class:`StragglerFault`,
  :class:`LinkFault`, :class:`MessageLoss`, :class:`HeavyTailSpec`) —
  declarative, hashable fault scenarios;
* :class:`FaultyFabric` — the fabric that executes a plan;
* heavy-tailed noise models (:class:`ParetoNoise`, :class:`MixtureNoise`,
  :class:`CompositeNoise`) and the :func:`compose_noise` helper.

Attach a plan with ``spec.with_faults(plan)``; everything downstream
(measurement, caching, calibration, benchmarks) picks it up through the
spec fingerprint.
"""

from repro.faults.fabric import FaultyFabric
from repro.faults.noise import (
    CompositeNoise,
    MixtureNoise,
    ParetoNoise,
    compose_noise,
    make_fault_noise,
)
from repro.faults.plan import (
    FaultPlan,
    HeavyTailSpec,
    LinkFault,
    MessageLoss,
    StragglerFault,
)

__all__ = [
    "CompositeNoise",
    "FaultPlan",
    "FaultyFabric",
    "HeavyTailSpec",
    "LinkFault",
    "MessageLoss",
    "MixtureNoise",
    "ParetoNoise",
    "StragglerFault",
    "compose_noise",
    "make_fault_noise",
]
