"""Extension bench: joint algorithm + segment-size selection.

The paper fixes ``m_s = 8 KB`` and declares segment-size optimisation out
of scope (§5.1).  The derived models are explicit functions of the segment
size, so the selection argmin extends naturally over (algorithm, segment)
pairs.  This bench asks: does the joint selection beat the fixed-8 KB
selection against an oracle that may also pick its segment size?
"""

import pytest

from repro.selection.model_based import ModelBasedSelector
from repro.selection.oracle import Selection
from repro.units import KiB, MiB

#: Candidate segment sizes (Open MPI's decision function uses this range;
#: the selector itself guards pipeline models against sub-anchor segments).
SEGMENT_CHOICES = (1 * KiB, 8 * KiB, 32 * KiB, 128 * KiB)
SIZES = (64 * KiB, 512 * KiB, 4 * MiB)
PROCS = 90
#: Algorithms worth sweeping segments for at these sizes.
CANDIDATES = ("chain", "k_chain", "binary", "split_binary", "binomial")


@pytest.fixture(scope="module")
def oracle_best_over_segments(grisou_oracle):
    def best(procs, nbytes):
        times = {}
        for name in CANDIDATES:
            for segment in SEGMENT_CHOICES:
                times[(name, segment)] = grisou_oracle.measure(
                    procs, nbytes, name, segment
                )
        winner = min(times, key=times.get)
        return winner, times[winner]

    return best


def test_extension_segment_size_selection(
    benchmark, grisou_calibration, grisou_oracle, oracle_best_over_segments
):
    selector = ModelBasedSelector(grisou_calibration.platform)

    def select_jointly():
        return [
            selector.select_with_segments(PROCS, nbytes, SEGMENT_CHOICES)
            for nbytes in SIZES
        ]

    joint = benchmark.pedantic(select_jointly, rounds=3, iterations=2)

    print()
    print(f"Joint (algorithm, segment) selection on grisou, P={PROCS}:")
    print(f"{'m':>10} {'joint pick':>28} {'fixed-8K pick':>24} "
          f"{'joint deg%':>10} {'fixed deg%':>10}")
    for (choice, _predicted), nbytes in zip(joint, SIZES):
        fixed = selector.select(PROCS, nbytes)
        (best_pair, best_time) = oracle_best_over_segments(PROCS, nbytes)
        joint_time = grisou_oracle.measure(
            PROCS, nbytes, choice.algorithm, choice.segment_size
        )
        fixed_time = grisou_oracle.measure_selection(PROCS, nbytes, fixed)
        joint_deg = 100 * (joint_time - best_time) / best_time
        fixed_deg = 100 * (fixed_time - best_time) / best_time
        print(
            f"{nbytes:>10} {choice.describe():>28} {fixed.describe():>24} "
            f"{joint_deg:>10.1f} {fixed_deg:>10.1f}"
        )
        # The joint pick is never wildly off the segment-aware oracle.
        assert joint_deg < 60.0
        # The calibration anchor (8 KB) remains a sane choice: fixed-8K is
        # within a factor of the best (the paper's scoping decision holds).
        assert fixed_deg < 100.0


def test_oracle_confirms_segment_size_matters(grisou_oracle):
    """Ground truth: the chain's 512 KB time varies strongly with the
    segment size — the quantity Open MPI's decision function tunes."""
    times = {
        segment: grisou_oracle.measure(PROCS, 512 * KiB, "chain", segment)
        for segment in SEGMENT_CHOICES
    }
    assert max(times.values()) > 1.5 * min(times.values())
