"""Confidence-interval driven measurement, following the paper's methodology.

Paper §5.1: *"the sample mean is used, which is calculated by executing the
application repeatedly until the sample mean lies in the 95% confidence
interval and a precision of 0.025 (2.5%) has been achieved.  We also check
that the individual observations are independent and their population
follows the normal distribution.  For this purpose, MPIBlib is used."*

:func:`adaptive_measure` reproduces that loop for any measurement callable:
repetitions are added until the Student-t confidence-interval half-width
drops below ``precision × mean`` (or a repetition cap is hit), and a
Shapiro-Wilk normality p-value is attached when enough samples exist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from scipy import stats as scipy_stats

from repro.errors import EstimationError

#: Minimum sample count before a Shapiro-Wilk test is attempted.
_NORMALITY_MIN_SAMPLES = 8


@dataclass(frozen=True)
class SampleStats:
    """Summary of one adaptive measurement."""

    #: Sample mean of the measured quantity (seconds).
    mean: float
    #: Sample standard deviation (ddof=1); 0 for deterministic runs.
    std: float
    #: Half-width of the confidence interval around the mean.
    ci_halfwidth: float
    #: Confidence level the interval was computed at.
    confidence: float
    #: The raw samples, in measurement order.
    samples: tuple[float, ...]
    #: Whether the precision target was met before the repetition cap.
    converged: bool
    #: Shapiro-Wilk p-value (None when too few samples or zero variance).
    normality_p: float | None

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def relative_precision(self) -> float:
        """CI half-width as a fraction of the mean (the paper's 2.5% target)."""
        if self.mean == 0:
            return 0.0 if self.ci_halfwidth == 0 else math.inf
        return self.ci_halfwidth / abs(self.mean)


def _confidence_halfwidth(samples: list[float], confidence: float) -> float:
    n = len(samples)
    if n < 2:
        return math.inf
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    if variance == 0.0:
        return 0.0
    t_critical = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return t_critical * math.sqrt(variance / n)


def adaptive_measure(
    measure_once: Callable[[int], float],
    *,
    precision: float = 0.025,
    confidence: float = 0.95,
    min_reps: int = 3,
    max_reps: int = 30,
    seed: int = 0,
) -> SampleStats:
    """Repeat ``measure_once(seed_i)`` until the CI meets the precision target.

    ``measure_once`` receives a distinct derived seed per repetition so that
    stochastic simulations yield independent samples; deterministic
    simulations converge immediately (zero variance).
    """
    if not 0 < precision:
        raise EstimationError(f"precision must be positive, got {precision}")
    if not 0 < confidence < 1:
        raise EstimationError(f"confidence must be in (0,1), got {confidence}")
    if not 2 <= min_reps <= max_reps:
        raise EstimationError(
            f"need 2 <= min_reps <= max_reps, got {min_reps}, {max_reps}"
        )

    samples: list[float] = []
    converged = False
    while len(samples) < max_reps:
        sample = measure_once(seed + 7919 * len(samples))
        if not math.isfinite(sample) or sample < 0:
            raise EstimationError(f"measurement returned invalid time {sample}")
        samples.append(sample)
        if len(samples) >= 2 and all(s == samples[0] for s in samples):
            # Deterministic simulation (zero noise): further repetitions are
            # bit-identical, so the CI criterion is met trivially.
            converged = True
            break
        if len(samples) < min_reps:
            continue
        mean = sum(samples) / len(samples)
        halfwidth = _confidence_halfwidth(samples, confidence)
        if mean == 0.0 or halfwidth <= precision * abs(mean):
            converged = True
            break

    mean = sum(samples) / len(samples)
    if len(samples) > 1:
        variance = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
    else:
        variance = 0.0
    std = math.sqrt(variance)
    halfwidth = _confidence_halfwidth(samples, confidence)
    if math.isinf(halfwidth):
        halfwidth = 0.0

    normality_p: float | None = None
    if len(samples) >= _NORMALITY_MIN_SAMPLES and std > 0:
        normality_p = float(scipy_stats.shapiro(samples).pvalue)

    return SampleStats(
        mean=mean,
        std=std,
        ci_halfwidth=halfwidth,
        confidence=confidence,
        samples=tuple(samples),
        converged=converged,
        normality_p=normality_p,
    )
