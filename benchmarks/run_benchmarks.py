"""Append a run to BENCH_simulator.json: simulator/executor performance.

``BENCH_simulator.json`` holds a ``runs`` list (same convention as
``BENCH_service.json``); every invocation appends one timestamped entry.
Each entry has four measurement groups (see docs/PERFORMANCE.md):

1. **engine micro-benchmarks** — the two workloads of
   ``test_simulator_performance.py``, run through pytest-benchmark, plus
   the pre-optimization baselines recorded on the same workloads before
   the event-loop/network fast paths landed (so the JSON carries
   before/after evidence of the hot-path optimization);
2. **end-to-end selection comparison** — a Table-3-style
   ``selection_comparison`` wall-timed three ways: serial cold, parallel
   cold (``--jobs``, default all cores), and serial against a warm
   persistent cache (which must perform *zero* simulations);
3. **batched build** — one cold four-collective artifact build through the
   event-loop engine (``batch=False``, ``event_loop_cold_build_s``) and one
   through the batched grid simulator (``batch=True``,
   ``batched_cold_build_s``), asserting identical content hashes;
4. **full-suite build** — the eight-collective artifact (bcast, reduce,
   gather, barrier, allreduce, allgather, alltoall, scatter) built cold
   against a fresh persistent cache and then rebuilt warm, asserting the
   warm replay performs zero simulations and reproduces the content hash;
5. **metadata** — CPU count, Python version, platform, timestamp — because
   the parallel speedup claim is only meaningful relative to the core
   count the run had.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py           # quick
    PYTHONPATH=src python benchmarks/run_benchmarks.py --full    # paper scale
    PYTHONPATH=src python benchmarks/run_benchmarks.py --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.clusters import GROS, MINICLUSTER  # noqa: E402
from repro.exec import ParallelRunner, ResultCache, cpu_count  # noqa: E402
from repro.units import KiB, MiB, log_spaced_sizes  # noqa: E402

#: Best-of-several wall times of the two micro workloads at commit 8631bad
#: (before the engine/network hot-path optimization), measured interleaved
#: with the optimized code on the same machine to cancel load drift.  The
#: optimized code measured 2.40 ms / 0.345 s in the same session (-16% /
#: -7%); the "after" numbers recorded below come from the pytest-benchmark
#: run of whatever machine regenerates this file.
BASELINE_BEFORE = {
    "small_bcast_16_ranks": 2.84e-3,
    "paper_scale_bcast_p100": 0.370,
}


def run_pytest_benchmarks() -> dict:
    """The two simulator micro-benchmarks, via pytest-benchmark."""
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO / "benchmarks" / "test_simulator_performance.py"),
                "-q",
                f"--benchmark-json={report}",
            ],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": str(REPO / "src")
                + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            },
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"pytest-benchmark run failed:\n{proc.stdout}\n{proc.stderr}"
            )
        data = json.loads(report.read_text())
    out = {}
    for bench in data["benchmarks"]:
        name = bench["name"].removeprefix("test_")
        out[name] = {
            "min_s": bench["stats"]["min"],
            "mean_s": bench["stats"]["mean"],
            "rounds": bench["stats"]["rounds"],
        }
    return out


def selection_workload(full: bool):
    """(spec, procs, sizes, calibration kwargs) of the end-to-end workload."""
    if full:
        spec = GROS.with_noise(0.0)
        return spec, 100, log_spaced_sizes(8 * KiB, 4 * MiB, 10), dict(
            procs=62, gamma_max_procs=7, max_reps=8
        )
    spec = MINICLUSTER
    return spec, 16, log_spaced_sizes(8 * KiB, 1 * MiB, 6), dict(
        procs=8, gamma_max_procs=5, max_reps=3
    )


def timed_comparison(spec, platform_model, procs, sizes, runner) -> tuple:
    from repro.bench.runner import selection_comparison
    from repro.selection.oracle import MeasuredOracle

    oracle = MeasuredOracle(spec, max_reps=8, runner=runner)
    start = time.perf_counter()
    rows = selection_comparison(spec, platform_model, procs, sizes, oracle=oracle)
    return time.perf_counter() - start, rows


def run_selection_benchmark(full: bool, jobs: int) -> dict:
    from repro.estimation.workflow import calibrate_platform

    spec, procs, sizes, cal_kwargs = selection_workload(full)

    setup = ParallelRunner(jobs=jobs)
    platform_model = calibrate_platform(spec, runner=setup, **cal_kwargs).platform
    setup.close()

    serial = ParallelRunner(jobs=1)
    serial_s, rows_serial = timed_comparison(
        spec, platform_model, procs, sizes, serial
    )
    serial.close()

    parallel = ParallelRunner(jobs=jobs)
    parallel_s, rows_parallel = timed_comparison(
        spec, platform_model, procs, sizes, parallel
    )
    parallel.close()

    with tempfile.TemporaryDirectory() as tmp:
        seed_cache = ParallelRunner(jobs=jobs, cache=ResultCache(tmp))
        timed_comparison(spec, platform_model, procs, sizes, seed_cache)
        seed_cache.close()

        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp))
        warm_s, rows_warm = timed_comparison(
            spec, platform_model, procs, sizes, warm
        )
        warm_stats = warm.stats.as_dict()
        warm.close()

    if rows_parallel != rows_serial or rows_warm != rows_serial:
        raise RuntimeError("parallel/warm results diverged from serial")
    if warm_stats["simulations"] != 0:
        raise RuntimeError(
            f"warm-cache rerun simulated {warm_stats['simulations']} jobs"
        )

    return {
        "workload": {
            "cluster": spec.name,
            "procs": procs,
            "sizes": list(sizes),
            "scale": "full" if full else "quick",
        },
        "serial_cold_s": serial_s,
        "parallel_cold_s": parallel_s,
        "parallel_jobs": jobs,
        "warm_cache_s": warm_s,
        "warm_cache_stats": warm_stats,
        "speedup_parallel_vs_serial": serial_s / parallel_s,
        "speedup_warm_vs_serial": serial_s / warm_s,
        "results_bit_identical": True,
    }


def build_workload(full: bool):
    """(spec, build_artifact kwargs) of the four-collective build."""
    collectives = ("bcast", "reduce", "gather", "barrier")
    if full:
        spec = GROS.with_noise(0.0)
        return spec, dict(
            collectives=collectives, procs=62, gamma_max_procs=7, max_reps=8
        )
    return MINICLUSTER, dict(
        collectives=collectives, procs=8, gamma_max_procs=5, max_reps=3
    )


def run_build_benchmark(full: bool, jobs: int) -> dict:
    """Cold artifact build, event-loop engine vs batched grid simulator."""
    from repro.service import build_artifact

    spec, kwargs = build_workload(full)
    timings, hashes, sims = {}, {}, {}
    for batch in (False, True):
        runner = ParallelRunner(jobs=jobs, batch=batch)
        start = time.perf_counter()
        artifact = build_artifact(spec, runner=runner, seed=0, **kwargs)
        timings[batch] = time.perf_counter() - start
        hashes[batch] = artifact.content_hash()
        sims[batch] = runner.stats.simulations
        runner.close()
    if hashes[True] != hashes[False]:
        raise RuntimeError(
            "batched build diverged from the event-loop build: "
            f"{hashes[True]} != {hashes[False]}"
        )
    return {
        "workload": {
            "cluster": spec.name,
            "collectives": list(kwargs["collectives"]),
            "procs": kwargs["procs"],
            "scale": "full" if full else "quick",
            "jobs": jobs,
        },
        "event_loop_cold_build_s": timings[False],
        "batched_cold_build_s": timings[True],
        "event_loop_simulations": sims[False],
        "batched_simulations": sims[True],
        "speedup_batched_vs_event_loop": timings[False] / timings[True],
        "content_hash": hashes[True],
        "content_hash_identical": True,
    }


def run_fabric_benchmark(full: bool, jobs: int) -> dict:
    """Cold build times, flat vs a 2:1 oversubscribed leaf-spine fabric.

    The non-flat build pays twice: the hierarchical candidates join the
    calibration sweep, and the batched grid simulator falls back to the
    event loop (multi-level routing is event-driven only) — this entry
    keeps that overhead visible run over run.
    """
    from repro.fabric import build_fabric
    from repro.service import build_artifact

    spec, kwargs = build_workload(full)
    kwargs = dict(kwargs, collectives=("bcast", "reduce"))
    fabspec = spec.with_fabric(build_fabric("leaf_spine_2to1", spec))
    timings, fabrics = {}, {}
    for label, target in (("flat", spec), ("leaf_spine_2to1", fabspec)):
        runner = ParallelRunner(jobs=jobs)
        start = time.perf_counter()
        artifact = build_artifact(target, runner=runner, seed=0, **kwargs)
        timings[label] = time.perf_counter() - start
        fabrics[label] = artifact.fabric
        runner.close()
    if fabrics["flat"] != "" or fabrics["leaf_spine_2to1"] != "leaf_spine_2to1":
        raise RuntimeError(f"fabric tagging broken: {fabrics}")
    return {
        "workload": {
            "cluster": spec.name,
            "collectives": ["bcast", "reduce"],
            "procs": kwargs["procs"],
            "scale": "full" if full else "quick",
            "jobs": jobs,
        },
        "flat_cold_build_s": timings["flat"],
        "leaf_spine_2to1_cold_build_s": timings["leaf_spine_2to1"],
        "overhead_fabric_vs_flat": (
            timings["leaf_spine_2to1"] / timings["flat"]
        ),
    }


FULL_SUITE = (
    "bcast", "reduce", "gather", "barrier",
    "allreduce", "allgather", "alltoall", "scatter",
)


def run_full_suite_build_benchmark(full: bool, jobs: int) -> dict:
    """Cold vs warm-cache build of the eight-collective artifact.

    Cold: fresh persistent cache, every calibration simulated.  Warm: a
    second build against the same cache directory, which must replay
    entirely from disk (zero simulations) and reproduce the content hash
    bit for bit.
    """
    from repro.service import build_artifact

    spec, kwargs = build_workload(full)
    kwargs = dict(kwargs, collectives=FULL_SUITE)
    timings, hashes, sims = {}, {}, {}
    with tempfile.TemporaryDirectory() as tmp:
        for label in ("cold", "warm"):
            runner = ParallelRunner(jobs=jobs, cache=ResultCache(Path(tmp)))
            start = time.perf_counter()
            artifact = build_artifact(spec, runner=runner, seed=0, **kwargs)
            timings[label] = time.perf_counter() - start
            hashes[label] = artifact.content_hash()
            sims[label] = runner.stats.simulations
            runner.close()
    if sims["warm"] != 0:
        raise RuntimeError(
            f"warm full-suite rebuild simulated {sims['warm']} jobs"
        )
    if hashes["warm"] != hashes["cold"]:
        raise RuntimeError(
            "warm full-suite rebuild diverged from the cold build: "
            f"{hashes['warm']} != {hashes['cold']}"
        )
    return {
        "workload": {
            "cluster": spec.name,
            "collectives": list(FULL_SUITE),
            "procs": kwargs["procs"],
            "scale": "full" if full else "quick",
            "jobs": jobs,
        },
        "cold_build_s": timings["cold"],
        "warm_build_s": timings["warm"],
        "cold_simulations": sims["cold"],
        "warm_simulations": sims["warm"],
        "speedup_warm_vs_cold": timings["cold"] / timings["warm"],
        "content_hash": hashes["cold"],
        "content_hash_identical": True,
    }


def append_run(output: Path, run: dict) -> list:
    """Append ``run`` to the ``runs`` list of ``output``.

    Migrates the pre-runs-list layout (one flat report dict) by wrapping
    the existing document as the first run.
    """
    runs: list = []
    if output.exists():
        existing = json.loads(output.read_text())
        runs = existing["runs"] if "runs" in existing else [existing]
    runs.append(run)
    output.write_text(json.dumps({"runs": runs}, indent=2) + "\n")
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_simulator.json")
    )
    parser.add_argument(
        "--jobs", type=int, default=0, help="parallel workers (0 = all cores)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale workload (Gros P=100, 10 sizes) instead of quick",
    )
    parser.add_argument(
        "--skip-micro",
        action="store_true",
        help="skip the pytest-benchmark micro workloads",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs else cpu_count()

    report = {
        "metadata": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": cpu_count(),
            "note": (
                "parallel speedup scales with cpu_count; on a single-core "
                "machine parallel_cold_s ~= serial_cold_s plus pool overhead"
            ),
        },
        "engine_microbenchmarks": {
            "before_optimization_min_s": BASELINE_BEFORE,
        },
    }
    if not args.skip_micro:
        print("running simulator micro-benchmarks (pytest-benchmark)...")
        after = run_pytest_benchmarks()
        report["engine_microbenchmarks"]["after_optimization"] = after
        for key, before in BASELINE_BEFORE.items():
            match = next(
                (v for k, v in after.items() if key.split("_")[0] in k), None
            )
            if match:
                report["engine_microbenchmarks"][f"speedup_{key}"] = (
                    before / match["min_s"]
                )

    print(f"running selection comparison (jobs={jobs})...")
    report["selection_comparison"] = run_selection_benchmark(args.full, jobs)

    print(f"running batched-vs-event-loop build (jobs={jobs})...")
    report["batched_build"] = run_build_benchmark(args.full, jobs)

    print(f"running flat-vs-fabric build (jobs={jobs})...")
    report["fabric_builds"] = run_fabric_benchmark(args.full, jobs)

    print(f"running full-suite cold/warm build (jobs={jobs})...")
    report["full_suite_build"] = run_full_suite_build_benchmark(
        args.full, jobs
    )

    runs = append_run(Path(args.output), report)
    print(f"appended run {len(runs)} to {args.output}")
    sel = report["selection_comparison"]
    print(
        f"serial {sel['serial_cold_s']:.2f}s | "
        f"parallel(x{jobs}) {sel['parallel_cold_s']:.2f}s | "
        f"warm cache {sel['warm_cache_s']:.2f}s "
        f"({sel['warm_cache_stats']['simulations']} simulations)"
    )
    build = report["batched_build"]
    print(
        f"cold build: event loop {build['event_loop_cold_build_s']:.2f}s | "
        f"batched {build['batched_cold_build_s']:.2f}s "
        f"({build['speedup_batched_vs_event_loop']:.1f}x, hashes identical)"
    )
    fabric = report["fabric_builds"]
    print(
        f"fabric build: flat {fabric['flat_cold_build_s']:.2f}s | "
        f"leaf-spine 2:1 {fabric['leaf_spine_2to1_cold_build_s']:.2f}s "
        f"({fabric['overhead_fabric_vs_flat']:.1f}x)"
    )
    suite = report["full_suite_build"]
    print(
        f"full suite ({len(suite['workload']['collectives'])} collectives): "
        f"cold {suite['cold_build_s']:.2f}s "
        f"({suite['cold_simulations']} simulations) | "
        f"warm {suite['warm_build_s']:.2f}s (0 simulations, hash identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
