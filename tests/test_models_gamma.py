"""Tests for the gamma(P) platform function."""

import pytest

from repro.errors import EstimationError
from repro.models.gamma import GammaFunction

#: The paper's Table 1 values for Grisou.
GRISOU_TABLE = {3: 1.114, 4: 1.219, 5: 1.283, 6: 1.451, 7: 1.540}


class TestDefinition:
    def test_gamma_2_is_one_by_definition(self):
        gamma = GammaFunction(GRISOU_TABLE)
        assert gamma(2) == 1.0

    def test_gamma_below_2_is_one(self):
        gamma = GammaFunction(GRISOU_TABLE)
        assert gamma(1) == 1.0

    def test_measured_values_returned_exactly(self):
        gamma = GammaFunction(GRISOU_TABLE)
        for procs, value in GRISOU_TABLE.items():
            assert gamma(procs) == pytest.approx(value)

    def test_invalid_procs_rejected(self):
        with pytest.raises(EstimationError):
            GammaFunction({1: 0.5})

    def test_non_positive_gamma_rejected(self):
        with pytest.raises(EstimationError):
            GammaFunction({3: 0.0})


class TestInterpolationAndExtrapolation:
    def test_interpolates_between_points(self):
        gamma = GammaFunction({3: 1.1, 5: 1.3})
        assert gamma(4) == pytest.approx(1.2)

    def test_extrapolates_linearly(self):
        # Perfectly linear table: gamma(P) = 0.1 P + 0.8.
        gamma = GammaFunction({p: 0.1 * p + 0.8 for p in range(3, 8)})
        assert gamma(8) == pytest.approx(1.6, rel=1e-6)
        assert gamma(20) == pytest.approx(2.8, rel=1e-6)

    def test_extrapolation_clamped_to_one(self):
        # A (pathological) decreasing table must never predict gamma < 1.
        gamma = GammaFunction({3: 1.01, 4: 1.005, 5: 1.001})
        assert gamma(100) >= 1.0

    def test_regression_line_exposed(self):
        gamma = GammaFunction({p: 0.1 * p + 0.8 for p in range(3, 8)})
        intercept, slope = gamma.regression_line()
        assert slope == pytest.approx(0.1, rel=1e-6)
        assert intercept == pytest.approx(0.8, rel=1e-6)

    def test_paper_grisou_extrapolation_is_reasonable(self):
        """gamma(8), needed for the binomial root at P=90, stays near-linear."""
        gamma = GammaFunction(GRISOU_TABLE)
        assert 1.5 < gamma(8) < 1.85

    def test_max_measured(self):
        assert GammaFunction(GRISOU_TABLE).max_measured == 7


class TestIdeal:
    def test_ideal_gamma_is_identically_one(self):
        gamma = GammaFunction.ideal()
        for procs in (2, 3, 7, 50, 1000):
            assert gamma(procs) == 1.0

    def test_monotone_for_increasing_tables(self):
        gamma = GammaFunction(GRISOU_TABLE)
        values = [gamma(p) for p in range(2, 30)]
        assert values == sorted(values)
