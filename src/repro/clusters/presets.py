"""Parameterisations of the paper's experimental platforms.

The paper (§5.1) evaluates on two dedicated clusters of the Grid'5000 Nancy
site:

* **Grisou** — 51 nodes, 2× Intel Xeon E5-2630 v3 per node, 10 Gbps
  Ethernet; experiments run one process per CPU (2 per node), up to 90
  processes.
* **Gros** — 124 nodes, 1× Intel Xeon Gold 5220 per node, 2×25 Gbps
  Ethernet; one process per CPU (1 per node), up to 124 processes.

The fabric parameters below are *not* measured on Grid'5000 (we have no
cluster); they are set from the published link speeds plus typical TCP/
Ethernet software costs, then sanity-checked against the paper's Table 1:
the simulated γ(P) must grow near-linearly from 1 at P=2 into the 1.4–1.6
range at P=7, with Grisou (slower NIC, higher latency) above Gros.  Absolute
execution times therefore differ from the paper; the comparative behaviour
— algorithm ranking, crossover sizes, selection accuracy — is what the
simulation preserves (see DESIGN.md §2).
"""

from __future__ import annotations

from repro.clusters.spec import ClusterSpec
from repro.errors import SimulationError
from repro.sim.network import NetworkParams
from repro.units import KiB, gbit_per_s_to_byte_time

#: Default run-to-run jitter on a dedicated cluster (~1.5%).
DEFAULT_NOISE_SIGMA = 0.015

GRISOU = ClusterSpec(
    name="grisou",
    nodes=51,
    procs_per_node=2,
    network=NetworkParams(
        # 10 GbE store-and-forward switch + TCP stack traversal.
        latency=55e-6,
        byte_time_out=gbit_per_s_to_byte_time(10.0),
        byte_time_in=gbit_per_s_to_byte_time(10.0),
        per_message_overhead=1.8e-6,
        send_overhead=4.0e-6,
        recv_overhead=4.0e-6,
        eager_limit=32 * KiB,
        control_latency=40e-6,
        shm_latency=0.9e-6,
        shm_byte_time=0.05e-9,
    ),
    noise_sigma=DEFAULT_NOISE_SIGMA,
    # Grisou nodes expose four 10 GbE ports; with two ranks per node each
    # rank gets its own port, so co-located ranks do not contend on egress.
    nics_per_node=2,
)

GROS = ClusterSpec(
    name="gros",
    nodes=124,
    procs_per_node=1,
    network=NetworkParams(
        # 2x25 GbE, newer NICs and switch: lower latency, 25 Gbit/s per flow.
        latency=30e-6,
        byte_time_out=gbit_per_s_to_byte_time(25.0),
        byte_time_in=gbit_per_s_to_byte_time(25.0),
        per_message_overhead=1.2e-6,
        send_overhead=2.5e-6,
        recv_overhead=2.5e-6,
        eager_limit=32 * KiB,
        control_latency=22e-6,
        shm_latency=0.8e-6,
        shm_byte_time=0.04e-9,
    ),
    noise_sigma=DEFAULT_NOISE_SIGMA,
)

#: A small fast cluster for examples and tests (not from the paper).
MINICLUSTER = ClusterSpec(
    name="minicluster",
    nodes=16,
    procs_per_node=1,
    network=NetworkParams(
        latency=10e-6,
        byte_time_out=gbit_per_s_to_byte_time(40.0),
        byte_time_in=gbit_per_s_to_byte_time(40.0),
        per_message_overhead=0.6e-6,
        send_overhead=0.5e-6,
        recv_overhead=0.5e-6,
        eager_limit=16 * KiB,
        control_latency=8e-6,
        shm_latency=0.5e-6,
        shm_byte_time=0.03e-9,
    ),
    noise_sigma=0.0,
)

PRESETS: dict[str, ClusterSpec] = {
    spec.name: spec for spec in (GRISOU, GROS, MINICLUSTER)
}


def get_preset(name: str) -> ClusterSpec:
    """Look up a preset cluster by name; raises with the known names."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise SimulationError(f"unknown cluster {name!r}; known: {known}") from None
