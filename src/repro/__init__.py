"""repro: model-based selection of optimal MPI collective algorithms.

A complete, simulator-backed reproduction of Nuriyev & Lastovetsky,
"A New Model-Based Approach to Performance Comparison of MPI Collective
Algorithms" (PaCT 2021).  See README.md for a tour and DESIGN.md for the
system inventory.

Quickstart::

    from repro import GRISOU, calibrate_platform, ModelBasedSelector

    calibration = calibrate_platform(GRISOU)
    selector = ModelBasedSelector(calibration.platform)
    choice = selector.select(procs=90, nbytes=1 << 20)
    print(choice.describe())
"""

from repro.clusters import GRISOU, GROS, MINICLUSTER, ClusterSpec, get_preset
from repro.collectives import BCAST_ALGORITHMS
from repro.estimation import (
    AlphaBeta,
    PlatformModel,
    calibrate_platform,
    estimate_alpha_beta,
    estimate_gamma,
    estimate_hockney_p2p,
)
from repro.measure import time_bcast, time_bcast_then_gather, time_gather
from repro.models import (
    DERIVED_BCAST_MODELS,
    TRADITIONAL_BCAST_MODELS,
    GammaFunction,
    HockneyParams,
)
from repro.estimation.reduce_calibration import calibrate_reduce
from repro.mpiblib import CollectiveBenchmark
from repro.selection import (
    DecisionTable,
    MeasuredOracle,
    ModelBasedSelector,
    OmpiFixedSelector,
    Selection,
    build_decision_table,
    ompi_bcast_decision,
)
from repro.selection.ompi_fixed import ompi_reduce_decision

__version__ = "1.0.0"

__all__ = [
    "BCAST_ALGORITHMS",
    "DERIVED_BCAST_MODELS",
    "GRISOU",
    "GROS",
    "MINICLUSTER",
    "TRADITIONAL_BCAST_MODELS",
    "AlphaBeta",
    "ClusterSpec",
    "DecisionTable",
    "GammaFunction",
    "HockneyParams",
    "MeasuredOracle",
    "ModelBasedSelector",
    "OmpiFixedSelector",
    "PlatformModel",
    "Selection",
    "CollectiveBenchmark",
    "build_decision_table",
    "calibrate_platform",
    "calibrate_reduce",
    "estimate_alpha_beta",
    "estimate_gamma",
    "estimate_hockney_p2p",
    "get_preset",
    "ompi_bcast_decision",
    "ompi_reduce_decision",
    "time_bcast",
    "time_bcast_then_gather",
    "time_gather",
]
