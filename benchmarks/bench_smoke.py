"""CI smoke gate for the batched grid simulator.

Runs the four-collective calibration grid (a small smoke-sized version)
twice — once through the per-job event-loop engine, once through
:class:`repro.sim.batch.BatchSimulator` — and enforces the two contracts
the batched engine ships under:

* **parity**: the batched results are bit-for-bit identical to the
  event-loop results, cell for cell;
* **speed**: the batched pass takes at most 0.9x the event-loop wall
  time (in practice it is far below that: seed-dedupe alone halves the
  noise-free work, and the columnar kernels skip the event loop
  entirely for the dominant grids).

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py
    PYTHONPATH=src python benchmarks/bench_smoke.py --procs 12 --ratio 0.9
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.clusters import MINICLUSTER  # noqa: E402
from repro.collectives import BARRIER_ALGORITHMS, GATHER_ALGORITHMS  # noqa: E402
from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS  # noqa: E402
from repro.collectives.reduce import REDUCE_ALGORITHMS  # noqa: E402
from repro.estimation.alphabeta import alphabeta_prefetch_jobs  # noqa: E402
from repro.estimation.barrier_calibration import barrier_prefetch_jobs  # noqa: E402
from repro.estimation.gather_calibration import gather_prefetch_jobs  # noqa: E402
from repro.estimation.reduce_calibration import (  # noqa: E402
    reduce_alphabeta_prefetch_jobs,
)
from repro.exec import execute_job  # noqa: E402
from repro.sim.batch import BatchSimulator  # noqa: E402
from repro.units import KiB, MiB  # noqa: E402


def smoke_grid(procs: int) -> list:
    sizes = (1 * KiB, 64 * KiB, 1 * MiB)
    jobs = []
    for algorithm in PAPER_BCAST_ALGORITHMS:
        jobs += alphabeta_prefetch_jobs(
            MINICLUSTER, algorithm, procs=procs, sizes=sizes
        )
    for algorithm in REDUCE_ALGORITHMS:
        jobs += reduce_alphabeta_prefetch_jobs(
            MINICLUSTER, algorithm, procs=procs, sizes=sizes
        )
    for algorithm in GATHER_ALGORITHMS:
        jobs += gather_prefetch_jobs(
            MINICLUSTER, algorithm, procs=procs, sizes=sizes
        )
    for algorithm in BARRIER_ALGORITHMS:
        jobs += barrier_prefetch_jobs(
            MINICLUSTER, algorithm, proc_counts=(4, procs)
        )
    return jobs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--procs", type=int, default=12)
    parser.add_argument(
        "--ratio",
        type=float,
        default=0.9,
        help="maximum allowed batched/event-loop wall-time ratio",
    )
    args = parser.parse_args(argv)

    jobs = smoke_grid(args.procs)
    print(f"smoke grid: {len(jobs)} cells (procs={args.procs})")

    start = time.perf_counter()
    want = [execute_job(job) for job in jobs]
    event_loop_s = time.perf_counter() - start

    sim = BatchSimulator()
    start = time.perf_counter()
    got = sim.run(jobs)
    batched_s = time.perf_counter() - start

    mismatches = sum(1 for a, b in zip(got, want) if a != b)
    ratio = batched_s / event_loop_s
    print(
        f"event loop {event_loop_s:.3f}s | batched {batched_s:.3f}s "
        f"(ratio {ratio:.3f}, {event_loop_s / batched_s:.1f}x) | "
        f"stats {sim.stats.as_dict()}"
    )
    if mismatches:
        print(f"FAIL: {mismatches}/{len(jobs)} cells diverged from event loop")
        return 1
    if sim.stats.columnar == 0:
        print("FAIL: no cell took the columnar path")
        return 1
    if ratio > args.ratio:
        print(f"FAIL: batched/event-loop ratio {ratio:.3f} > {args.ratio}")
        return 1
    print(f"OK: bit-identical, ratio {ratio:.3f} <= {args.ratio}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
