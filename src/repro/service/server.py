"""The online algorithm-selection server.

Three pieces, separable for testing:

* :class:`SelectionService` — transport-independent query engine: input
  validation, an LRU cache in front of decision-table lookup, metrics,
  and hot reload of the artifact registry;
* :class:`HttpServer` — a stdlib-only asyncio HTTP/1.1 front end with
  keep-alive, bounded bodies, typed JSON error responses and graceful
  drain (stop accepting, finish in-flight requests, then close);
* :class:`ServiceThread` — runs an :class:`HttpServer` on a private
  event loop in a background thread, for tests and the load harness.

Endpoints (reference in docs/SERVICE.md):

========  ============  =================================================
method    path          behaviour
========  ============  =================================================
POST      /select       one query object, or ``{"queries": [...]}``
GET       /artifacts    registry listing (ids, grids, load errors)
GET       /healthz      liveness + artifact count
GET       /metrics      Prometheus text format
POST      /reload       rescan the artifact directory (also ``SIGHUP``)
========  ============  =================================================

The hot path is dictionary + bisect work only — no simulation, no model
evaluation — so a query costs microseconds; the load harness
(``benchmarks/run_service_bench.py``) asserts p99 latency and that served
selections are bit-identical to offline ``DecisionTable.select``.
"""

from __future__ import annotations

import asyncio
import errno
import json
import logging
import signal
import threading
from collections import OrderedDict
from pathlib import Path

from repro import obs
from repro.errors import ArtifactError, PortInUseError, ServiceError
from repro.service.artifact import ArtifactRegistry, SelectionArtifact
from repro.service.metrics import ServiceMetrics

_logger = logging.getLogger("repro.service")

#: Most queries allowed in one batched ``POST /select``.
MAX_BATCH = 4096

#: Largest accepted request body, in bytes.
MAX_BODY = 4 << 20

#: Seconds a connection may sit idle (or dribble a request) before the
#: server closes it; bounds the damage of slow-loris style clients.
DEFAULT_READ_TIMEOUT = 30.0

#: Requests slower than this are logged with their trace id (the
#: slow-query log).  Generous for a µs-scale hot path: anything over it
#: means a reload, a huge batch, or trouble worth a log line.
DEFAULT_SLOW_REQUEST_SECONDS = 0.25

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class RequestError(ServiceError):
    """A client error with an HTTP status and a stable machine code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code

    def body(self) -> dict:
        return {"error": {"code": self.code, "message": str(self)}}


class LruCache:
    """Bounded query cache with hit/miss accounting."""

    def __init__(self, maxsize: int = 4096):
        self.maxsize = max(1, int(maxsize))
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


def _require_int(query: dict, name: str, minimum: int, index: int | None) -> int:
    where = "" if index is None else f" (query #{index})"
    value = query.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(
            400, "validation",
            f"{name!r} must be an integer{where}, got {value!r}",
        )
    if value < minimum:
        raise RequestError(
            400, "validation", f"{name!r} must be >= {minimum}{where}, got {value}"
        )
    return value


class SelectionService:
    """Answers "(cluster, collective, P, m) → algorithm" queries."""

    def __init__(
        self,
        registry: ArtifactRegistry,
        *,
        cache_size: int = 4096,
        metrics: ServiceMetrics | None = None,
    ):
        self.registry = registry
        self.metrics = metrics or ServiceMetrics()
        self.cache = LruCache(cache_size)
        self.metrics.artifacts_loaded.set(len(registry))
        #: Why the service is serving last-known-good data, or ``None``
        #: while healthy.  Set by :meth:`reload` (and by a failed
        #: self-tuning recalibration), surfaced by /healthz.
        self.degraded_reason: str | None = None
        #: Optional :class:`~repro.tuning.drift.QuerySampler`: when set
        #: (by :meth:`SelfTuner.attach`), every N-th answered query emits
        #: a forced ``select.query`` span that the sampler captures for
        #: drift replay.  ``None`` keeps the hot path span-free.
        self.sampler = None
        #: The attached :class:`~repro.tuning.tuner.SelfTuner`, if any;
        #: surfaced as the ``tuning`` block of /healthz.
        self.tuner = None
        self._refresh_degraded()

    def _refresh_degraded(self) -> None:
        if self.registry.degraded:
            names = ", ".join(sorted(self.registry.degraded))
            self.degraded_reason = f"serving last-known-good for: {names}"
        else:
            self.degraded_reason = None
        self.metrics.degraded.set(1.0 if self.degraded_reason else 0.0)

    def reload(self) -> dict:
        """Rescan the artifact directory and drop the query cache.

        Never raises: a reload that fails outright (the directory became
        unreadable mid-scan, say) leaves the previous registry state — and
        the query cache — untouched, flips the service into degraded mode,
        and counts a ``reload_failures``.  A rescan that *succeeds* but
        finds corrupted previously-served files likewise keeps serving
        their last-known-good versions (see :class:`ArtifactRegistry`)
        and reports degraded.  Either way in-flight and subsequent
        ``/select`` queries keep getting answers.
        """
        try:
            self.registry.rescan()
        except Exception as error:  # noqa: BLE001 — SIGHUP must not kill us
            self.metrics.reload_failures.inc()
            self.degraded_reason = f"reload failed: {error}"
            self.metrics.degraded.set(1.0)
        else:
            self.cache.clear()
            self.metrics.reloads.inc()
            self.metrics.artifacts_loaded.set(len(self.registry))
            self._refresh_degraded()
        result = {
            "artifacts": len(self.registry),
            "errors": dict(self.registry.errors),
        }
        if self.degraded_reason is not None:
            result["status"] = "degraded"
            result["reason"] = self.degraded_reason
            result["degraded"] = dict(self.registry.degraded)
        return result

    def _validate(self, query, index: int | None = None) -> tuple:
        where = "" if index is None else f" (query #{index})"
        if not isinstance(query, dict):
            raise RequestError(
                400, "validation", f"each query must be a JSON object{where}"
            )
        cluster = query.get("cluster")
        if not isinstance(cluster, str) or not cluster:
            raise RequestError(
                400, "validation", f"'cluster' must be a non-empty string{where}"
            )
        operation = query.get("operation", "bcast")
        if not isinstance(operation, str) or not operation:
            raise RequestError(
                400, "validation", f"'operation' must be a non-empty string{where}"
            )
        fabric = query.get("fabric", "")
        if not isinstance(fabric, str):
            raise RequestError(
                400, "validation", f"'fabric' must be a string{where}"
            )
        procs = _require_int(query, "procs", 1, index)
        nbytes = _require_int(query, "nbytes", 0, index)
        return cluster, operation, fabric, procs, nbytes

    def select_one(self, query, index: int | None = None) -> dict:
        """Validate and answer a single query (LRU-cached)."""
        key = self._validate(query, index)
        self.metrics.queries.inc()
        result = self.cache.get(key)
        if result is not None:
            self.metrics.cache_hits.inc()
        else:
            self.metrics.cache_misses.inc()
            cluster, operation, fabric, procs, nbytes = key
            try:
                artifact = self.registry.lookup(cluster, operation, fabric)
            except ArtifactError as error:
                raise RequestError(404, "unknown_artifact", str(error)) from None
            selection, clamped = artifact.lookup(operation, procs, nbytes)
            result = {
                "cluster": cluster,
                "operation": operation,
                "procs": procs,
                "nbytes": nbytes,
                "algorithm": selection.algorithm,
                "segment_size": selection.segment_size,
                "artifact": artifact.artifact_id,
            }
            if fabric:
                # Echo the routing dimension only when the client asked
                # for it — flat-query response bodies stay unchanged.
                result["fabric"] = fabric
            if clamped:
                # Below-grid queries clamp to the first grid cell; say so
                # instead of presenting the extrapolation as a grid answer.
                result["clamped"] = True
            self.cache.put(key, result)
        if result.get("clamped"):
            self.metrics.clamped.inc(operation=result["operation"])
        self.metrics.selections.inc(
            operation=result["operation"], algorithm=result["algorithm"]
        )
        sampler = self.sampler
        if sampler is not None and sampler.should_sample():
            # Forced span: exists (and runs the recorder's finish hooks,
            # where the sampler listens) even while tracing is off.  The
            # span carries the full served decision so the self-tuning
            # loop can replay it against a measured oracle later, off the
            # request path.
            with obs.span(
                "select.query",
                force=True,
                cluster=result["cluster"],
                operation=result["operation"],
                fabric=result.get("fabric", ""),
                procs=result["procs"],
                nbytes=result["nbytes"],
                algorithm=result["algorithm"],
                segment_size=result["segment_size"],
            ):
                pass
        return result

    def handle_select(self, payload) -> dict:
        """The ``POST /select`` body: one query or ``{"queries": [...]}``."""
        if isinstance(payload, dict) and "queries" in payload:
            queries = payload["queries"]
            if not isinstance(queries, list):
                raise RequestError(
                    400, "validation", "'queries' must be a JSON array"
                )
            if len(queries) > MAX_BATCH:
                raise RequestError(
                    400, "batch_too_large",
                    f"batch of {len(queries)} exceeds the limit of {MAX_BATCH}",
                )
            return {
                "results": [
                    self.select_one(query, index)
                    for index, query in enumerate(queries)
                ]
            }
        return self.select_one(payload)


class HttpServer:
    """Asyncio HTTP front end with keep-alive and graceful drain."""

    def __init__(
        self,
        service: SelectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_timeout: float = 5.0,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        slow_request_seconds: float = DEFAULT_SLOW_REQUEST_SECONDS,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.read_timeout = read_timeout
        self.slow_request_seconds = slow_request_seconds
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown = asyncio.Event()
        self._draining = False

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when ephemeral.

        Raises :class:`~repro.errors.PortInUseError` when the port is
        already bound, so callers can tell "pick another port" apart from
        other socket failures.
        """
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as error:
            if error.errno == errno.EADDRINUSE:
                raise PortInUseError(
                    f"cannot listen on {self.host}:{self.port}: "
                    "address already in use"
                ) from error
            raise
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (signal handlers call this)."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`request_shutdown`, then drain and close."""
        await self._shutdown.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, wait for in-flight requests, close connections."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(self._idle.wait(), self.drain_timeout)
        except asyncio.TimeoutError:
            pass
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while not self._draining:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), self.read_timeout
                    )
                except RequestError as error:
                    # Body limit exceeded: the remaining body is unread, so
                    # the connection cannot be reused — answer and close.
                    try:
                        writer.write(self._render(
                            error.status, error.body(),
                            "application/json", keep_alive=False,
                        ))
                        await writer.drain()
                    except ConnectionError:
                        pass
                    self.service.metrics.requests.inc(
                        endpoint="(read)", status=str(error.status)
                    )
                    break
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    ConnectionError,
                    ValueError,
                ):
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                self._inflight += 1
                self._idle.clear()
                # The span is the request's timer and trace-id source —
                # forced, so it exists even while tracing is off.  Its
                # duration feeds the latency histogram through the
                # span-to-metrics bridge; there is no second clock.
                with obs.span(
                    "http.request", force=True, method=method, endpoint=path
                ) as span:
                    try:
                        status, payload, content_type = self._dispatch(
                            method, path, body
                        )
                    finally:
                        self._inflight -= 1
                        if self._inflight == 0:
                            self._idle.set()
                    span.set_attr("status", status)
                metrics = self.service.metrics
                metrics.observe_request_span(span)
                if span.duration >= self.slow_request_seconds:
                    _logger.warning(
                        "slow request: %s %s -> %d in %.3fs (trace %s)",
                        method, path, status, span.duration, span.trace_id,
                    )
                if path == "/select" and isinstance(payload, dict):
                    # Copy before annotating: single-query payloads are the
                    # LRU cache's own dict, and a per-request trace id must
                    # never be cached into it.
                    payload = dict(payload, trace_id=span.trace_id)
                try:
                    writer.write(
                        self._render(
                            status, payload, content_type, keep_alive,
                            trace_id=span.trace_id,
                        )
                    )
                    await writer.drain()
                except ConnectionError:
                    break
                if not keep_alive:
                    break
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader):
        """Parse one request; ``None`` at EOF; raises on malformed input."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin1").split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise ValueError("truncated headers")
            name, _, value = raw.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise RequestError(
                413, "body_too_large",
                f"request body of {length} bytes exceeds the limit of "
                f"{MAX_BODY}",
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request; returns ``(status, payload, content_type)``."""
        try:
            if path == "/metrics" and method == "GET":
                return 200, self.service.metrics.render(), "text/plain; version=0.0.4"
            if path == "/healthz" and method == "GET":
                # The healthy shape is frozen ({"status": "ok", ...});
                # degraded adds a reason so probes can alert on it.
                health = {
                    "status": "ok",
                    "artifacts": len(self.service.registry),
                }
                if self.service.degraded_reason is not None:
                    health["status"] = "degraded"
                    health["reason"] = self.service.degraded_reason
                if self.service.tuner is not None:
                    # Present only when a SelfTuner is attached — the
                    # healthy shape without one stays frozen.
                    health["tuning"] = self.service.tuner.health()
                return 200, health, "application/json"
            if path == "/artifacts" and method == "GET":
                return (
                    200,
                    {
                        "artifacts": self.service.registry.summaries(),
                        "errors": dict(self.service.registry.errors),
                    },
                    "application/json",
                )
            if path == "/select" and method == "POST":
                try:
                    payload = json.loads(body.decode("utf-8") or "null")
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    raise RequestError(
                        400, "bad_json", f"request body is not JSON: {error}"
                    ) from None
                return 200, self.service.handle_select(payload), "application/json"
            if path == "/reload" and method == "POST":
                # reload() never raises — a failed rescan flips the
                # service into degraded mode and keeps serving.
                return 200, self.service.reload(), "application/json"
            if path in ("/select", "/reload", "/metrics", "/healthz", "/artifacts"):
                raise RequestError(
                    405, "method_not_allowed", f"{method} not allowed on {path}"
                )
            raise RequestError(404, "not_found", f"no such endpoint: {path}")
        except RequestError as error:
            return error.status, error.body(), "application/json"
        except Exception as error:  # never leak a traceback as a hung socket
            return (
                500,
                {"error": {"code": "internal", "message": str(error)}},
                "application/json",
            )

    @staticmethod
    def _render(
        status,
        payload,
        content_type: str,
        keep_alive: bool,
        trace_id: str | None = None,
    ) -> bytes:
        body = (
            payload.encode("utf-8")
            if isinstance(payload, str)
            else json.dumps(payload).encode("utf-8")
        )
        trace_header = f"X-Trace-Id: {trace_id}\r\n" if trace_id else ""
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{trace_header}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin1") + body


async def _serve_async(service: SelectionService, host: str, port: int) -> int:
    server = HttpServer(service, host, port)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        loop.add_signal_handler(signal.SIGHUP, service.reload)
    except (NotImplementedError, RuntimeError, AttributeError):  # pragma: no cover
        pass
    print(
        f"repro selection service on http://{server.host}:{server.port} "
        f"({len(service.registry)} artifacts); SIGTERM drains, SIGHUP reloads"
    )
    await server.serve_until_shutdown()
    print("drained; bye")
    return 0


def serve(
    directory: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 4096,
) -> int:
    """Blocking entry point used by ``repro serve``."""
    registry = ArtifactRegistry(directory)
    service = SelectionService(registry, cache_size=cache_size)
    return asyncio.run(_serve_async(service, host, port))


class ServiceThread:
    """An :class:`HttpServer` on a private loop in a daemon thread.

    Context-manager: ``with ServiceThread(service) as handle:`` gives a
    running server at ``handle.port``; exit drains it.  Used by the test
    suite and the load harness — signal handlers are not installed
    (they only work on the main thread).
    """

    def __init__(
        self,
        service: SelectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.server: HttpServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise ServiceError("service thread did not start within 10 s")
        if self._error is not None:
            if isinstance(self._error, ServiceError):
                raise self._error  # typed: e.g. PortInUseError
            raise ServiceError(f"service thread failed: {self._error}")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = HttpServer(
            self.service, self.host, self.port,
            read_timeout=self.read_timeout,
        )
        try:
            await self.server.start()
        except (OSError, ServiceError) as error:
            self._error = error
            self._ready.set()
            return
        self.port = self.server.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def stop(self) -> None:
        """Drain and join.  Idempotent: safe to call repeatedly, after a
        failed :meth:`start`, or on a thread that never started."""
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed by a previous stop()
        if self._thread.ident is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
