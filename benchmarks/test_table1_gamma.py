"""Benchmark: regenerate the paper's Table 1 (estimated γ(P)).

Paper values for reference (PaCT 2021, Table 1):

    P   Grisou   Gros
    3   1.114    1.084
    4   1.219    1.170
    5   1.283    1.254
    6   1.451    1.339
    7   1.540    1.424

The *shape* checks encoded as assertions: γ(2) = 1, γ grows near-linearly
with P into the 1.3-1.8 band at P = 7, and the slower-fabric cluster
(Grisou) sits above the faster one (Gros).
"""

import pytest

from repro.bench.tables import format_table1
from repro.estimation.gamma import estimate_gamma

PAPER_TABLE1 = {
    "grisou": {3: 1.114, 4: 1.219, 5: 1.283, 6: 1.451, 7: 1.540},
    "gros": {3: 1.084, 4: 1.170, 5: 1.254, 6: 1.339, 7: 1.424},
}


@pytest.fixture(scope="module")
def gamma_estimates(grisou, gros):
    return {
        "grisou": estimate_gamma(grisou),
        "gros": estimate_gamma(gros),
    }


def test_table1_gamma(benchmark, gamma_estimates, grisou):
    """Times one γ(P) estimation run; prints the full Table 1."""
    estimates = gamma_estimates

    def run_gamma_estimation():
        return estimate_gamma(grisou, max_procs=4, seed=99)

    benchmark.pedantic(run_gamma_estimation, rounds=1, iterations=1)

    print()
    print(format_table1(estimates))
    print("\nPaper Table 1 for comparison:")
    for cluster, table in PAPER_TABLE1.items():
        print(f"  {cluster}: " + "  ".join(f"g({p})={g}" for p, g in table.items()))

    for cluster, estimate in estimates.items():
        table = estimate.table
        assert table[2] == 1.0
        values = [table[p] for p in sorted(table)]
        assert values == sorted(values), f"{cluster}: gamma not monotone"
        assert 1.3 < table[7] < 1.8, f"{cluster}: gamma(7)={table[7]}"
        # Near-linearity (the paper's extrapolation premise).
        gamma_fn = estimate.function()
        intercept, slope = gamma_fn.regression_line()
        for procs, value in table.items():
            assert intercept + slope * procs == pytest.approx(value, abs=0.06)
        # Within 10% of the paper's measured values, point by point.
        for procs, value in PAPER_TABLE1[cluster].items():
            assert table[procs] == pytest.approx(value, rel=0.10), (
                f"{cluster} gamma({procs})"
            )
    # The slower fabric exhibits the stronger serialisation effect.
    assert estimates["grisou"].table[7] > estimates["gros"].table[7]
