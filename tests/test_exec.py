"""Tests for the execution subsystem: jobs, cache, runner, equivalence.

The load-bearing properties:

* equal experiments fingerprint equal, different experiments different —
  on both :class:`ClusterSpec` and :class:`SimJob`;
* the persistent cache survives a round trip, drops stale-salt files, and
  counts its traffic;
* parallel execution is bit-for-bit identical to serial, for batches and
  for the full Table-3 pipeline;
* a warm persistent cache replays the full pipeline with *zero* new
  simulations.
"""

from __future__ import annotations

import json

import pytest

from repro.clusters import MINICLUSTER
from repro.clusters.spec import ClusterSpec
from repro.errors import SimulationError
from repro.exec import (
    CACHE_SCHEMA,
    ParallelRunner,
    ResultCache,
    SimJob,
    code_salt,
    execute_job,
)
from repro.measure import time_bcast
from repro.units import KiB


def bcast_job(seed=0, nbytes=8 * KiB, algorithm="binomial", procs=8):
    return SimJob(
        spec=MINICLUSTER,
        kind="bcast",
        procs=procs,
        algorithm=algorithm,
        nbytes=nbytes,
        segment_size=0,
        seed=seed,
    )


class TestClusterSpecFingerprint:
    def test_stable_across_instances(self):
        a = MINICLUSTER.fingerprint()
        b = ClusterSpec(
            name=MINICLUSTER.name,
            nodes=MINICLUSTER.nodes,
            procs_per_node=MINICLUSTER.procs_per_node,
            network=MINICLUSTER.network,
            noise_sigma=MINICLUSTER.noise_sigma,
            nics_per_node=MINICLUSTER.nics_per_node,
            slow_nodes=MINICLUSTER.slow_nodes,
        ).fingerprint()
        assert a == b

    def test_every_fidelity_knob_changes_it(self):
        base = MINICLUSTER.fingerprint()
        assert MINICLUSTER.with_noise(0.5).fingerprint() != base
        smaller = ClusterSpec(
            name=MINICLUSTER.name,
            nodes=MINICLUSTER.nodes - 1,
            procs_per_node=MINICLUSTER.procs_per_node,
            network=MINICLUSTER.network,
            noise_sigma=MINICLUSTER.noise_sigma,
        )
        assert smaller.fingerprint() != base

    def test_name_alone_distinguishes(self):
        renamed = ClusterSpec(
            name="other",
            nodes=MINICLUSTER.nodes,
            procs_per_node=MINICLUSTER.procs_per_node,
            network=MINICLUSTER.network,
            noise_sigma=MINICLUSTER.noise_sigma,
        )
        assert renamed.fingerprint() != MINICLUSTER.fingerprint()


class TestSimJob:
    def test_fingerprint_stable_and_distinct(self):
        assert bcast_job().fingerprint() == bcast_job().fingerprint()
        base = bcast_job().fingerprint()
        assert bcast_job(seed=1).fingerprint() != base
        assert bcast_job(nbytes=16 * KiB).fingerprint() != base
        assert bcast_job(algorithm="chain").fingerprint() != base
        assert bcast_job(procs=4).fingerprint() != base

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown job kind"):
            SimJob(spec=MINICLUSTER, kind="alltoallw", procs=4)

    def test_execute_matches_direct_measurement(self):
        job = bcast_job()
        direct = time_bcast(
            MINICLUSTER, "binomial", 8, 8 * KiB, 0, seed=0
        )
        assert execute_job(job) == direct


class TestResultCache:
    def test_roundtrip_and_persistence(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("k1") is None
        cache.put("k1", 1.5)
        assert cache.get("k1") == 1.5
        cache.close()

        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get("k1") == 1.5
        assert reopened.stats.loaded == 1
        reopened.close()

    def test_stale_salt_drops_everything(self, tmp_path):
        path = tmp_path / f"results-v{CACHE_SCHEMA}.jsonl"
        lines = [json.dumps({"schema": CACHE_SCHEMA, "salt": "stale"})]
        lines += [json.dumps({"k": f"k{i}", "v": float(i)}) for i in range(3)]
        path.write_text("\n".join(lines) + "\n")

        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        assert cache.stats.invalidated == 3
        # The file was rewritten with the current salt.
        header = json.loads(path.read_text().splitlines()[0])
        assert header["salt"] == code_salt()
        cache.close()

    def test_corrupt_line_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("good", 2.0)
        cache.close()
        with open(cache.path, "a") as handle:
            handle.write("{not json\n")
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.stats.corrupt_lines == 1
        assert reopened.get("good") == 2.0
        reopened.close()

    def test_truncated_tail_skipped_and_sanitized(self, tmp_path):
        """A line torn mid-write (crash, full disk) is dropped, counted,
        and scrubbed from the file so the next open is clean."""
        cache = ResultCache(tmp_path)
        cache.put("good", 2.0)
        cache.put("torn", 3.0)
        cache.close()
        raw = cache.path.read_bytes()
        cache.path.write_bytes(raw[:-9])  # tear the final record

        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get("good") == 2.0
        assert reopened.get("torn") is None
        assert reopened.stats.corrupt_lines == 1
        reopened.close()

        clean = ResultCache(tmp_path)  # rewrite scrubbed the torn line
        assert clean.stats.corrupt_lines == 0
        assert len(clean) == 1
        clean.close()

    def test_binary_garbage_and_bad_header_tolerated(self, tmp_path):
        path = tmp_path / f"results-v{CACHE_SCHEMA}.jsonl"
        lines = [
            json.dumps(["not", "a", "dict"]).encode(),  # header not a dict
            b"\xff\xfe garbage \x00",                   # not UTF-8
            json.dumps({"k": "ok", "v": 4.0}).encode(),
        ]
        path.write_bytes(b"\n".join(lines) + b"\n")
        cache = ResultCache(tmp_path)
        # Non-dict header counts as a salt mismatch: entries invalidated.
        assert cache.get("ok") is None
        assert len(cache) == 0
        cache.put("fresh", 1.0)
        cache.close()
        reopened = ResultCache(tmp_path)
        assert reopened.get("fresh") == 1.0
        assert reopened.stats.corrupt_lines == 0
        reopened.close()

    def test_stats_count_traffic(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get("missing")
        cache.put("k", 1.0)
        cache.put("k", 1.0)  # duplicate put is a no-op
        cache.get("k")
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "loaded": 0,
            "invalidated": 0,
            "corrupt_lines": 0,
        }
        cache.close()


class TestParallelRunner:
    BATCH = [bcast_job(seed=s, algorithm=a)
             for s in (0, 1) for a in ("binomial", "chain", "linear")]

    def test_parallel_bit_identical_to_serial(self):
        serial = ParallelRunner(jobs=1)
        parallel = ParallelRunner(jobs=2)
        try:
            assert serial.run(self.BATCH) == parallel.run(self.BATCH)
        finally:
            serial.close()
            parallel.close()

    def test_memo_avoids_resimulation(self):
        runner = ParallelRunner(jobs=1)
        first = runner.run(self.BATCH)
        assert runner.stats.simulations == len(self.BATCH)
        second = runner.run(self.BATCH)
        assert second == first
        assert runner.stats.simulations == len(self.BATCH)
        assert runner.stats.memo_hits == len(self.BATCH)
        runner.close()

    def test_duplicate_jobs_in_one_batch_simulate_once_each(self):
        runner = ParallelRunner(jobs=1, batch=False)
        runner.prefetch(self.BATCH + self.BATCH)
        assert runner.stats.simulations == len(self.BATCH)
        runner.close()

    def test_batched_prefetch_also_dedupes_seeds(self):
        # MINICLUSTER is noise-free, so the batched path collapses the
        # seed axis too: one simulation per (algorithm), not per (seed,
        # algorithm) — and the results must match the serial path.
        serial = ParallelRunner(jobs=1, batch=False)
        batched = ParallelRunner(jobs=1, batch=True)
        batched.prefetch(self.BATCH + self.BATCH)
        assert batched.run(self.BATCH) == serial.run(self.BATCH)
        assert batched.stats.simulations == 3  # binomial, chain, linear
        # 12 submitted = 6 exact-duplicate fingerprints folded up front,
        # then the seed axis collapses the remaining 6 to 3 dedupe keys.
        assert batched.stats.batched_cells == 6
        assert batched.stats.deduped_cells == 3
        serial.close()
        batched.close()

    def test_persistent_cache_feeds_second_runner(self, tmp_path):
        first = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        results = first.run(self.BATCH)
        first.close()

        second = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        assert second.run(self.BATCH) == results
        assert second.stats.simulations == 0
        assert second.stats.cache_hits == len(self.BATCH)
        second.close()


class _ExplodingPool:
    """Stands in for an executor whose workers have all died."""

    def map(self, fn, jobs, chunksize=1):
        from concurrent.futures.process import BrokenProcessPool

        raise BrokenProcessPool("worker died")

    def shutdown(self, wait=False, cancel_futures=False):
        pass


class TestPoolCrashRecovery:
    BATCH = [bcast_job(seed=s, algorithm=a)
             for s in (10, 11) for a in ("binomial", "chain", "linear")]

    def expected(self):
        serial = ParallelRunner(jobs=1)
        try:
            return serial.run(self.BATCH)
        finally:
            serial.close()

    def test_one_crash_recovers_via_pool_rebuild(self, monkeypatch):
        runner = ParallelRunner(jobs=2)
        real_make = runner._make_pool
        made = []

        def flaky_make():
            made.append(None)
            return _ExplodingPool() if len(made) == 1 else real_make()

        monkeypatch.setattr(runner, "_make_pool", flaky_make)
        try:
            assert runner.run(self.BATCH) == self.expected()
            assert runner.stats.pool_failures == 1
            assert runner.stats.fallback_batches == 0
        finally:
            runner.close()

    def test_permanent_crash_falls_back_in_process(self, monkeypatch):
        runner = ParallelRunner(jobs=2)
        monkeypatch.setattr(runner, "_make_pool", _ExplodingPool)
        try:
            assert runner.run(self.BATCH) == self.expected()
            assert runner.stats.pool_failures == 2  # both retries burned
            assert runner.stats.fallback_batches == 1
        finally:
            runner.close()

    def test_live_worker_kill_mid_run(self):
        """SIGKILL a real worker process; the batch still completes with
        results bit-identical to serial execution."""
        import os
        import signal
        import time as _time

        runner = ParallelRunner(jobs=2)
        try:
            runner._pool = runner._make_pool()
            # Force workers to actually spawn before the kill.
            list(runner._pool.map(abs, [1, 2, 3]))
            deadline = _time.monotonic() + 10
            while not runner._pool._processes and _time.monotonic() < deadline:
                _time.sleep(0.01)
            victim = next(iter(runner._pool._processes))
            os.kill(victim, signal.SIGKILL)
            assert runner.run(self.BATCH) == self.expected()
            assert runner.stats.pool_failures >= 1
        finally:
            runner.close()


@pytest.fixture(scope="module")
def comparison_inputs(request):
    """Platform + experiment grid for the pipeline equivalence tests."""
    from repro.units import MiB, log_spaced_sizes

    calibration = request.getfixturevalue("mini_calibration")
    sizes = log_spaced_sizes(8 * KiB, 1 * MiB, 4)
    return calibration.platform, 8, sizes


class TestPipelineEquivalence:
    def _rows(self, platform, procs, sizes, runner):
        from repro.bench.runner import selection_comparison
        from repro.selection.oracle import MeasuredOracle

        oracle = MeasuredOracle(
            MINICLUSTER, max_reps=3, runner=runner
        )
        return selection_comparison(
            MINICLUSTER, platform, procs, sizes, oracle=oracle
        )

    def test_jobs4_bit_identical_to_serial(self, comparison_inputs):
        platform, procs, sizes = comparison_inputs
        serial = ParallelRunner(jobs=1)
        parallel = ParallelRunner(jobs=4)
        try:
            rows1 = self._rows(platform, procs, sizes, serial)
            rows4 = self._rows(platform, procs, sizes, parallel)
        finally:
            serial.close()
            parallel.close()
        assert rows1 == rows4

    def test_warm_cache_rerun_simulates_nothing(
        self, comparison_inputs, tmp_path
    ):
        platform, procs, sizes = comparison_inputs
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        rows_cold = self._rows(platform, procs, sizes, cold)
        assert cold.stats.simulations > 0
        cold.close()

        warm = ParallelRunner(jobs=2, cache=ResultCache(tmp_path))
        rows_warm = self._rows(platform, procs, sizes, warm)
        warm.close()
        assert rows_warm == rows_cold
        assert warm.stats.simulations == 0

    def test_oracle_stats_exposed(self, comparison_inputs):
        platform, procs, sizes = comparison_inputs
        runner = ParallelRunner(jobs=1)
        from repro.selection.oracle import MeasuredOracle

        oracle = MeasuredOracle(MINICLUSTER, max_reps=3, runner=runner)
        oracle.best(procs, sizes[0])
        oracle.best(procs, sizes[0])  # replays from the oracle memo
        stats = oracle.stats.as_dict()
        runner.close()
        assert stats["memo_misses"] == len(oracle.algorithms)
        assert stats["memo_hits"] == len(oracle.algorithms)
        assert stats["simulations"] == runner.stats.memo_hits


class TestCalibrationEquivalence:
    def test_parallel_calibration_identical(self):
        from repro.estimation.workflow import calibrate_platform
        from repro.units import MiB, log_spaced_sizes

        kwargs = dict(
            procs=6,
            sizes=log_spaced_sizes(8 * KiB, 256 * KiB, 4),
            gamma_max_procs=4,
            max_reps=3,
        )
        serial = ParallelRunner(jobs=1)
        parallel = ParallelRunner(jobs=2)
        try:
            one = calibrate_platform(MINICLUSTER, runner=serial, **kwargs)
            two = calibrate_platform(MINICLUSTER, runner=parallel, **kwargs)
        finally:
            serial.close()
            parallel.close()
        assert one.platform == two.platform
        assert one.gamma_estimate.table == two.gamma_estimate.table
