"""Direct calibration of the whole-suite collectives (extension).

One generic pipeline body serving allreduce, allgather, alltoall and
scatter.  Like the gather calibration, none of these needs a composite
experiment: every one of them either finishes on all ranks (allreduce,
allgather, alltoall — globally timed) or delivers to the leaves
(scatter — also globally timed, since the root's clock would miss the
last delivery), so the in-context experiment of §4.2 is the operation
itself.  The canonical system stays non-singular for the same reason as
gather's: each model's ``c_α`` is constant in ``m`` while ``c_β`` grows
with it, so the message-size sweep spreads the canonical ``x_i``.

All four families use the ideal platform function — the serialisation
their schedules suffer (NIC funnelling, synchronised rounds) is already
part of the model forms, so there is no separate γ(P) degradation to
calibrate.

All measurements route through the execution subsystem: the whole
schedule is prefetched as one parallel batch and the adaptive loops
replay from the runner's memo, so a warm persistent cache rebuilds any
of these calibrations with zero simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.alphabeta import (
    DEFAULT_SIZES,
    RETRY_SEED_STRIDE,
    AlphaBeta,
    FitQuality,
)
from repro.estimation.regression import get_regressor, mad_screen
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.estimation.workflow import PlatformModel
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.models.allgather_models import DERIVED_ALLGATHER_MODELS
from repro.models.allreduce_models import DERIVED_ALLREDUCE_MODELS
from repro.models.alltoall_models import DERIVED_ALLTOALL_MODELS
from repro.models.base import BcastModel
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams
from repro.models.scatter_models import DERIVED_SCATTER_MODELS

__all__ = [
    "OPERATION_PROFILES",
    "collective_prefetch_jobs",
    "estimate_collective_alpha_beta",
    "calibrate_collective",
]


@dataclass(frozen=True)
class OperationProfile:
    """Everything that distinguishes one operation's direct calibration."""

    operation: str
    #: :class:`~repro.exec.job.SimJob` kind (same name as the operation).
    kind: str
    #: Timing policy of the experiment runs.
    policy: str
    #: Model family name registered in ``MODEL_FAMILIES``.
    model_family: str
    #: The family's model classes, keyed by algorithm name.
    models: dict[str, type[BcastModel]]
    #: Per-algorithm seed stride — distinct per operation so combined
    #: builds never alias two operations' repetition streams.
    seed_multiplier: int


#: Direct-calibration profiles of the four whole-suite collectives.
OPERATION_PROFILES: dict[str, OperationProfile] = {
    profile.operation: profile
    for profile in (
        OperationProfile(
            operation="allreduce",
            kind="allreduce",
            policy="global",
            model_family="allreduce_derived",
            models=DERIVED_ALLREDUCE_MODELS,
            seed_multiplier=7_000_003,
        ),
        OperationProfile(
            operation="allgather",
            kind="allgather",
            policy="global",
            model_family="allgather_derived",
            models=DERIVED_ALLGATHER_MODELS,
            seed_multiplier=7_200_017,
        ),
        OperationProfile(
            operation="alltoall",
            kind="alltoall",
            policy="global",
            model_family="alltoall_derived",
            models=DERIVED_ALLTOALL_MODELS,
            seed_multiplier=7_400_011,
        ),
        OperationProfile(
            operation="scatter",
            kind="scatter",
            policy="global",
            model_family="scatter_derived",
            models=DERIVED_SCATTER_MODELS,
            seed_multiplier=7_600_003,
        ),
    )
}


def _profile(operation: str) -> OperationProfile:
    try:
        return OPERATION_PROFILES[operation]
    except KeyError:
        raise EstimationError(
            f"no direct-calibration profile for {operation!r}; "
            f"known: {', '.join(sorted(OPERATION_PROFILES))}"
        ) from None


def collective_prefetch_jobs(
    spec: ClusterSpec,
    operation: str,
    algorithm: str,
    *,
    procs: int,
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    reps: int = 2,
) -> list[SimJob]:
    """The first ``reps`` repetitions of one algorithm's size sweep.

    Enumerates exactly the seeds :func:`estimate_collective_alpha_beta`'s
    adaptive loop will request, so prefetching these makes the loop
    replay from the runner's memo.
    """
    profile = _profile(operation)
    batch: list[SimJob] = []
    for index, nbytes in enumerate(sizes):
        base = seed + 104_729 * (index + 1)
        for rep in range(reps):
            batch.append(
                SimJob(
                    spec=spec,
                    kind=profile.kind,
                    procs=procs,
                    algorithm=algorithm,
                    nbytes=nbytes,
                    seed=base + 7919 * rep,
                    policy=profile.policy,
                )
            )
    return batch


def estimate_collective_alpha_beta(
    spec: ClusterSpec,
    operation: str,
    model: BcastModel,
    *,
    procs: int | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    prefetch: bool = True,
    screen_mad: float | None = None,
    retry_budget: int = 0,
) -> AlphaBeta:
    """Per-algorithm α/β for one collective (§4.2 applied directly)."""
    profile = _profile(operation)
    if procs is None:
        procs = max(2, spec.max_procs // 2)
    if not 2 <= procs <= spec.max_procs:
        raise EstimationError(
            f"{spec.name}: procs={procs} outside 2..{spec.max_procs}"
        )
    if len(sizes) < 2:
        raise EstimationError("need at least two message sizes to fit a line")
    fit_fn = get_regressor(regressor)
    runner = runner if runner is not None else default_runner()
    if prefetch:
        runner.prefetch(
            collective_prefetch_jobs(
                spec, operation, model.algorithm,
                procs=procs, sizes=sizes, seed=seed,
            )
        )

    memo_before = runner.stats.memo_hits
    sims_before = runner.stats.simulations
    with obs.span(
        "estimate.alphabeta",
        operation=operation,
        algorithm=model.algorithm,
        cluster=spec.name,
        procs=procs,
        sizes=len(sizes),
    ) as ab_span:
        xs: list[float] = []
        ys: list[float] = []
        stats: list[SampleStats] = []
        retried = 0
        for index, nbytes in enumerate(sizes):
            coeffs = model.coefficients(procs, nbytes, 0)
            if coeffs.c_alpha <= 0:
                raise EstimationError(
                    f"{model.algorithm}: degenerate experiment at m={nbytes}"
                )

            def measure_once(rep_seed: int, nbytes: int = nbytes) -> float:
                return runner.run_one(
                    SimJob(
                        spec=spec,
                        kind=profile.kind,
                        procs=procs,
                        algorithm=model.algorithm,
                        nbytes=nbytes,
                        seed=rep_seed,
                        policy=profile.policy,
                    )
                )

            base_seed = seed + 104_729 * (index + 1)
            sample = adaptive_measure(
                measure_once,
                precision=precision,
                max_reps=max_reps,
                seed=base_seed,
            )
            attempt = 0
            while not sample.converged and attempt < retry_budget:
                attempt += 1
                retried += 1
                candidate = adaptive_measure(
                    measure_once,
                    precision=precision,
                    max_reps=max_reps,
                    seed=base_seed + RETRY_SEED_STRIDE * attempt,
                )
                if candidate.relative_precision < sample.relative_precision:
                    sample = candidate
            stats.append(sample)
            xs.append(coeffs.c_beta / coeffs.c_alpha)
            ys.append(sample.mean / coeffs.c_alpha)

        if screen_mad is not None and len(xs) > 2:
            kept = mad_screen(xs, ys, threshold=screen_mad)
        else:
            kept = list(range(len(xs)))
        screened = len(xs) - len(kept)
        fit = fit_fn([xs[i] for i in kept], [ys[i] for i in kept])
        mean_abs_y = sum(abs(ys[i]) for i in kept) / len(kept)
        quality = FitQuality(
            points=len(xs),
            screened=screened,
            fitted=len(kept),
            max_abs_residual=float(fit.max_abs_residual),
            relative_residual=float(
                fit.max_abs_residual / mean_abs_y if mean_abs_y > 0 else 0.0
            ),
            converged=sum(1 for s in stats if s.converged),
            retried=retried,
            mean_relative_precision=float(
                sum(s.relative_precision for s in stats) / len(stats)
            ),
        )
        ab_span.set_attrs(
            memo_hits=runner.stats.memo_hits - memo_before,
            simulations=runner.stats.simulations - sims_before,
            retried=retried,
        )
        return AlphaBeta(
            algorithm=model.algorithm,
            params=HockneyParams(
                alpha=max(fit.intercept, 0.0), beta=max(fit.slope, 0.0)
            ),
            fit=fit,
            points=tuple(zip(xs, ys)),
            sizes=tuple(sizes),
            stats=tuple(stats),
            quality=quality,
        )


def calibrate_collective(
    spec: ClusterSpec,
    operation: str,
    *,
    procs: int | None = None,
    algorithms: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    screen_mad: float | None = None,
    retry_budget: int = 0,
) -> tuple[PlatformModel, dict[str, AlphaBeta]]:
    """Full direct calibration of ``operation`` over a size sweep.

    Returns a :class:`PlatformModel` with the operation's derived model
    family, ready for
    :class:`~repro.selection.model_based.ModelBasedSelector`.
    """
    profile = _profile(operation)
    if algorithms is None:
        algorithms = sorted(profile.models)
    ab_procs = procs if procs is not None else max(2, spec.max_procs // 2)

    with obs.span(
        "calibrate.platform",
        cluster=spec.name,
        estimation="collective",
        model_family=profile.model_family,
        algorithms=",".join(algorithms),
    ):
        runner = runner if runner is not None else default_runner()
        batch: list[SimJob] = []
        for index, name in enumerate(algorithms):
            batch += collective_prefetch_jobs(
                spec,
                operation,
                name,
                procs=ab_procs,
                sizes=sizes,
                seed=seed + profile.seed_multiplier * (index + 1),
            )
        with obs.span(
            "calibrate.prefetch", jobs=len(batch), batched=runner.batch
        ):
            runner.prefetch(batch)

        gamma = GammaFunction.ideal()
        estimates: dict[str, AlphaBeta] = {}
        parameters: dict[str, HockneyParams] = {}
        for index, name in enumerate(algorithms):
            model = profile.models[name](gamma)
            estimate = estimate_collective_alpha_beta(
                spec,
                operation,
                model,
                procs=procs,
                sizes=sizes,
                regressor=regressor,
                precision=precision,
                max_reps=max_reps,
                seed=seed + profile.seed_multiplier * (index + 1),
                runner=runner,
                prefetch=False,
                screen_mad=screen_mad,
                retry_budget=retry_budget,
            )
            estimates[name] = estimate
            parameters[name] = estimate.params

        platform = PlatformModel(
            cluster=spec.name,
            segment_size=0,
            gamma=gamma,
            parameters=parameters,
            model_family=profile.model_family,
        )
        return platform, estimates
