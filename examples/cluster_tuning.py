"""Scenario: tune MPI_Bcast for a brand-new cluster, offline.

An MPI library integrating the paper's method would, at install time on a
new machine: (1) run the calibration experiments once, (2) precompute a
decision table over the (P, m) grid, (3) ship the table so every MPI_Bcast
call resolves its algorithm with a constant-time lookup.

This example walks that deployment on a custom user-defined platform — a
fat 100 GbE cluster that none of the built-in presets describe — and shows
the artefacts (platform JSON, decision-table JSON) that persist.

Run:  python examples/cluster_tuning.py
"""

import json
import tempfile
from pathlib import Path

from repro import (
    ClusterSpec,
    ModelBasedSelector,
    PlatformModel,
    build_decision_table,
    calibrate_platform,
)
from repro.clusters.presets import DEFAULT_NOISE_SIGMA
from repro.selection.decision_table import DecisionTable
from repro.sim.network import NetworkParams
from repro.units import KiB, MiB, format_bytes, gbit_per_s_to_byte_time, log_spaced_sizes


def define_cluster() -> ClusterSpec:
    """A 32-node, 100 GbE cluster with RDMA-like latencies."""
    return ClusterSpec(
        name="fat-ethernet",
        nodes=32,
        procs_per_node=1,
        network=NetworkParams(
            latency=6e-6,
            byte_time_out=gbit_per_s_to_byte_time(100.0),
            byte_time_in=gbit_per_s_to_byte_time(100.0),
            per_message_overhead=0.4e-6,
            send_overhead=0.3e-6,
            recv_overhead=0.3e-6,
            eager_limit=16 * KiB,
            control_latency=5e-6,
            shm_latency=0.4e-6,
            shm_byte_time=0.02e-9,
        ),
        noise_sigma=DEFAULT_NOISE_SIGMA,
    )


def main() -> None:
    cluster = define_cluster()
    workdir = Path(tempfile.mkdtemp(prefix="repro-tuning-"))
    print(f"New platform: {cluster.describe()}")
    print(f"Artefacts in: {workdir}")

    # 1. One-off calibration at install time.
    print("\n[1/3] Calibrating...")
    calibration = calibrate_platform(cluster, procs=16)
    platform_path = workdir / "fat-ethernet.platform.json"
    calibration.platform.save(platform_path)
    print(f"      platform model -> {platform_path.name}")

    # 2. Precompute the decision surface.
    print("[2/3] Building the decision table...")
    platform = PlatformModel.load(platform_path)  # as the library would
    selector = ModelBasedSelector(platform)
    table = build_decision_table(
        selector,
        proc_points=list(range(2, cluster.max_procs + 1, 2)),
        size_points=log_spaced_sizes(1 * KiB, 8 * MiB, 14),
    )
    table_path = workdir / "fat-ethernet.decisions.json"
    table.save(table_path)
    entries = len(table.proc_points) * len(table.size_points)
    size_kib = table_path.stat().st_size / 1024
    print(f"      {entries} entries ({size_kib:.1f} KiB JSON) -> {table_path.name}")

    # 3. What MPI_Bcast would do at run time.
    print("[3/3] Runtime lookups (DecisionTable.select):")
    runtime_table = DecisionTable.load(table_path)
    for procs, nbytes in [(8, 4 * KiB), (24, 256 * KiB), (32, 8 * MiB)]:
        choice = runtime_table.select(procs, nbytes)
        print(f"      P={procs:>3} m={format_bytes(nbytes):>7} -> {choice.describe()}")

    # Show where the decision boundaries fall on this platform.
    print("\nDecision surface (rows = P, columns = message size):")
    header = " ".join(f"{format_bytes(m):>7}" for m in table.size_points[::2])
    print(f"{'P':>4} {header}")
    abbrev = {
        "linear": "lin",
        "chain": "chn",
        "k_chain": "kch",
        "binary": "bin",
        "split_binary": "spl",
        "binomial": "bnm",
    }
    for i in range(0, len(table.proc_points), 4):
        procs = table.proc_points[i]
        row = " ".join(
            f"{abbrev[table.choices[i][j].algorithm]:>7}"
            for j in range(0, len(table.size_points), 2)
        )
        print(f"{procs:>4} {row}")


if __name__ == "__main__":
    main()
