"""Tests for the noise models."""

import numpy as np
import pytest

from repro.sim.noise import LognormalNoise, NoNoise


class TestNoNoise:
    def test_factor_is_one(self):
        noise = NoNoise()
        assert all(noise.factor() == 1.0 for _ in range(10))

    def test_reseed_is_noop(self):
        noise = NoNoise()
        noise.reseed(123)
        assert noise.factor() == 1.0


class TestLognormalNoise:
    def test_zero_sigma_is_deterministic(self):
        noise = LognormalNoise(sigma=0.0, seed=1)
        assert all(noise.factor() == 1.0 for _ in range(5))

    def test_factors_positive(self):
        noise = LognormalNoise(sigma=0.5, seed=2)
        assert all(noise.factor() > 0 for _ in range(1000))

    def test_unit_mean(self):
        noise = LognormalNoise(sigma=0.1, seed=3)
        samples = np.array([noise.factor() for _ in range(20_000)])
        assert samples.mean() == pytest.approx(1.0, rel=0.01)

    def test_sigma_controls_spread(self):
        tight = LognormalNoise(sigma=0.01, seed=4)
        wide = LognormalNoise(sigma=0.2, seed=4)
        tight_samples = np.std([tight.factor() for _ in range(5000)])
        wide_samples = np.std([wide.factor() for _ in range(5000)])
        assert wide_samples > 5 * tight_samples

    def test_same_seed_reproduces_stream(self):
        a = LognormalNoise(sigma=0.05, seed=42)
        b = LognormalNoise(sigma=0.05, seed=42)
        assert [a.factor() for _ in range(20)] == [b.factor() for _ in range(20)]

    def test_reseed_restarts_stream(self):
        noise = LognormalNoise(sigma=0.05, seed=7)
        first = [noise.factor() for _ in range(5)]
        noise.reseed(7)
        assert [noise.factor() for _ in range(5)] == first

    def test_different_seeds_differ(self):
        a = LognormalNoise(sigma=0.05, seed=1)
        b = LognormalNoise(sigma=0.05, seed=2)
        assert [a.factor() for _ in range(5)] != [b.factor() for _ in range(5)]

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LognormalNoise(sigma=-0.1)
