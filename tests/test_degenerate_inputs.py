"""Degenerate-input sweep across every selection layer.

The same query must get the same answer whether it goes through the
:class:`DecisionTable`, the generated Python decision function
(``compile_python``), :meth:`SelectionArtifact.select`, or ``POST
/select`` on a live server — *including* at the corners: ``m = 0``,
``procs = 1``, queries below the decision grid (which clamp to the first
cell, flagged via ``DecisionTable.lookup``) and queries far above it
(genuine floor lookups).  A divergence between layers here would mean a
deployed decision function disagrees with the service that packaged it.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import pytest

from repro.clusters import MINICLUSTER
from repro.selection.codegen import compile_python, generate_c
from repro.service import (
    ArtifactRegistry,
    SelectionService,
    ServiceThread,
    build_artifact,
)
from repro.units import KiB, MiB, log_spaced_sizes

GRID_PROCS = tuple(range(2, 17, 2))
GRID_SIZES = tuple(log_spaced_sizes(8 * KiB, 1 * MiB, 6))

#: The sweep: (procs, nbytes, expect_clamped).
DEGENERATE_POINTS = (
    (1, 0, True),                          # both axes below the grid
    (1, 64 * KiB, True),                   # procs below, size on-grid
    (8, 0, True),                          # size below, procs on-grid
    (2, 1, True),                          # one byte: below the 8 KiB floor
    (2, 8 * KiB - 1, True),                # just under the size floor
    (2, 8 * KiB, False),                   # exactly the grid origin
    (16, 1 * MiB, False),                  # exactly the grid corner
    (500, 1 * MiB, False),                 # far above the proc grid
    (16, 1 << 30, False),                  # 1 GiB: far above the size grid
    (500, 1 << 30, False),                 # far above both axes
)


@pytest.fixture(scope="module")
def artifact(mini_platform):
    return build_artifact(
        MINICLUSTER,
        proc_points=GRID_PROCS,
        size_points=GRID_SIZES,
        platforms={"bcast": mini_platform},
    )


@pytest.fixture(scope="module")
def table(artifact):
    return artifact.entries["bcast"].table


@pytest.fixture(scope="module")
def decision_fn(table):
    return compile_python(table)


@pytest.fixture(scope="module")
def server(artifact, tmp_path_factory):
    directory = tmp_path_factory.mktemp("degenerate-artifacts")
    artifact.save(directory / "minicluster.json")
    service = SelectionService(ArtifactRegistry(directory), cache_size=64)
    with ServiceThread(service) as handle:
        yield handle


def post_select(port, procs, nbytes):
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(
            "POST",
            "/select",
            json.dumps(
                {"cluster": "minicluster", "procs": procs, "nbytes": nbytes}
            ),
        )
        response = conn.getresponse()
        data = json.loads(response.read())
        return response.status, data, response.getheader("X-Trace-Id")
    finally:
        conn.close()


class TestFourLayerAgreement:
    @pytest.mark.parametrize("procs,nbytes,_clamped", DEGENERATE_POINTS)
    def test_table_codegen_artifact_agree(
        self, table, decision_fn, artifact, procs, nbytes, _clamped
    ):
        selection = table.select(procs, nbytes)
        expected = (selection.algorithm, selection.segment_size)
        assert decision_fn(procs, nbytes) == expected
        offline = artifact.select("bcast", procs, nbytes)
        assert (offline.algorithm, offline.segment_size) == expected

    @pytest.mark.parametrize("procs,nbytes,_clamped", DEGENERATE_POINTS)
    def test_server_agrees_with_table(
        self, server, table, procs, nbytes, _clamped
    ):
        selection = table.select(procs, nbytes)
        status, data, _trace = post_select(server.port, procs, nbytes)
        assert status == 200
        assert data["algorithm"] == selection.algorithm
        assert data["segment_size"] == selection.segment_size


class TestClampIndicator:
    @pytest.mark.parametrize("procs,nbytes,clamped", DEGENERATE_POINTS)
    def test_lookup_flags_below_grid(self, table, procs, nbytes, clamped):
        selection, flagged = table.lookup(procs, nbytes)
        assert flagged is clamped
        assert selection == table.select(procs, nbytes)

    def test_clamped_queries_answer_with_first_cell_axis(self, table):
        # A fully below-grid query is the first grid cell exactly.
        selection, flagged = table.lookup(1, 0)
        assert flagged
        assert selection == table.choices[0][0]

    @pytest.mark.parametrize("procs,nbytes,clamped", DEGENERATE_POINTS)
    def test_artifact_lookup_matches_table_lookup(
        self, artifact, table, procs, nbytes, clamped
    ):
        assert artifact.lookup("bcast", procs, nbytes) == table.lookup(
            procs, nbytes
        )

    @pytest.mark.parametrize("procs,nbytes,clamped", DEGENERATE_POINTS)
    def test_server_reports_clamped(self, server, procs, nbytes, clamped):
        status, data, _trace = post_select(server.port, procs, nbytes)
        assert status == 200
        assert data.get("clamped", False) is clamped

    def test_clamped_counter_increments(self, server):
        before = server.service.metrics.clamped.value(operation="bcast")
        # A fresh never-seen below-grid query (avoid the LRU cache).
        status, data, _trace = post_select(server.port, 1, 3)
        assert status == 200 and data["clamped"] is True
        after = server.service.metrics.clamped.value(operation="bcast")
        assert after == before + 1

    def test_generated_sources_document_the_clamp_bounds(self, table):
        from repro.selection.codegen import generate_python

        python_source = generate_python(table)
        c_source = generate_c(table)
        for source in (python_source, c_source):
            assert f"communicator_size < {GRID_PROCS[0]}" in source
            assert f"message_size < {GRID_SIZES[0]}" in source

    def test_c_fallback_branch_is_the_first_cell(self, table):
        """The C backend's unconditional branches clamp like the table."""
        from repro.selection.codegen import C_ALGORITHM_IDS

        first = table.choices[0][0]
        source = generate_c(table)
        # The last emitted decision (the double `if True`/`{` fallback)
        # must be the first grid cell — that is what below-grid clamps to.
        last_algorithm = [
            line for line in source.splitlines() if "*algorithm = " in line
        ][-1]
        assert f"*algorithm = {C_ALGORITHM_IDS[first.algorithm]};" in last_algorithm


class TestTraceIds:
    def test_every_select_response_carries_a_trace_id(self, server):
        status, data, trace = post_select(server.port, 4, 64 * KiB)
        assert status == 200
        assert trace and data["trace_id"] == trace

    def test_trace_ids_are_unique_per_request(self, server):
        ids = {
            post_select(server.port, 4, 64 * KiB)[2] for _ in range(5)
        }
        assert len(ids) == 5


# -- m = 0 no-op convention for the whole-suite collectives ------------------

WHOLE_SUITE = ("allreduce", "allgather", "alltoall", "scatter")


@pytest.fixture(scope="module")
def suite_artifact():
    return build_artifact(
        MINICLUSTER,
        collectives=WHOLE_SUITE,
        proc_points=GRID_PROCS,
        size_points=GRID_SIZES,
        procs=6,
        sizes=(8 * KiB, 64 * KiB, 512 * KiB),
        max_reps=3,
        seed=0,
    )


@pytest.fixture(scope="module")
def suite_server(suite_artifact, tmp_path_factory):
    directory = tmp_path_factory.mktemp("whole-suite-artifacts")
    suite_artifact.save(directory / "minicluster.json")
    service = SelectionService(ArtifactRegistry(directory), cache_size=64)
    with ServiceThread(service) as handle:
        yield handle


def post_select_operation(port, operation, procs, nbytes):
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(
            "POST",
            "/select",
            json.dumps(
                {
                    "cluster": "minicluster",
                    "operation": operation,
                    "procs": procs,
                    "nbytes": nbytes,
                }
            ),
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestWholeSuiteZeroBytes:
    """m = 0 is a no-op end to end for allreduce/allgather/alltoall/scatter.

    Regression for the PR 4 convention the whole-suite modules originally
    missed: their generators used to send zero-byte messages and pay full
    latency at m = 0.  Now all four layers agree — empty schedule (the
    simulator measures exactly 0.0), zero model prediction, a clamped but
    well-defined table answer, and the served decision matching it.
    """

    @pytest.mark.parametrize("operation", WHOLE_SUITE)
    def test_simulator_measures_exactly_zero(self, operation):
        from repro import measure
        from repro.collectives.registry import algorithm_names

        timer = getattr(measure, f"time_{operation}")
        for algorithm in algorithm_names(operation):
            for procs in (2, 5, 8):
                assert timer(MINICLUSTER, algorithm, procs, 0) == 0.0

    @pytest.mark.parametrize("operation", WHOLE_SUITE)
    def test_single_rank_is_also_a_noop(self, operation):
        from repro import measure
        from repro.collectives.registry import algorithm_names

        timer = getattr(measure, f"time_{operation}")
        for algorithm in algorithm_names(operation):
            assert timer(MINICLUSTER, algorithm, 1, 64 * KiB) == 0.0

    @pytest.mark.parametrize("operation", WHOLE_SUITE)
    def test_models_predict_zero(self, suite_artifact, operation):
        platform = suite_artifact.entries[operation].platform
        for procs in (2, 8, 16):
            predictions = platform.predict_all(procs, 0)
            assert predictions and all(
                time == 0.0 for time in predictions.values()
            )

    @pytest.mark.parametrize("operation", WHOLE_SUITE)
    @pytest.mark.parametrize("procs,nbytes", ((1, 0), (8, 0), (2, 1)))
    def test_four_layer_agreement_at_degenerate_points(
        self, suite_artifact, suite_server, operation, procs, nbytes
    ):
        table = suite_artifact.entries[operation].table
        selection = table.select(procs, nbytes)
        expected = (selection.algorithm, selection.segment_size)
        compiled = suite_artifact.entries[operation].compile()
        assert compiled(procs, nbytes) == expected
        offline = suite_artifact.select(operation, procs, nbytes)
        assert (offline.algorithm, offline.segment_size) == expected
        status, data = post_select_operation(
            suite_server.port, operation, procs, nbytes
        )
        assert status == 200
        assert (data["algorithm"], data["segment_size"]) == expected
        assert data.get("clamped", False) is True

    @pytest.mark.parametrize("operation", WHOLE_SUITE)
    def test_segment_sizes_are_zero_everywhere(self, suite_artifact, operation):
        table = suite_artifact.entries[operation].table
        assert all(
            choice.segment_size == 0
            for row in table.choices
            for choice in row
        )
