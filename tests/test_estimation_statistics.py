"""Tests for the CI-driven adaptive measurement (MPIBlib methodology)."""

import math

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation.statistics import adaptive_measure


class TestDeterministicMeasurements:
    def test_converges_immediately_on_identical_samples(self):
        calls = []

        def measure(seed):
            calls.append(seed)
            return 1.5

        stats = adaptive_measure(measure, min_reps=3, max_reps=20)
        # Two bit-identical samples prove determinism; no third run needed.
        assert stats.n == 2
        assert stats.mean == 1.5
        assert stats.std == 0.0
        assert stats.converged
        assert stats.ci_halfwidth == 0.0

    def test_distinct_seeds_passed(self):
        seeds = []
        adaptive_measure(lambda s: (seeds.append(s), 1.0)[1], min_reps=3, max_reps=5)
        assert len(set(seeds)) == len(seeds)


class TestNoisyMeasurements:
    def test_precision_target_met(self):
        rng = np.random.default_rng(0)

        def measure(seed):
            return float(1.0 + 0.05 * rng.standard_normal())

        stats = adaptive_measure(measure, precision=0.025, max_reps=100)
        assert stats.converged
        assert stats.relative_precision <= 0.025

    def test_high_variance_hits_cap_without_converging(self):
        rng = np.random.default_rng(1)

        def measure(seed):
            return float(abs(1.0 + 5.0 * rng.standard_normal())) + 0.01

        stats = adaptive_measure(measure, precision=0.001, max_reps=8)
        assert stats.n == 8
        assert not stats.converged

    def test_normality_p_value_attached_for_gaussian_samples(self):
        rng = np.random.default_rng(2)

        def measure(seed):
            return float(10.0 + 0.5 * rng.standard_normal())

        stats = adaptive_measure(measure, precision=1e-6, max_reps=30)
        assert stats.normality_p is not None
        assert stats.normality_p > 0.001  # Gaussian data should not be rejected

    def test_mean_estimates_true_mean(self):
        rng = np.random.default_rng(3)
        true_mean = 2.5

        def measure(seed):
            return float(true_mean * (1 + 0.02 * rng.standard_normal()))

        stats = adaptive_measure(measure, precision=0.01, max_reps=50)
        assert stats.mean == pytest.approx(true_mean, rel=0.02)


class TestValidation:
    def test_invalid_precision(self):
        with pytest.raises(EstimationError):
            adaptive_measure(lambda s: 1.0, precision=0.0)

    def test_invalid_confidence(self):
        with pytest.raises(EstimationError):
            adaptive_measure(lambda s: 1.0, confidence=1.5)

    def test_invalid_rep_bounds(self):
        with pytest.raises(EstimationError):
            adaptive_measure(lambda s: 1.0, min_reps=10, max_reps=5)

    def test_negative_sample_rejected(self):
        with pytest.raises(EstimationError):
            adaptive_measure(lambda s: -1.0)

    def test_nan_sample_rejected(self):
        with pytest.raises(EstimationError):
            adaptive_measure(lambda s: math.nan)

    def test_relative_precision_of_zero_mean(self):
        stats = adaptive_measure(lambda s: 0.0, min_reps=2, max_reps=3)
        assert stats.relative_precision == 0.0
