"""Tests for the paper's two estimation procedures (§4.1, §4.2)."""

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import EstimationError
from repro.estimation.alphabeta import estimate_alpha_beta
from repro.estimation.gamma import estimate_gamma
from repro.models.derived import (
    BinomialTreeModel,
    ChainTreeModel,
    LinearTreeModel,
)
from repro.models.gamma import GammaFunction
from repro.units import KiB


@pytest.fixture(scope="module")
def mini_gamma():
    return estimate_gamma(MINICLUSTER, max_procs=6)


class TestGammaEstimation:
    def test_gamma_2_is_exactly_one(self, mini_gamma):
        assert mini_gamma.table[2] == 1.0

    def test_gamma_increases_with_procs(self, mini_gamma):
        values = [mini_gamma.table[p] for p in sorted(mini_gamma.table)]
        assert values == sorted(values)
        assert values[-1] > 1.0

    def test_gamma_bounded_by_p_minus_1(self, mini_gamma):
        """Paper Eq. 1: the linear bcast is at most (P-1) p2p times."""
        for procs, value in mini_gamma.table.items():
            assert 1.0 <= value <= procs - 1 + 1e-9

    def test_function_returns_gamma_function(self, mini_gamma):
        gamma = mini_gamma.function()
        assert isinstance(gamma, GammaFunction)
        assert gamma(4) == pytest.approx(mini_gamma.table[4])

    def test_near_linear_in_procs(self, mini_gamma):
        """The paper's observation enabling linear extrapolation."""
        gamma = mini_gamma.function()
        intercept, slope = gamma.regression_line()
        for procs, value in mini_gamma.table.items():
            assert intercept + slope * procs == pytest.approx(value, abs=0.08)

    def test_paper_method_also_monotone(self):
        estimate = estimate_gamma(
            MINICLUSTER, max_procs=4, method="paper", calls=4
        )
        values = [estimate.table[p] for p in sorted(estimate.table)]
        assert values == sorted(values)

    def test_unknown_method_rejected(self):
        with pytest.raises(EstimationError):
            estimate_gamma(MINICLUSTER, method="psychic")

    def test_too_many_procs_rejected(self):
        with pytest.raises(EstimationError):
            estimate_gamma(MINICLUSTER, max_procs=MINICLUSTER.max_procs + 1)

    def test_deterministic_given_seed(self):
        a = estimate_gamma(MINICLUSTER, max_procs=4, seed=5)
        b = estimate_gamma(MINICLUSTER, max_procs=4, seed=5)
        assert a.table == b.table


class TestAlphaBetaEstimation:
    @pytest.fixture(scope="class")
    def gamma_fn(self):
        return estimate_gamma(MINICLUSTER, max_procs=6).function()

    def test_fit_produces_positive_stage_cost(self, gamma_fn):
        """Only tau = alpha + beta*m_s is identifiable for segmented
        algorithms (the paper's own Table 2 shows near-zero alphas with
        beta carrying the stage cost); the fit must produce a positive,
        sane per-stage time."""
        estimate = estimate_alpha_beta(
            MINICLUSTER,
            ChainTreeModel(gamma_fn),
            procs=8,
            sizes=[8 * KiB, 32 * KiB, 128 * KiB, 512 * KiB],
        )
        stage_cost = estimate.params.p2p_time(8 * KiB)
        assert 0 < stage_cost < 1e-3
        assert estimate.alpha >= 0 and estimate.beta >= 0

    def test_prediction_tracks_measurement_for_own_algorithm(self, gamma_fn):
        """In-context parameters make each model track the measured time of
        its own algorithm to within a small factor at interpolated sizes.

        The chain model is the structurally weakest (its single per-stage
        cost must cover both the hop latency and the pipeline rate — a
        limitation the paper's Eq.-style models share), so it only gets a
        conservative upper-bound check.
        """
        from repro.measure import time_bcast
        from repro.models.derived import BinaryTreeModel

        sizes = [8 * KiB, 32 * KiB, 128 * KiB, 512 * KiB, 1024 * KiB]
        binary = BinaryTreeModel(gamma_fn)
        estimate = estimate_alpha_beta(MINICLUSTER, binary, procs=8, sizes=sizes)
        for nbytes in (64 * KiB, 256 * KiB):  # sizes not used in the fit
            predicted = binary.predict(8, nbytes, 8 * KiB, estimate.params)
            measured = time_bcast(MINICLUSTER, "binary", 8, nbytes, 8 * KiB)
            assert 0.4 < predicted / measured < 1.8

        chain = ChainTreeModel(gamma_fn)
        estimate = estimate_alpha_beta(MINICLUSTER, chain, procs=8, sizes=sizes)
        for nbytes in (64 * KiB, 1024 * KiB):
            predicted = chain.predict(8, nbytes, 8 * KiB, estimate.params)
            measured = time_bcast(MINICLUSTER, "chain", 8, nbytes, 8 * KiB)
            # The latency-split pipeline model tracks within a factor ~2 at
            # every scale (the textbook single-tau form drifted to 4x).
            assert 0.5 < predicted / measured < 2.0

    def test_different_algorithms_get_different_parameters(self, gamma_fn):
        """Paper §5.2: the fitted point-to-point cost depends on the
        algorithm's context; compare the effective stage cost at m_s."""
        sizes = [8 * KiB, 64 * KiB, 512 * KiB]
        linear = estimate_alpha_beta(
            MINICLUSTER, LinearTreeModel(gamma_fn), procs=8, sizes=sizes
        )
        binomial = estimate_alpha_beta(
            MINICLUSTER, BinomialTreeModel(gamma_fn), procs=8, sizes=sizes
        )
        assert linear.params.p2p_time(8 * KiB) != pytest.approx(
            binomial.params.p2p_time(8 * KiB), rel=0.05
        )

    def test_canonical_points_recorded(self, gamma_fn):
        sizes = [8 * KiB, 64 * KiB, 256 * KiB]
        estimate = estimate_alpha_beta(
            MINICLUSTER, ChainTreeModel(gamma_fn), procs=6, sizes=sizes
        )
        assert len(estimate.points) == 3
        xs = [x for x, _ in estimate.points]
        assert xs == sorted(xs)  # larger m -> larger canonical x

    def test_gather_bytes_callable(self, gamma_fn):
        estimate = estimate_alpha_beta(
            MINICLUSTER,
            ChainTreeModel(gamma_fn),
            procs=6,
            sizes=[8 * KiB, 64 * KiB, 256 * KiB],
            gather_bytes=lambda m: max(1024, m // 128),
        )
        assert estimate.params.p2p_time(8 * KiB) > 0

    def test_needs_two_sizes(self, gamma_fn):
        with pytest.raises(EstimationError):
            estimate_alpha_beta(
                MINICLUSTER, ChainTreeModel(gamma_fn), procs=6, sizes=[8 * KiB]
            )

    def test_procs_default_is_half_cluster(self, gamma_fn):
        estimate = estimate_alpha_beta(
            MINICLUSTER,
            ChainTreeModel(gamma_fn),
            sizes=[8 * KiB, 64 * KiB],
        )
        assert estimate.beta >= 0  # ran without an explicit procs

    def test_invalid_procs_rejected(self, gamma_fn):
        with pytest.raises(EstimationError):
            estimate_alpha_beta(
                MINICLUSTER,
                ChainTreeModel(gamma_fn),
                procs=1,
                sizes=[8 * KiB, 64 * KiB],
            )
