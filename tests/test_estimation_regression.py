"""Tests for OLS and the Huber IRLS regressor."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation.regression import (
    get_regressor,
    huber_fit,
    mad_screen,
    ols_fit,
)


def make_line(intercept, slope, xs, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    return [intercept + slope * x + noise * rng.standard_normal() for x in xs]


class TestOls:
    def test_exact_recovery_on_clean_data(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = make_line(5.0, 2.0, xs)
        fit = ols_fit(xs, ys)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.max_abs_residual < 1e-12

    def test_predict(self):
        fit = ols_fit([0.0, 1.0], [1.0, 3.0])
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_noisy_recovery(self):
        xs = list(np.linspace(0, 10, 50))
        ys = make_line(1.0, 0.5, xs, noise=0.05, seed=1)
        fit = ols_fit(xs, ys)
        assert fit.intercept == pytest.approx(1.0, abs=0.05)
        assert fit.slope == pytest.approx(0.5, abs=0.02)

    def test_two_points_minimum(self):
        with pytest.raises(EstimationError):
            ols_fit([1.0], [2.0])

    def test_degenerate_x_rejected(self):
        with pytest.raises(EstimationError):
            ols_fit([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])

    def test_non_finite_rejected(self):
        with pytest.raises(EstimationError):
            ols_fit([1.0, float("nan")], [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            ols_fit([1.0, 2.0], [1.0])


class TestHuber:
    def test_matches_ols_on_clean_data(self):
        xs = list(np.linspace(1, 20, 30))
        ys = make_line(3.0, 1.5, xs, noise=0.01, seed=2)
        ols = ols_fit(xs, ys)
        huber = huber_fit(xs, ys)
        assert huber.intercept == pytest.approx(ols.intercept, abs=0.05)
        assert huber.slope == pytest.approx(ols.slope, abs=0.01)

    def test_resists_outliers_where_ols_does_not(self):
        """One wild outlier: Huber stays near the true line, OLS drifts."""
        xs = list(np.linspace(1, 20, 20))
        ys = make_line(1.0, 2.0, xs, noise=0.01, seed=3)
        ys[10] += 100.0  # network hiccup
        huber = huber_fit(xs, ys)
        ols = ols_fit(xs, ys)
        huber_error = abs(huber.slope - 2.0) + abs(huber.intercept - 1.0)
        ols_error = abs(ols.slope - 2.0) + abs(ols.intercept - 1.0)
        assert huber_error < 0.1
        assert ols_error > 5 * huber_error

    def test_multiple_outliers(self):
        xs = list(np.linspace(1, 30, 30))
        ys = make_line(0.5, 1.0, xs, noise=0.02, seed=4)
        for index in (3, 11, 27):
            ys[index] *= 4.0
        fit = huber_fit(xs, ys)
        assert fit.slope == pytest.approx(1.0, abs=0.05)
        assert fit.intercept == pytest.approx(0.5, abs=0.5)

    def test_iterations_recorded(self):
        xs = list(np.linspace(1, 10, 10))
        ys = make_line(1.0, 1.0, xs, noise=0.1, seed=5)
        fit = huber_fit(xs, ys)
        assert fit.iterations >= 1

    def test_perfect_fit_short_circuits(self):
        xs = [1.0, 2.0, 3.0]
        ys = make_line(2.0, 3.0, xs)
        fit = huber_fit(xs, ys)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.slope == pytest.approx(3.0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(EstimationError):
            huber_fit([1.0, 2.0], [1.0, 2.0], epsilon=0.0)


class TestRegistry:
    def test_lookup(self):
        assert get_regressor("ols") is ols_fit
        assert get_regressor("huber") is huber_fit

    def test_unknown_name(self):
        with pytest.raises(EstimationError, match="unknown regressor"):
            get_regressor("lasso")


class TestMadScreen:
    def test_clean_line_keeps_everything(self):
        x = np.arange(1.0, 11.0)
        y = 2.0 + 0.5 * x + np.sin(x) * 1e-3
        assert mad_screen(x, y) == list(range(10))

    def test_zero_mad_keeps_everything(self):
        x = np.arange(1.0, 9.0)
        y = 3.0 + 0.25 * x
        assert mad_screen(x, y) == list(range(8))

    def test_gross_outlier_dropped(self):
        x = np.arange(1.0, 13.0)
        y = 2.0 + 0.5 * x
        y[4] += 50.0
        kept = mad_screen(x, y)
        assert 4 not in kept
        assert len(kept) == 11

    def test_drop_fraction_capped(self):
        # Half the points are "outliers": screening must refuse to drop
        # more than a quarter of the sweep.
        x = np.arange(1.0, 13.0)
        y = 2.0 + 0.5 * x
        y[::2] += 40.0
        kept = mad_screen(x, y)
        assert len(kept) >= 9  # 12 - floor(12 * 0.25)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(EstimationError, match="threshold"):
            mad_screen([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], threshold=0.0)

    def test_screened_huber_ignores_wrecked_point(self):
        x = np.arange(1.0, 11.0)
        y = 1.0 + 0.75 * x
        y[7] *= 30.0
        kept = mad_screen(x, y)
        fit = huber_fit(x[kept], y[kept])
        assert fit.intercept == pytest.approx(1.0, rel=1e-6)
        assert fit.slope == pytest.approx(0.75, rel=1e-6)
