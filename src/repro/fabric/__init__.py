"""Multi-level network fabric descriptions and builders.

``repro.fabric`` models the *physical* interconnect (racks, leaf/spine
switches, oversubscribed uplinks).  It is distinct from
:mod:`repro.topology`, which builds the *virtual* communication trees
collective algorithms route messages over — see
:mod:`repro.topology.trees` for that distinction spelled out.
"""

from repro.fabric.builders import (
    FABRIC_BUILDERS,
    available_fabrics,
    build_fabric,
    fat_tree,
    flat_fabric,
    heterogeneous_spine,
    leaf_spine,
)
from repro.fabric.spec import FLAT_FABRIC, FabricSpec, Uplink

__all__ = [
    "FABRIC_BUILDERS",
    "FLAT_FABRIC",
    "FabricSpec",
    "Uplink",
    "available_fabrics",
    "build_fabric",
    "fat_tree",
    "flat_fabric",
    "heterogeneous_spine",
    "leaf_spine",
]
