"""Per-cell decision diffs between two selection artifacts.

An incremental rebuild promises "only the affected collective changed";
an operator rolling a new artifact version wants to see exactly which
``(operation, P, m)`` cells now decide differently.  This module answers
both: :func:`diff_artifacts` compares two
:class:`~repro.service.artifact.SelectionArtifact` versions cell by cell
and reports the deltas, and :func:`format_diff` renders them for the
``repro-mpi artifact diff`` CLI.

Grids need not match: operations present in only one artifact are listed
as added/removed, and shared operations whose grids differ are compared
over the *intersection* of their grid points (with the shape change
called out) — a diff never silently ignores coverage changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.artifact import SelectionArtifact

__all__ = ["ArtifactDiff", "CellDelta", "diff_artifacts", "format_diff"]


@dataclass(frozen=True)
class CellDelta:
    """One grid cell whose decision changed between two artifacts."""

    operation: str
    procs: int
    nbytes: int
    #: ``(algorithm, segment_size)`` in the old artifact.
    old: tuple[str, int]
    #: ``(algorithm, segment_size)`` in the new artifact.
    new: tuple[str, int]

    def as_dict(self) -> dict:
        return {
            "operation": self.operation,
            "procs": self.procs,
            "nbytes": self.nbytes,
            "old": {"algorithm": self.old[0], "segment_size": self.old[1]},
            "new": {"algorithm": self.new[0], "segment_size": self.new[1]},
        }

    def describe(self) -> str:
        return (
            f"{self.operation} P={self.procs} m={self.nbytes}: "
            f"{self.old[0]}/{self.old[1]} -> {self.new[0]}/{self.new[1]}"
        )


@dataclass(frozen=True)
class ArtifactDiff:
    """Everything that differs between two artifact versions."""

    old_id: str
    new_id: str
    #: True when even the content hashes agree.
    same_hash: bool
    #: Operations only the old / only the new artifact carries.
    removed_operations: tuple[str, ...]
    added_operations: tuple[str, ...]
    #: Operation -> human description of a grid-shape change.
    grid_changes: dict[str, str]
    #: Shared grid cells compared.
    cells: int
    changed: tuple[CellDelta, ...]

    def identical(self) -> bool:
        """No observable decision difference (hash equality implies it)."""
        return not (
            self.removed_operations
            or self.added_operations
            or self.grid_changes
            or self.changed
        )

    def as_dict(self) -> dict:
        return {
            "old": self.old_id,
            "new": self.new_id,
            "same_hash": self.same_hash,
            "identical": self.identical(),
            "removed_operations": list(self.removed_operations),
            "added_operations": list(self.added_operations),
            "grid_changes": dict(self.grid_changes),
            "cells": self.cells,
            "changed": [delta.as_dict() for delta in self.changed],
        }


def _grid_shape(entry) -> str:
    return (
        f"{len(entry.table.proc_points)}x{len(entry.table.size_points)} "
        f"(P {entry.table.proc_points[0]}..{entry.table.proc_points[-1]}, "
        f"m {entry.table.size_points[0]}..{entry.table.size_points[-1]})"
    )


def diff_artifacts(
    old: SelectionArtifact, new: SelectionArtifact
) -> ArtifactDiff:
    """Compare two artifacts' decisions cell by cell."""
    old_ops = set(old.operations)
    new_ops = set(new.operations)
    changed: list[CellDelta] = []
    grid_changes: dict[str, str] = {}
    cells = 0
    for operation in sorted(old_ops & new_ops):
        old_entry = old.entries[operation]
        new_entry = new.entries[operation]
        old_grid = (old_entry.table.proc_points, old_entry.table.size_points)
        new_grid = (new_entry.table.proc_points, new_entry.table.size_points)
        if old_grid != new_grid:
            grid_changes[operation] = (
                f"{_grid_shape(old_entry)} -> {_grid_shape(new_entry)}"
            )
        shared_procs = sorted(set(old_grid[0]) & set(new_grid[0]))
        shared_sizes = sorted(set(old_grid[1]) & set(new_grid[1]))
        for procs in shared_procs:
            for nbytes in shared_sizes:
                cells += 1
                before = old_entry.table.select(procs, nbytes)
                after = new_entry.table.select(procs, nbytes)
                if (before.algorithm, before.segment_size) != (
                    after.algorithm, after.segment_size
                ):
                    changed.append(
                        CellDelta(
                            operation=operation,
                            procs=procs,
                            nbytes=nbytes,
                            old=(before.algorithm, before.segment_size),
                            new=(after.algorithm, after.segment_size),
                        )
                    )
    return ArtifactDiff(
        old_id=old.artifact_id,
        new_id=new.artifact_id,
        same_hash=old.content_hash() == new.content_hash(),
        removed_operations=tuple(sorted(old_ops - new_ops)),
        added_operations=tuple(sorted(new_ops - old_ops)),
        grid_changes=grid_changes,
        cells=cells,
        changed=tuple(changed),
    )


def format_diff(diff: ArtifactDiff) -> str:
    """Render a diff as the CLI's plain-text report."""
    lines = [f"artifact diff: {diff.old_id} -> {diff.new_id}"]
    if diff.identical():
        suffix = " (content hashes match)" if diff.same_hash else ""
        lines.append(
            f"  identical: {diff.cells} shared cells decide the same{suffix}"
        )
        return "\n".join(lines)
    for operation in diff.removed_operations:
        lines.append(f"  removed operation: {operation}")
    for operation in diff.added_operations:
        lines.append(f"  added operation:   {operation}")
    for operation in sorted(diff.grid_changes):
        lines.append(
            f"  grid change: {operation}: {diff.grid_changes[operation]}"
        )
    lines.append(
        f"  changed cells: {len(diff.changed)} of {diff.cells} compared"
    )
    for delta in diff.changed:
        lines.append(f"    {delta.describe()}")
    return "\n".join(lines)
