"""Tests for the calibration report renderer."""

import pytest

from repro.estimation.workflow import PlatformModel
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams
from repro.models.report import EQUATIONS, render_report
from repro.units import KiB


@pytest.fixture()
def toy_platform():
    return PlatformModel(
        cluster="toy",
        segment_size=8 * KiB,
        gamma=GammaFunction({3: 1.1, 5: 1.3, 7: 1.5}),
        parameters={
            "binomial": HockneyParams(2e-6, 1e-9),
            "chain": HockneyParams(15e-6, 0.5e-9),
            "binary": HockneyParams(3e-6, 1.2e-9),
        },
    )


class TestRenderReport:
    def test_contains_all_sections(self, toy_platform):
        text = render_report(toy_platform)
        for heading in ("# Platform model: toy", "## γ(P)", "## Calibrated models",
                        "## Prediction grid"):
            assert heading in text

    def test_every_algorithm_documented(self, toy_platform):
        text = render_report(toy_platform)
        for name in toy_platform.algorithms:
            assert f"### {name}" in text
            assert EQUATIONS[name].split("=")[0].strip() in text

    def test_gamma_regression_line_shown(self, toy_platform):
        text = render_report(toy_platform)
        assert "Linear extrapolation beyond P=7" in text

    def test_prediction_grid_names_winners(self, toy_platform):
        text = render_report(toy_platform, procs=(16,), sizes=(64 * KiB,))
        grid = text.split("## Prediction grid")[1]
        assert any(name in grid for name in toy_platform.algorithms)

    def test_segment_cost_reported(self, toy_platform):
        text = render_report(toy_platform)
        assert "effective segment cost" in text

    def test_reduce_platform_renders(self):
        platform = PlatformModel(
            cluster="toy-reduce",
            segment_size=8 * KiB,
            gamma=GammaFunction({3: 1.1}),
            parameters={"in_order_binomial": HockneyParams(1e-6, 1e-9)},
            model_family="reduce_derived",
        )
        text = render_report(platform)
        assert "`reduce`" in text
        assert "### in_order_binomial" in text

    def test_equations_cover_all_model_families(self):
        from repro.models.derived import DERIVED_BCAST_MODELS
        from repro.models.reduce_models import DERIVED_REDUCE_MODELS

        for name in list(DERIVED_BCAST_MODELS) + list(DERIVED_REDUCE_MODELS):
            assert name in EQUATIONS, name


class TestCliReport:
    def test_report_command(self, toy_platform, tmp_path, capsys):
        from repro.cli import main

        calibration = tmp_path / "toy.json"
        toy_platform.save(calibration)
        output = tmp_path / "report.md"
        code = main(
            ["report", "--calibration", str(calibration), "--output", str(output)]
        )
        assert code == 0
        assert "# Platform model: toy" in output.read_text()

    def test_report_to_stdout(self, toy_platform, tmp_path, capsys):
        from repro.cli import main

        calibration = tmp_path / "toy.json"
        toy_platform.save(calibration)
        assert main(["report", "--calibration", str(calibration)]) == 0
        assert "## Calibrated models" in capsys.readouterr().out
