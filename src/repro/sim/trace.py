"""Optional structured tracing of simulated communication events.

Tracing is used by tests to assert fine-grained properties of the collective
implementations (e.g. that the chain broadcast really pipelines segments, or
that the root of a linear broadcast injects messages back-to-back), and by
examples to visualise algorithm execution.  It is off by default and costs
nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``kind`` is one of ``send_post``, ``send_complete``, ``recv_post``,
    ``recv_complete``; ``time`` is the simulated timestamp.
    """

    time: float
    kind: str
    rank: int
    peer: int
    tag: int
    nbytes: int


class Tracer:
    """Collects :class:`TraceEvent` records for one simulation run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(
        self, time: float, kind: str, rank: int, peer: int, tag: int, nbytes: int
    ) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, kind, rank, peer, tag, nbytes))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # An empty tracer is still a real tracer: never falsy (guards the
        # classic ``tracer or default`` mistake).
        return True

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def for_rank(self, rank: int) -> list[TraceEvent]:
        """All events observed at one rank, in time order."""
        return [e for e in self.events if e.rank == rank]

    def total_bytes_sent(self) -> int:
        """Sum of payload bytes over all posted sends."""
        return sum(e.nbytes for e in self.events if e.kind == "send_post")

    def clear(self) -> None:
        self.events.clear()


#: Shared disabled tracer used when no tracing was requested.
NULL_TRACER = Tracer(enabled=False)
