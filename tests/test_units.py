"""Tests for the byte/time unit helpers."""

import math

import pytest

from repro.units import (
    KiB,
    MiB,
    format_bytes,
    format_seconds,
    gbit_per_s_to_byte_time,
    log_spaced_sizes,
)


class TestGbitConversion:
    def test_ten_gbe_byte_time(self):
        # 10 Gbit/s = 1.25 GB/s -> 0.8 ns per byte.
        assert gbit_per_s_to_byte_time(10.0) == pytest.approx(0.8e-9)

    def test_eight_kib_on_ten_gbe(self):
        assert gbit_per_s_to_byte_time(10.0) * 8 * KiB == pytest.approx(6.5536e-6)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_non_positive_speed(self, bad):
        with pytest.raises(ValueError):
            gbit_per_s_to_byte_time(bad)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (8 * KiB, "8 KB"),
            (4 * MiB, "4 MB"),
            (512, "512 B"),
            (1536, "1536 B"),  # not a whole KiB multiple
            (MiB, "1 MB"),
        ],
    )
    def test_examples(self, nbytes, expected):
        assert format_bytes(nbytes) == expected


class TestFormatSeconds:
    def test_unit_selection(self):
        assert format_seconds(2.5).endswith(" s")
        assert format_seconds(2.5e-3).endswith(" ms")
        assert format_seconds(2.5e-6).endswith(" us")
        assert format_seconds(2.5e-9).endswith(" ns")

    def test_nan(self):
        assert format_seconds(float("nan")) == "nan"


class TestLogSpacedSizes:
    def test_paper_sweep_endpoints(self):
        sizes = log_spaced_sizes(8 * KiB, 4 * MiB, 10)
        assert sizes[0] == 8 * KiB
        assert sizes[-1] == 4 * MiB
        assert len(sizes) == 10

    def test_paper_sweep_is_doubling(self):
        # 8 KB .. 4 MB in 10 steps is exactly x2 per step.
        sizes = log_spaced_sizes(8 * KiB, 4 * MiB, 10)
        for small, large in zip(sizes, sizes[1:]):
            assert large == 2 * small

    def test_constant_log_step(self):
        sizes = log_spaced_sizes(1000, 1_000_000, 7)
        ratios = [math.log(b / a) for a, b in zip(sizes, sizes[1:])]
        assert max(ratios) - min(ratios) < 0.02

    def test_monotonically_increasing(self):
        sizes = log_spaced_sizes(100, 10_000, 9)
        assert sizes == sorted(sizes)

    @pytest.mark.parametrize("low,high,count", [(0, 10, 3), (10, 5, 3), (8, 16, 1)])
    def test_rejects_invalid_ranges(self, low, high, count):
        with pytest.raises(ValueError):
            log_spaced_sizes(low, high, count)
