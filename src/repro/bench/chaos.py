"""Chaos benchmark: selection quality under injected faults.

The paper's implicit robustness claim is that model-based selection keeps
choosing (near-)optimal algorithms on real, imperfect platforms.  This
module makes the claim measurable: it re-runs the Table-3 experiment —
:func:`repro.bench.runner.selection_comparison` against a
:class:`~repro.selection.oracle.MeasuredOracle` — on clusters degraded by
a :class:`~repro.faults.FaultPlan` of increasing severity, recalibrating
on the *faulted* platform with the robustness knobs on (MAD screening,
retry budget, strict quality gate), and reports how far the model-based
pick drifts from the measured optimum as the faults worsen.

Severity ``s`` is a single scalar dial: the last participating node
straggles with injection slowdown ``1 + 10·s`` and compute slowdown
``1 + 5·s`` (so ``s = 0.02`` — the acceptance bar — is a 20% slower NIC
and 10% slower CPU on one node).  Everything is deterministic: the same
``(spec, severity, seed)`` triple reproduces bit-identical reports, and
all simulations flow through the shared runner cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bench.runner import SelectionRow, selection_comparison
from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.regression import DEFAULT_SCREEN_THRESHOLD
from repro.estimation.registry import get_pipeline
from repro.estimation.workflow import (
    DEFAULT_QUALITY,
    QualityThresholds,
)
from repro.exec.runner import ParallelRunner
from repro.faults import FaultPlan, StragglerFault
from repro.selection.oracle import MeasuredOracle
from repro.units import KiB, MiB, format_bytes, log_spaced_sizes

#: Default severity sweep: healthy baseline, the ≤2% acceptance point,
#: and two harsher settings that show the drift curve.
DEFAULT_SEVERITIES = (0.0, 0.01, 0.02, 0.05, 0.1)

#: Default message sizes: the segmented-broadcast regime (the paper's
#: headline sizes).  Small messages are deliberately excluded — there the
#: mini platform's model-form error already exceeds the paper's tolerance
#: with *zero* faults, which would drown the fault-induced drift this
#: benchmark is after.
DEFAULT_CHAOS_SIZES = tuple(log_spaced_sizes(256 * KiB, 4 * MiB, 4))


def straggler_node(spec: ClusterSpec, procs: int) -> int:
    """The node hosting rank ``procs // 2`` — a *forwarding* rank.

    A straggler's injection/compute slowdown only matters on a rank that
    sends: the highest rank is a leaf in every broadcast tree (its fault
    would be invisible to the oracle), and the root would slow every
    algorithm identically and teach the benchmark nothing.  The middle
    rank forwards in the chain, binary, binomial and split-binary trees,
    so its slowdown differentiates the algorithms.
    """
    return spec.rank_to_node(procs)[procs // 2]


def severity_plan(spec: ClusterSpec, procs: int, severity: float) -> FaultPlan:
    """The single-straggler fault plan at severity ``severity``.

    Severity 0 returns a disabled plan, so the faulted spec's fingerprint
    — and therefore every cached simulation — is bit-identical to the
    pristine cluster's.
    """
    if severity < 0:
        raise EstimationError(f"severity must be >= 0, got {severity}")
    if severity == 0:
        return FaultPlan()
    return FaultPlan(
        stragglers=(
            StragglerFault(
                node=straggler_node(spec, procs),
                inject_factor=1.0 + 10.0 * severity,
                compute_factor=1.0 + 5.0 * severity,
            ),
        ),
    )


def drift_scenario(
    spec: ClusterSpec,
    *,
    procs: int,
    severity: float,
    operation: str = "bcast",
    max_reps: int = 8,
    seed: int = 0,
    runner: ParallelRunner | None = None,
) -> tuple[ClusterSpec, MeasuredOracle]:
    """A drifted platform and its ground-truth oracle, for tuning tests.

    Returns ``(drifted_spec, oracle)``: the cluster degraded by the
    standard single-straggler plan at ``severity`` (severity 0 hands the
    pristine spec back, bit-identical fingerprints and all) and a
    :class:`MeasuredOracle` measuring on it.  This is the harness the
    self-tuning loop's tests use as "reality": serve from an artifact
    calibrated on the clean spec, replay samples against this oracle, and
    the model-vs-platform drift becomes observable and recalibratable.
    """
    plan = severity_plan(spec, procs, severity)
    drifted = spec.with_faults(plan) if plan.enabled() else spec
    oracle = MeasuredOracle(
        drifted, operation=operation, max_reps=max_reps, seed=seed,
        runner=runner,
    )
    return drifted, oracle


@dataclass(frozen=True)
class ChaosReport:
    """One severity point of a chaos sweep."""

    severity: float
    #: Fault-plan fingerprint ("-" for the disabled severity-0 plan).
    plan_fingerprint: str
    #: Whether the strict-quality calibration succeeded on the faulted
    #: platform (when False the report still carries rows, fitted without
    #: the gate, so the drift is visible either way).
    strict_ok: bool
    #: Algorithms whose fits failed the quality thresholds.
    quality_failures: tuple[str, ...]
    rows: tuple[SelectionRow, ...]

    @property
    def max_model_degradation(self) -> float:
        """Worst model-vs-oracle slowdown over the size sweep, percent."""
        return max((row.model_degradation for row in self.rows), default=0.0)

    @property
    def mean_model_degradation(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.model_degradation for row in self.rows) / len(self.rows)

    def as_dict(self) -> dict:
        return {
            "severity": self.severity,
            "plan_fingerprint": self.plan_fingerprint,
            "strict_ok": self.strict_ok,
            "quality_failures": list(self.quality_failures),
            "max_model_degradation": self.max_model_degradation,
            "mean_model_degradation": self.mean_model_degradation,
            "rows": [
                {
                    "nbytes": row.nbytes,
                    "best": row.best.algorithm,
                    "model": row.model.algorithm,
                    "model_degradation": row.model_degradation,
                    "ompi": row.ompi.algorithm,
                    "ompi_degradation": row.ompi_degradation,
                }
                for row in self.rows
            ],
        }


def chaos_sweep(
    spec: ClusterSpec,
    *,
    operation: str = "bcast",
    procs: int | None = None,
    sizes: Sequence[int] = DEFAULT_CHAOS_SIZES,
    severities: Sequence[float] = DEFAULT_SEVERITIES,
    max_reps: int = 8,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    screen_mad: float | None = DEFAULT_SCREEN_THRESHOLD,
    retry_budget: int = 1,
    thresholds: QualityThresholds = DEFAULT_QUALITY,
) -> list[ChaosReport]:
    """Measure model-vs-oracle drift across a fault-severity sweep.

    For each severity: build the faulted spec, calibrate *on it* through
    ``operation``'s registered pipeline with the robustness knobs on
    (screening, retries), then run the Table-3 comparison against a
    measured oracle on the same faulted spec.  ``strict_ok`` records
    whether the fits met the strict quality ``thresholds``; the report
    carries rows either way, so the drift is visible even when the gate
    would have refused the calibration.
    """
    if procs is None:
        procs = max(2, spec.max_procs // 2)
    pipeline = get_pipeline(operation)
    reports: list[ChaosReport] = []
    for severity in severities:
        plan = severity_plan(spec, procs, severity)
        faulted = spec.with_faults(plan) if plan.enabled() else spec
        outcome = pipeline.calibrate(
            faulted,
            runner=runner,
            max_reps=max_reps,
            seed=seed,
            screen_mad=screen_mad,
            retry_budget=retry_budget,
        )
        failures = tuple(outcome.failing(thresholds))
        strict_ok = not failures
        oracle = MeasuredOracle(
            faulted, operation=operation, max_reps=max_reps, seed=seed,
            runner=runner,
        )
        rows = selection_comparison(
            faulted, outcome.platform, procs, sizes,
            oracle=oracle, max_reps=max_reps,
        )
        reports.append(
            ChaosReport(
                severity=severity,
                plan_fingerprint=plan.fingerprint() if plan.enabled() else "-",
                strict_ok=strict_ok,
                quality_failures=failures,
                rows=tuple(rows),
            )
        )
    return reports


def format_chaos(reports: Sequence[ChaosReport]) -> str:
    """Render a chaos sweep as an ASCII drift table."""
    lines = [
        f"{'severity':>8}  {'strict':>6}  {'max drift %':>11}  "
        f"{'mean drift %':>12}  worst size / picks",
        "-" * 76,
    ]
    for report in reports:
        worst = max(
            report.rows, key=lambda row: row.model_degradation, default=None
        )
        detail = "-"
        if worst is not None:
            detail = (
                f"{format_bytes(worst.nbytes)}: model "
                f"{worst.model.algorithm}, best {worst.best.algorithm}"
            )
        lines.append(
            f"{report.severity:>8.3f}  {'ok' if report.strict_ok else 'FAIL':>6}  "
            f"{report.max_model_degradation:>11.2f}  "
            f"{report.mean_model_degradation:>12.2f}  {detail}"
        )
    return "\n".join(lines)
