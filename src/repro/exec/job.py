"""The unit of work of the execution subsystem: one deterministic simulation.

Every paper artefact decomposes into independent single-simulation calls
(:func:`repro.measure.run_timed` under one of the timed-experiment wrappers).
A :class:`SimJob` captures *everything* that determines such a call's result
— the platform (via :meth:`ClusterSpec.fingerprint`), the program kind and
its parameters, the seed, the timing policy and the rank mapping — so that

* a job can be shipped to a worker process and executed there
  (:func:`execute_job` is a module-level function, hence picklable), and
* a job can be *fingerprinted*: equal fingerprints guarantee bit-identical
  results, which is what makes the persistent result cache sound.

Job kinds map one-to-one onto the experiment programs of
:mod:`repro.measure`:

========================  ==================================================
kind                      measurement
========================  ==================================================
``bcast``                 :func:`repro.measure.time_bcast`
``bcast_then_gather``     :func:`repro.measure.time_bcast_then_gather`
``bcast_barrier_reps``    :func:`repro.measure.time_repeated_bcast_with_barriers`
``barrier_reps``          :func:`repro.measure.time_repeated_barrier`
``gather``                :func:`repro.measure.time_gather`
``reduce``                :func:`repro.measure.time_reduce`
``reduce_then_scatter``   :func:`repro.measure.time_reduce_then_scatter`
``barrier``               :func:`repro.measure.time_barrier`
``scatter``               :func:`repro.measure.time_scatter`
``allreduce``             :func:`repro.measure.time_allreduce`
``allgather``             :func:`repro.measure.time_allgather`
``alltoall``              :func:`repro.measure.time_alltoall`
``p2p_roundtrip``         :func:`repro.measure.time_p2p_roundtrip`
========================  ==================================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.clusters.spec import ClusterSpec
from repro.errors import SimulationError

#: Job kinds understood by :func:`execute_job`.
JOB_KINDS = (
    "bcast",
    "bcast_then_gather",
    "bcast_barrier_reps",
    "barrier_reps",
    "gather",
    "reduce",
    "reduce_then_scatter",
    "barrier",
    "scatter",
    "allreduce",
    "allgather",
    "alltoall",
    "p2p_roundtrip",
)


@dataclass(frozen=True)
class SimJob:
    """One deterministic simulation, fully described.

    Fields that a given kind does not use keep their defaults and still
    participate in the fingerprint — a constant contribution, so equal jobs
    always fingerprint equal.
    """

    spec: ClusterSpec
    kind: str
    procs: int
    algorithm: str = ""
    nbytes: int = 0
    segment_size: int = 0
    #: Per-rank payload of the trailing collective: the gather of
    #: ``bcast_then_gather`` / ``gather``, the scatter of
    #: ``reduce_then_scatter``.
    gather_bytes: int = 0
    #: Repetition count inside the simulated program (``*_reps`` kinds).
    calls: int = 0
    root: int = 0
    seed: int = 0
    policy: str = "global"
    mapping: str = "block"
    #: Endpoint ranks of a ``p2p_roundtrip``.
    ranks: tuple[int, int] = (0, 1)
    _fingerprint: list = field(
        default_factory=list, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise SimulationError(
                f"unknown job kind {self.kind!r}; known: {', '.join(JOB_KINDS)}"
            )

    def fingerprint(self) -> str:
        """Content hash identifying this job's result (memoised).

        Includes the full platform fingerprint, so any change to the
        cluster's fidelity knobs yields a different key.
        """
        if self._fingerprint:
            return self._fingerprint[0]
        payload = {
            "spec": self.spec.fingerprint(),
            "kind": self.kind,
            "procs": self.procs,
            "algorithm": self.algorithm,
            "nbytes": self.nbytes,
            "segment_size": self.segment_size,
            "gather_bytes": self.gather_bytes,
            "calls": self.calls,
            "root": self.root,
            "seed": self.seed,
            "policy": self.policy,
            "mapping": self.mapping,
            "ranks": list(self.ranks),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        self._fingerprint.append(digest)
        return digest

    def describe(self) -> str:
        """One-line human-readable summary (for logs and cache inspection)."""
        return (
            f"{self.kind}[{self.algorithm or '-'}] P={self.procs} "
            f"m={self.nbytes} seg={self.segment_size} seed={self.seed}"
        )


def execute_job(job: SimJob) -> float:
    """Run one job's simulation and return the measured time in seconds.

    Pure: the result depends only on the job's fields.  Runs in the calling
    process — the parallel runner ships jobs to workers that call this.
    """
    # Imported here, not at module top: worker processes only pay for the
    # measurement stack when they actually execute a job.
    from repro import measure

    if job.kind == "bcast":
        return measure.time_bcast(
            job.spec,
            job.algorithm,
            job.procs,
            job.nbytes,
            job.segment_size,
            root=job.root,
            seed=job.seed,
            policy=job.policy,
            mapping=job.mapping,
        )
    if job.kind == "bcast_then_gather":
        return measure.time_bcast_then_gather(
            job.spec,
            job.algorithm,
            job.procs,
            job.nbytes,
            job.segment_size,
            job.gather_bytes,
            root=job.root,
            seed=job.seed,
        )
    if job.kind == "bcast_barrier_reps":
        return measure.time_repeated_bcast_with_barriers(
            job.spec,
            job.algorithm,
            job.procs,
            job.nbytes,
            job.segment_size,
            job.calls,
            root=job.root,
            seed=job.seed,
            mapping=job.mapping,
        )
    if job.kind == "barrier_reps":
        return measure.time_repeated_barrier(
            job.spec, job.procs, job.calls, root=job.root, seed=job.seed
        )
    if job.kind == "gather":
        return measure.time_gather(
            job.spec,
            job.algorithm,
            job.procs,
            job.nbytes,
            root=job.root,
            seed=job.seed,
            policy=job.policy,
        )
    if job.kind == "reduce":
        return measure.time_reduce(
            job.spec,
            job.algorithm,
            job.procs,
            job.nbytes,
            job.segment_size,
            root=job.root,
            seed=job.seed,
            policy=job.policy,
        )
    if job.kind == "reduce_then_scatter":
        return measure.time_reduce_then_scatter(
            job.spec,
            job.algorithm,
            job.procs,
            job.nbytes,
            job.segment_size,
            job.gather_bytes,
            root=job.root,
            seed=job.seed,
        )
    if job.kind == "barrier":
        return measure.time_barrier(
            job.spec,
            job.algorithm,
            job.procs,
            root=job.root,
            seed=job.seed,
            policy=job.policy,
        )
    if job.kind in ("scatter", "allreduce", "allgather", "alltoall"):
        timer = getattr(measure, f"time_{job.kind}")
        return timer(
            job.spec,
            job.algorithm,
            job.procs,
            job.nbytes,
            root=job.root,
            seed=job.seed,
            policy=job.policy,
        )
    if job.kind == "p2p_roundtrip":
        return measure.time_p2p_roundtrip(
            job.spec,
            job.nbytes,
            seed=job.seed,
            ranks=job.ranks,
            mapping=job.mapping,
        )
    raise SimulationError(f"unknown job kind {job.kind!r}")  # pragma: no cover


@dataclass(frozen=True)
class BatchJob:
    """A slab of independent :class:`SimJob` cells run as one engine pass.

    The parallel runner cuts a prefetched grid into slabs and ships each as
    one ``BatchJob`` — one IPC round trip and one shared-setup scope per
    slab instead of per cell.  A batch is *not* a new simulation semantics:
    :func:`execute_batch_job` returns exactly
    ``[execute_job(cell) for cell in cells]``, and per-cell results are
    cached under the individual cell fingerprints, never under the batch's.
    """

    cells: tuple[SimJob, ...]

    def fingerprint(self) -> str:
        """Content hash over the member cell fingerprints (order-sensitive)."""
        digest = hashlib.sha256()
        for cell in self.cells:
            digest.update(cell.fingerprint().encode("ascii"))
        return digest.hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary (for logs and cache inspection)."""
        return f"batch[{len(self.cells)} cells]"


def execute_batch_job(batch: BatchJob) -> list[float]:
    """Run one slab through the batched engine; results in cell order.

    Module-level and picklable, like :func:`execute_job`, so pool workers
    can execute whole slabs.  Bit-for-bit identical to mapping
    :func:`execute_job` over the cells (the batched engine falls back to it
    wherever its fast path cannot guarantee equality).
    """
    from repro.sim.batch import BatchSimulator

    return BatchSimulator().run(batch.cells)
