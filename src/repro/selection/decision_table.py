"""Precomputed decision tables.

An MPI library cannot afford arbitrary work inside ``MPI_Bcast``; Open MPI
compiles its decision function into straight-line code.  The analogous
deployment of the paper's method is a table precomputed from the platform
model over a grid of communicator sizes and message sizes, with nearest
(floor) grid lookup at call time.  This module builds, queries and
round-trips such tables.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import SelectionError
from repro.selection.model_based import ModelBasedSelector
from repro.selection.oracle import Selection


@dataclass(frozen=True)
class DecisionTable:
    """A grid of precomputed selections with floor lookup."""

    #: Sorted grid of communicator sizes.
    proc_points: tuple[int, ...]
    #: Sorted grid of message sizes (bytes).
    size_points: tuple[int, ...]
    #: ``choices[i][j]`` is the selection at proc_points[i], size_points[j].
    choices: tuple[tuple[Selection, ...], ...]

    def __post_init__(self) -> None:
        if not self.proc_points or not self.size_points:
            raise SelectionError("decision table needs a non-empty grid")
        if list(self.proc_points) != sorted(set(self.proc_points)):
            raise SelectionError("proc_points must be sorted and unique")
        if list(self.size_points) != sorted(set(self.size_points)):
            raise SelectionError("size_points must be sorted and unique")
        if len(self.choices) != len(self.proc_points) or any(
            len(row) != len(self.size_points) for row in self.choices
        ):
            raise SelectionError("choices shape does not match the grid")

    @staticmethod
    def _floor_index(points: Sequence[int], value: int) -> int:
        index = bisect.bisect_right(points, value) - 1
        return max(index, 0)

    def select(self, procs: int, nbytes: int) -> Selection:
        """Floor-lookup the selection for ``(procs, nbytes)``."""
        return self.lookup(procs, nbytes)[0]

    def lookup(self, procs: int, nbytes: int) -> tuple[Selection, bool]:
        """Floor-lookup plus a clamp indicator.

        Floor lookup is total: a query *below* the grid (``procs <
        proc_points[0]`` or ``nbytes < size_points[0]``) clamps to the
        first grid cell on that axis rather than failing — the same
        convention the generated straight-line code uses (its final
        unconditional branch is the first cell).  That silent clamp is
        the right behaviour for a hot path, but callers that care
        (the selection service, audits) need to *know* the answer was
        extrapolated; the second element is ``True`` exactly when a
        clamp happened.  Above-grid queries are genuine floor lookups,
        not clamps.
        """
        i = self._floor_index(self.proc_points, procs)
        j = self._floor_index(self.size_points, nbytes)
        clamped = procs < self.proc_points[0] or nbytes < self.size_points[0]
        return self.choices[i][j], clamped

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "proc_points": list(self.proc_points),
            "size_points": list(self.size_points),
            "choices": [
                [[c.algorithm, c.segment_size, c.operation] for c in row]
                for row in self.choices
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTable":
        def parse(entry) -> Selection:
            algorithm, segment = entry[0], int(entry[1])
            operation = entry[2] if len(entry) > 2 else "bcast"
            return Selection(algorithm, segment, operation)

        return cls(
            proc_points=tuple(int(p) for p in data["proc_points"]),
            size_points=tuple(int(s) for s in data["size_points"]),
            choices=tuple(
                tuple(parse(entry) for entry in row) for row in data["choices"]
            ),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "DecisionTable":
        return cls.from_dict(json.loads(Path(path).read_text()))


def build_decision_table(
    selector: ModelBasedSelector,
    proc_points: Sequence[int],
    size_points: Sequence[int],
) -> DecisionTable:
    """Evaluate ``selector`` over the grid and freeze the result."""
    procs = tuple(sorted(set(int(p) for p in proc_points)))
    sizes = tuple(sorted(set(int(s) for s in size_points)))
    choices = tuple(
        tuple(selector.select(p, m) for m in sizes) for p in procs
    )
    return DecisionTable(proc_points=procs, size_points=sizes, choices=choices)
