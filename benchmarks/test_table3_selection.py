"""Benchmark: regenerate the paper's Table 3 (selection comparison).

Paper Table 3 (P=90 Grisou / P=100 Gros, m = 8 KB .. 4 MB):

* the model-based selection picks the best algorithm or one within
  3% (Grisou) / 10% (Gros) of it at every size;
* the Open MPI fixed decision function is near-optimal in only about half
  the cases and degrades significantly elsewhere — up to 160% on Grisou
  and catastrophically (up to 7297%) on Gros, notably by picking the chain
  (pipeline) algorithm for messages >= 512 KB.

Shape assertions below encode those claims with simulator-appropriate
thresholds (see EXPERIMENTS.md for the per-cell comparison).
"""

import pytest

from repro.bench.runner import selection_comparison
from repro.bench.tables import format_table3
from repro.units import KiB

from conftest import PAPER_SIZES, TABLE3_PROCS


@pytest.fixture(scope="module")
def table3_rows(grisou, gros, grisou_calibration, gros_calibration,
                grisou_oracle, gros_oracle):
    return {
        "grisou": selection_comparison(
            grisou,
            grisou_calibration.platform,
            TABLE3_PROCS["grisou"],
            PAPER_SIZES,
            oracle=grisou_oracle,
        ),
        "gros": selection_comparison(
            gros,
            gros_calibration.platform,
            TABLE3_PROCS["gros"],
            PAPER_SIZES,
            oracle=gros_oracle,
        ),
    }


def test_table3_selection(benchmark, table3_rows, grisou_calibration):
    """Times the runtime selection itself; prints both Table 3 halves."""
    from repro.selection.model_based import ModelBasedSelector

    selector = ModelBasedSelector(grisou_calibration.platform)

    def select_all_sizes():
        return [selector.select(90, size) for size in PAPER_SIZES]

    benchmark.pedantic(select_all_sizes, rounds=20, iterations=5)

    for cluster, rows in table3_rows.items():
        procs = TABLE3_PROCS[cluster]
        print()
        print(format_table3(rows, title=f"P={procs}, MPI_Bcast, {cluster}"))

    for cluster, rows in table3_rows.items():
        model_degradations = [row.model_degradation for row in rows]
        ompi_degradations = [row.ompi_degradation for row in rows]

        # Model-based selection is near-optimal everywhere (paper: <= 3%
        # Grisou / <= 10% Gros; simulator threshold 15%).
        assert max(model_degradations) < 20.0, (cluster, model_degradations)

        # The Open MPI function degrades significantly somewhere (paper:
        # up to 160% / 7297%).
        assert max(ompi_degradations) > 60.0, (cluster, ompi_degradations)

        # Open MPI picks chain at >= 512 KB and that pick degrades badly
        # around the 512 KB-1 MB band (the paper's central example).
        chain_rows = [row for row in rows if row.nbytes >= 512 * KiB]
        assert chain_rows, "sweep does not reach the chain regime"
        for row in chain_rows:
            assert row.ompi.algorithm == "chain"
        assert max(r.ompi_degradation for r in chain_rows) > 40.0, cluster

        # In total, model-based selection loses far less time than Open MPI.
        assert sum(model_degradations) < 0.5 * sum(ompi_degradations), cluster
