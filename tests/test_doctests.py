"""Execute the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.mpi.segmentation
import repro.units

MODULES = [repro.units, repro.mpi.segmentation]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
