"""Minimal Prometheus-text-format instrumentation for the service.

Stdlib-only counterparts of the ``prometheus_client`` primitives the
serving layer needs: labelled counters, one cumulative-bucket histogram,
and gauges.  Rendering follows the text exposition format
(``# HELP`` / ``# TYPE`` preamble, ``name{label="v"} value`` samples,
``_bucket``/``_sum``/``_count`` for histograms) so the output scrapes
cleanly.  See docs/SERVICE.md for the metrics glossary.

Thread-safety: mutation happens on the server's single event loop; the
only cross-thread access is rendering, which reads plain dicts of floats
— safe under the GIL for this monitoring use.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside ``name{label="value"}``; anything
    else passes through verbatim.  Without this, a label value such as a
    load error message containing ``"`` (artifact paths, JSON fragments)
    produces an unparseable exposition document.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + body + "}"


@dataclass
class Counter:
    """A monotonically increasing, optionally labelled counter.

    ``labelled=True`` declares that every sample of this counter carries
    labels.  Such counters render *no* sample while empty: the previous
    behaviour of emitting a bare ``name 0`` created a phantom unlabelled
    series alongside the real labelled ones, which double-counts in
    ``sum(name)`` aggregations and confuses absent-metric alerts.
    """

    name: str
    help: str
    labelled: bool = False
    _samples: dict[tuple[tuple[str, str], ...], float] = field(
        default_factory=dict
    )

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def inc_key(self, key: tuple[tuple[str, str], ...], amount: float = 1.0) -> None:
        """Increment by a precomputed label key (the serving hot path).

        ``key`` must be what :meth:`inc` would build: label pairs sorted
        by label name.  Skipping the per-call sort matters at 10^5 qps.
        """
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._samples.get(tuple(sorted(labels.items())), 0.0)

    def total(self) -> float:
        return sum(self._samples.values())

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
        ]
        for key in sorted(self._samples):
            lines.append(
                f"{self.name}{_format_labels(key)} "
                f"{_format_value(self._samples[key])}"
            )
        if not self._samples and not self.labelled:
            lines.append(f"{self.name} 0")
        return lines


@dataclass
class Gauge:
    """A value that can go up and down (e.g. artifacts currently loaded).

    Optionally labelled, with the same convention as :class:`Counter`:
    a ``labelled=True`` gauge renders no sample until a labelled value is
    set (no phantom unlabelled series), while an unlabelled gauge keeps
    the original always-one-sample behaviour (``name 0`` before any
    :meth:`set`).
    """

    name: str
    help: str
    labelled: bool = False
    _samples: dict[tuple[tuple[str, str], ...], float] = field(
        default_factory=dict
    )

    def set(self, value: float, **labels: str) -> None:
        self._samples[tuple(sorted(labels.items()))] = float(value)

    def value(self, **labels: str) -> float:
        return self._samples.get(tuple(sorted(labels.items())), 0.0)

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
        ]
        for key in sorted(self._samples):
            lines.append(
                f"{self.name}{_format_labels(key)} "
                f"{_format_value(self._samples[key])}"
            )
        if not self._samples and not self.labelled:
            lines.append(f"{self.name} 0")
        return lines


#: Request-latency buckets (seconds): 50 µs .. 1 s, then +Inf.
DEFAULT_BUCKETS = (
    50e-6, 100e-6, 250e-6, 500e-6,
    1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 1.0,
)


@dataclass
class Histogram:
    """A cumulative-bucket histogram in the Prometheus layout."""

    name: str
    help: str
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    _counts: list[int] = field(default_factory=list)
    _sum: float = 0.0
    _count: int = 0

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        self._counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        if index < len(self._counts):
            self._counts[index] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """Upper bucket bound containing the ``q`` quantile (0 if empty)."""
        if not self._count:
            return 0.0
        target = q * self._count
        running = 0
        for bound, bucket_count in zip(self.buckets, self._counts):
            running += bucket_count
            if running >= target:
                return bound
        return float("inf")

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self._counts):
            cumulative += bucket_count
            lines.append(f'{self.name}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
        lines.append(f"{self.name}_sum {repr(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


class ServiceMetrics:
    """Everything ``GET /metrics`` exposes, in one registry."""

    def __init__(self):
        self.requests = Counter(
            "repro_requests_total",
            "HTTP requests served, by endpoint and status code.",
            labelled=True,
        )
        self.request_seconds = Histogram(
            "repro_request_seconds",
            "Wall-clock request handling latency in seconds.",
        )
        self.selections = Counter(
            "repro_selections_total",
            "Algorithm selections returned, by operation and algorithm.",
            labelled=True,
        )
        self.clamped = Counter(
            "repro_select_clamped_total",
            "Queries below the decision grid answered by clamping to the "
            "first grid cell, by operation.",
            labelled=True,
        )
        self.queries = Counter(
            "repro_select_queries_total",
            "Individual (collective, P, m) queries answered "
            "(batched requests count each query).",
        )
        self.batch_queries = Counter(
            "repro_select_batch_queries_total",
            "Queries answered on the batched flat-array path (a subset "
            "of repro_select_queries_total; batch queries bypass the "
            "LRU, so they never count as cache hits or misses).",
        )
        self.cache_hits = Counter(
            "repro_query_cache_hits_total",
            "Lookups answered from the in-memory LRU query cache.",
        )
        self.cache_misses = Counter(
            "repro_query_cache_misses_total",
            "Lookups that had to consult a decision table.",
        )
        self.artifacts_loaded = Gauge(
            "repro_artifacts_loaded",
            "Selection artifacts currently loaded and servable.",
        )
        self.reloads = Counter(
            "repro_artifact_reloads_total",
            "Hot artifact-registry rescans performed.",
        )
        self.reload_failures = Counter(
            "repro_artifact_reload_failures_total",
            "Rescans that failed outright; the previous registry state "
            "keeps serving.",
        )
        self.degraded = Gauge(
            "repro_service_degraded",
            "1 while serving last-known-good data (failed reload, "
            "corrupted artifact on disk, or failed recalibration), "
            "0 when healthy.",
        )
        # -- self-tuning loop (see docs/ROBUSTNESS.md) -------------------
        self.drift_samples = Counter(
            "repro_drift_samples_total",
            "Served selections replayed against the measured oracle, "
            "by operation.",
            labelled=True,
        )
        self.drift_error = Gauge(
            "repro_drift_mean_error",
            "Windowed mean relative regret of served selections versus "
            "the measured oracle, by operation.",
            labelled=True,
        )
        self.drift_cusum = Gauge(
            "repro_drift_cusum",
            "Current one-sided CUSUM drift statistic, by operation.",
            labelled=True,
        )
        self.drift_triggers = Counter(
            "repro_drift_triggers_total",
            "Times the drift detector fired, by operation.",
            labelled=True,
        )
        self.recalibrations = Counter(
            "repro_recalibrations_total",
            "Incremental artifact rebuilds attempted by the self-tuning "
            "loop, by operation and outcome (ok/failed).",
            labelled=True,
        )
        self.guideline_violations = Gauge(
            "repro_guideline_violations",
            "Violations in the most recent guideline verification of the "
            "served artifact.",
        )

    def observe_request_span(self, span) -> None:
        """Feed the request metrics from one finished ``http.request`` span.

        The span is the single timing source for the serving layer (see
        :mod:`repro.obs.bridge`): its monotonic duration lands in the
        latency histogram and its ``endpoint``/``status`` attributes label
        the request counter, so traces and metrics can never disagree
        about what was measured.
        """
        self.request_seconds.observe(span.duration)
        self.requests.inc(
            endpoint=str(span.attributes.get("endpoint", "(unknown)")),
            status=str(span.attributes.get("status", "(unknown)")),
        )

    def cache_hit_ratio(self) -> float:
        hits = self.cache_hits.total()
        total = hits + self.cache_misses.total()
        return hits / total if total else 0.0

    def render(self) -> str:
        """The Prometheus text exposition document."""
        parts = (
            self.requests.render()
            + self.batch_queries.render()
            + self.request_seconds.render()
            + self.selections.render()
            + self.clamped.render()
            + self.queries.render()
            + self.cache_hits.render()
            + self.cache_misses.render()
            + [
                "# HELP repro_query_cache_hit_ratio "
                "Fraction of queries answered by the LRU cache.",
                "# TYPE repro_query_cache_hit_ratio gauge",
                f"repro_query_cache_hit_ratio {repr(self.cache_hit_ratio())}",
            ]
            + self.artifacts_loaded.render()
            + self.reloads.render()
            + self.reload_failures.render()
            + self.degraded.render()
            + self.drift_samples.render()
            + self.drift_error.render()
            + self.drift_cusum.render()
            + self.drift_triggers.render()
            + self.recalibrations.render()
            + self.guideline_violations.render()
        )
        return "\n".join(parts) + "\n"


def merge_metrics_texts(texts: "list[str]") -> str:
    """Merge several Prometheus text documents into one fleet view.

    The shard supervisor scrapes every worker's ``/metrics`` and serves
    the merge: counters and histogram series are *summed* across workers,
    gauges take the *max* (a fleet is degraded if any worker is; every
    worker reports the same ``repro_artifacts_loaded``), and the derived
    ``repro_query_cache_hit_ratio`` is recomputed from the merged hit and
    miss counters rather than averaged.  Metric and sample order follow
    first appearance, so the merged document is stable across scrapes.
    """
    kinds: dict[str, str] = {}
    helps: dict[str, str] = {}
    metric_order: list[str] = []
    # metric name -> ordered {sample line key (name+labels) -> value}
    samples: dict[str, dict[str, float]] = {}

    def base_metric(sample_name: str) -> str:
        # Histogram samples are name_bucket/_sum/_count under one TYPE.
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in kinds:
                return sample_name[: -len(suffix)]
        return sample_name

    for text in texts:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("# HELP "):
                _, _, rest = line.partition("# HELP ")
                name, _, help_text = rest.partition(" ")
                helps.setdefault(name, help_text)
                continue
            if line.startswith("# TYPE "):
                _, _, rest = line.partition("# TYPE ")
                name, _, kind = rest.partition(" ")
                if name not in kinds:
                    kinds[name] = kind
                    metric_order.append(name)
                    samples[name] = {}
                continue
            if line.startswith("#"):
                continue
            brace = line.find("{")
            if brace >= 0:
                end = line.rfind("}")
                key = line[: end + 1]
                value_text = line[end + 1 :].strip()
                sample_name = line[:brace]
            else:
                key, _, value_text = line.rpartition(" ")
                sample_name = key
            try:
                value = float(value_text)
            except ValueError:
                continue
            metric = base_metric(sample_name)
            if metric not in samples:
                kinds.setdefault(metric, "untyped")
                metric_order.append(metric)
                samples[metric] = {}
            bucket = samples[metric]
            if kinds.get(metric) == "gauge":
                bucket[key] = max(bucket.get(key, float("-inf")), value)
            else:
                bucket[key] = bucket.get(key, 0.0) + value

    # The hit ratio is a derived gauge: max() across workers is wrong,
    # so recompute it from the merged counters.
    hits = sum(samples.get("repro_query_cache_hits_total", {}).values())
    misses = sum(samples.get("repro_query_cache_misses_total", {}).values())
    if "repro_query_cache_hit_ratio" in samples:
        total = hits + misses
        samples["repro_query_cache_hit_ratio"] = {
            "repro_query_cache_hit_ratio": hits / total if total else 0.0
        }

    lines: list[str] = []
    for metric in metric_order:
        if metric in helps:
            lines.append(f"# HELP {metric} {helps[metric]}")
        kind = kinds.get(metric, "untyped")
        if kind != "untyped":
            lines.append(f"# TYPE {metric} {kind}")
        for key, value in samples[metric].items():
            lines.append(f"{key} {_format_value(value) if value == int(value) else repr(value)}")
    return "\n".join(lines) + "\n"
