"""Tree builders: ports of ``ompi_coll_base_topo_build_*``.

All builders shift ranks so the construction sees the root as virtual rank 0
(``vrank = (rank - root) mod size``), exactly as Open MPI does, then express
the result in actual ranks.

Builders are memoised: :class:`Tree` is immutable and every rank of a
simulated collective builds the same tree (as does every repetition of a
measurement), so a P-rank broadcast would otherwise construct and validate
P identical trees per run — a dominant cost in profiles of Table 3-scale
sweeps.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import TopologyError
from repro.topology.tree import Tree, tree_from_children

#: Upper bound on memoised trees per builder.  Long chaos sweeps iterate
#: over many (size, root, fanout) combinations in long-lived worker
#: processes; the bound keeps each builder's memo at a few hundred small
#: tuples instead of growing with the sweep.
TREE_CACHE_MAXSIZE = 512


def clear_tree_caches() -> None:
    """Drop every memoised tree.

    Wired into :mod:`repro.exec`'s pool-worker initialiser so each pool
    generation starts from a known-empty memo, and available to long-running
    sweeps that want to release topology memory between phases.
    """
    for builder in (
        build_kary_tree,
        build_binomial_tree,
        build_in_order_binomial_tree,
        build_chain_tree,
    ):
        builder.cache_clear()


def _check(size: int, root: int) -> None:
    if size < 1:
        raise TopologyError(f"communicator size must be >= 1, got {size}")
    if not 0 <= root < size:
        raise TopologyError(f"root {root} outside communicator of size {size}")


def _actual(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


@lru_cache(maxsize=TREE_CACHE_MAXSIZE)
def build_kary_tree(fanout: int, size: int, root: int = 0) -> Tree:
    """Complete k-ary tree filled level by level (``topo_build_tree``).

    Virtual rank ``v`` has children ``fanout*v + 1 .. fanout*v + fanout``
    (those below ``size``).  ``fanout=2`` is the *balanced binary tree* used
    by the binary and split-binary broadcast algorithms.
    """
    _check(size, root)
    if fanout < 1:
        raise TopologyError(f"fanout must be >= 1, got {fanout}")
    children_map: dict[int, list[int]] = {}
    for vrank in range(size):
        kids = [
            _actual(child, root, size)
            for child in range(fanout * vrank + 1, fanout * vrank + fanout + 1)
            if child < size
        ]
        if kids:
            children_map[_actual(vrank, root, size)] = kids
    return tree_from_children(root, size, children_map)


def build_binary_tree(size: int, root: int = 0) -> Tree:
    """Balanced binary tree (``build_kary_tree`` with fanout 2)."""
    return build_kary_tree(2, size, root)


@lru_cache(maxsize=TREE_CACHE_MAXSIZE)
def build_binomial_tree(size: int, root: int = 0) -> Tree:
    """Balanced binomial tree (``topo_build_bmtree``), paper Fig. 2.

    Virtual rank ``v``'s children are ``v | 2^j`` for every bit ``2^j``
    below ``v``'s lowest set bit (all bits for the root), bounded by
    ``size``.  The root has ``ceil(log2 size)`` children; the height is
    ``floor(log2 size)`` — the quantities appearing in the paper's Eq. 4-6.
    """
    _check(size, root)
    children_map: dict[int, list[int]] = {}
    for vrank in range(size):
        kids = []
        mask = 1
        while mask < size:
            if vrank & mask:
                break
            child = vrank | mask
            if child < size:
                kids.append(_actual(child, root, size))
            mask <<= 1
        if kids:
            children_map[_actual(vrank, root, size)] = kids
    return tree_from_children(root, size, children_map)


@lru_cache(maxsize=TREE_CACHE_MAXSIZE)
def build_in_order_binomial_tree(size: int, root: int = 0) -> Tree:
    """Binomial tree with children in decreasing-subtree order.

    Open MPI uses the in-order variant for operations whose reduction order
    matters (non-commutative reduce, gather); structurally it is the
    standard binomial tree with each child list reversed, so the largest
    subtree is contacted first.
    """
    standard = build_binomial_tree(size, root)
    children = tuple(tuple(reversed(kids)) for kids in standard.children)
    tree = Tree(root=root, parent=standard.parent, children=children)
    tree.validate()
    return tree


@lru_cache(maxsize=TREE_CACHE_MAXSIZE)
def build_chain_tree(size: int, root: int = 0, chains: int = 1) -> Tree:
    """``chains`` pipelines hanging off the root (``topo_build_chain``).

    The non-root ranks are split into ``chains`` consecutive runs, as evenly
    as possible (earlier chains get the extra rank); the root's children are
    the chain heads.  ``chains=1`` is the *chain (pipeline)* broadcast
    topology; Open MPI's *chain* algorithm defaults to 4 chains, the paper's
    *K-chain tree*.
    """
    _check(size, root)
    if chains < 1:
        raise TopologyError(f"chains must be >= 1, got {chains}")
    children_map: dict[int, list[int]] = {}
    remaining = size - 1
    chains = min(chains, remaining) if remaining else 0
    if chains:
        base, extra = divmod(remaining, chains)
        heads: list[int] = []
        next_vrank = 1
        for chain_index in range(chains):
            length = base + (1 if chain_index < extra else 0)
            run = list(range(next_vrank, next_vrank + length))
            next_vrank += length
            heads.append(run[0])
            for earlier, later in zip(run, run[1:]):
                children_map[_actual(earlier, root, size)] = [
                    _actual(later, root, size)
                ]
        children_map[root] = [_actual(head, root, size) for head in heads]
    return tree_from_children(root, size, children_map)
