"""Load-test the selection service; append results to BENCH_service.json.

The harness builds a selection artifact (quick: MINICLUSTER calibration;
``--full``: noise-free Gros at paper scale) and drives the server with a
**closed-loop pipelined load generator**: each client is its own process
holding one keep-alive connection, keeps up to ``--depth`` requests in
flight, and uses byte-counting flow control — every response size is
precomputed from the artifact (trace ids are fixed-length), so the timed
loop does zero parsing.  Verification happens after the clock stops:

1. every response is byte-compared against the offline rendering and its
   decoded selections are checked **bit-identical** to
   ``DecisionTable.select`` on the same artifact;
2. server-side latency percentiles come from the
   ``repro_request_seconds`` histogram delta and must satisfy
   **p99 < 50 ms** over **>= 1000 queries**;
3. the run sweeps ``--workers`` (0 = in-process ServiceThread, N >= 1 =
   ``SO_REUSEPORT`` fleet under a :class:`ShardSupervisor`) and records
   one result per worker count, plus the best as the headline.

The workload shape matches run 1 of BENCH_service.json: 8 clients, a
seeded 50/50 mix of on-grid and off-grid queries, and every 5th request
a batch of 16.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py
    PYTHONPATH=src python benchmarks/run_service_bench.py --workers 1,2,4
    PYTHONPATH=src python benchmarks/run_service_bench.py --full
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import platform
import random
import socket
import sys
import tempfile
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import obs  # noqa: E402
from repro.clusters import GROS, MINICLUSTER  # noqa: E402
from repro.exec import ParallelRunner, cpu_count  # noqa: E402
from repro.service import (  # noqa: E402
    ArtifactRegistry,
    SelectionService,
    ServiceThread,
    ShardSupervisor,
    build_artifact,
)
from repro.service.server import _head_template  # noqa: E402
from repro.units import KiB, MiB, log_spaced_sizes  # noqa: E402

#: Latency budget of the acceptance criterion (seconds).
P99_BUDGET = 0.050

BATCH_SIZE = 16
BATCH_EVERY = 5  # every 5th request is a batch of BATCH_SIZE queries


def build_bench_artifact(full: bool, jobs: int):
    if full:
        spec = GROS.with_noise(0.0)
        kwargs = dict(procs=62, gamma_max_procs=7, max_reps=8)
        grid = dict(size_points=log_spaced_sizes(8 * KiB, 4 * MiB, 10))
    else:
        spec = MINICLUSTER
        sizes = log_spaced_sizes(8 * KiB, 1 * MiB, 6)
        kwargs = dict(procs=8, gamma_max_procs=5, max_reps=3, sizes=sizes)
        grid = dict(proc_points=range(2, 17, 2), size_points=sizes)
    runner = ParallelRunner(jobs=jobs)
    try:
        artifact = build_artifact(spec, runner=runner, **kwargs, **grid)
    finally:
        runner.close()
    return spec, artifact


def make_queries(artifact, count: int, seed: int) -> list[dict]:
    """A seeded mix of on-grid and off-grid (cluster, P, m) queries."""
    rng = random.Random(seed)
    entry = artifact.entries["bcast"]
    procs_max = entry.table.proc_points[-1]
    size_max = entry.table.size_points[-1]
    queries = []
    for _ in range(count):
        if rng.random() < 0.5:  # on-grid point
            procs = rng.choice(entry.table.proc_points)
            nbytes = rng.choice(entry.table.size_points)
        else:  # off-grid point, exercises floor semantics
            procs = rng.randint(2, procs_max)
            nbytes = rng.randint(1, size_max * 2)
        queries.append(
            {
                "cluster": artifact.cluster,
                "operation": "bcast",
                "procs": procs,
                "nbytes": nbytes,
            }
        )
    return queries


# -- workload precompute -----------------------------------------------------

#: The 200 keep-alive header the server renders on the /select hot path.
#: Using the server's own template keeps the precomputed response sizes
#: exact; any drift breaks the byte-counting framing loudly.
_HEAD = _head_template(200, "application/json", True, True)


def build_workload(artifact, clients: int, queries_per_client: int, tlen: int):
    """Per-client request streams plus the exact expected responses.

    Responses are rendered offline through a private
    :class:`SelectionService` over the same artifact, with a fixed-length
    dummy trace id — byte-identical to what the server will send except
    for the trace id characters themselves.
    """
    registry = ArtifactRegistry()
    registry.add(artifact)
    oracle = SelectionService(registry)
    dummy = "x" * tlen
    per_client = []
    for index in range(clients):
        queries = make_queries(artifact, queries_per_client, seed=index)
        blobs: list[bytes] = []
        exp_bodies: list[bytes] = []
        position = 0
        request = 0
        while position < len(queries):
            if request % BATCH_EVERY == BATCH_EVERY - 1:
                chunk = queries[position:position + BATCH_SIZE]
                payload = {"queries": chunk}
            else:
                chunk = queries[position:position + 1]
                payload = chunk[0]
            position += len(chunk)
            request += 1
            body = json.dumps(payload).encode("utf-8")
            blobs.append(
                b"POST /select HTTP/1.1\r\nHost: bench\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n" % len(body) + body
            )
            exp_bodies.append(oracle.select_body(payload, dummy))
        per_client.append((blobs, exp_bodies))
    return per_client


# -- load generator ----------------------------------------------------------
#
# One process, one thread per client connection — the same shape as run 1
# of BENCH_service.json (8 HTTPConnection threads under one GIL), but
# each thread is a closed-loop pipelined client: it keeps up to
# ``--depth`` requests in flight and uses byte-counting flow control, so
# the timed loop does zero parsing.  Verification runs after every
# thread's clock has stopped.


class _ClientThread(threading.Thread):
    def __init__(
        self,
        index: int,
        port: int,
        blobs: list[bytes],
        sizes: list[int],
        depth: int,
        warmup: int,
        ready: threading.Barrier,
        go: threading.Event,
    ):
        super().__init__(daemon=True)
        self.index = index
        self.port = port
        self.depth = depth
        self.warmup = warmup
        self.ready = ready
        self.go = go
        self.offsets = [0]
        for blob in blobs:
            self.offsets.append(self.offsets[-1] + len(blob))
        self.request_view = memoryview(b"".join(blobs))
        self.cumulative = [0]
        for size in sizes:
            self.cumulative.append(self.cumulative[-1] + size)
        self.n = len(blobs)
        self.start_time = 0.0
        self.end_time = 0.0
        self.data = b""
        self.error: BaseException | None = None

    def pass_once(self, sock: socket.socket, last: int) -> bytes:
        """Send requests [0, last) keeping <= depth in flight."""
        cumulative = self.cumulative
        offsets = self.offsets
        depth = self.depth
        total = cumulative[last]
        buffer = bytearray(total)
        response_view = memoryview(buffer)
        sent = done = received = 0
        while received < total:
            while done < last and cumulative[done + 1] <= received:
                done += 1
            if sent < last and sent - done < depth:
                upto = min(last, done + depth)
                sock.sendall(self.request_view[offsets[sent]:offsets[upto]])
                sent = upto
            got = sock.recv_into(response_view[received:], total - received)
            if not got:
                raise RuntimeError("server closed the connection mid-load")
            received += got
        return bytes(buffer)

    def run(self) -> None:
        try:
            sock = socket.create_connection(("127.0.0.1", self.port))
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self.warmup:
                self.pass_once(sock, min(self.warmup, self.n))
            self.ready.wait()
            self.go.wait()
            self.start_time = time.monotonic()
            self.data = self.pass_once(sock, self.n)
            self.end_time = time.monotonic()
            sock.close()
        except BaseException as error:  # surfaced by the loadgen main
            self.error = error
            try:
                self.ready.abort()
            except Exception:
                pass


def _verify_stream(
    data: bytes, exp_bodies: list[bytes], cumulative: list[int], tlen: int
):
    """Byte-compare one response stream against the offline rendering
    (minus the trace-id tails) and decode the served selections."""
    mismatches = 0
    parsed: list[tuple] = []
    trace_tail = tlen + 2  # '<trace>"}'
    for i in range(len(exp_bodies)):
        chunk = data[cumulative[i]:cumulative[i + 1]]
        expected = exp_bodies[i]
        body = chunk[len(chunk) - len(expected):]
        if (
            not chunk.startswith(b"HTTP/1.1 200 ")
            or body[:-trace_tail] != expected[:-trace_tail]
        ):
            mismatches += 1
            continue
        payload = json.loads(body)
        results = payload["results"] if "results" in payload else [payload]
        for result in results:
            parsed.append((
                result["algorithm"],
                result["segment_size"],
                result.get("clamped", False),
            ))
    return mismatches, parsed


def _loadgen_main(
    port: int,
    workload_path: str,
    depth: int,
    warmup: int,
    tlen: int,
    conn,
) -> None:
    """Load-generator process: all client threads under one GIL."""
    import pickle

    with open(workload_path, "rb") as handle:
        per_client = pickle.load(handle)
    all_sizes = [
        [
            len(_HEAD % (len(body), b"x" * tlen)) + len(body)
            for body in exp_bodies
        ]
        for _, exp_bodies in per_client
    ]
    ready = threading.Barrier(len(per_client) + 1)
    go = threading.Event()
    threads = [
        _ClientThread(
            index, port, blobs, all_sizes[index], depth, warmup, ready, go
        )
        for index, (blobs, _) in enumerate(per_client)
    ]
    for thread in threads:
        thread.start()
    try:
        ready.wait(timeout=60)
    except threading.BrokenBarrierError:
        errors = [t.error for t in threads if t.error is not None]
        conn.send(("error", f"client failed during warmup: {errors[:1]}"))
        return
    conn.send(("ready",))
    conn.recv()  # the parent releases the fleet
    go.set()
    for thread in threads:
        thread.join(timeout=120)
    for thread in threads:
        if thread.error is not None:
            conn.send(("error", repr(thread.error)))
            return
    mismatches = 0
    parsed = []
    for thread in threads:
        bad, selections = _verify_stream(
            thread.data, per_client[thread.index][1],
            thread.cumulative, tlen,
        )
        mismatches += bad
        parsed.append(selections)
    duration = (
        max(t.end_time for t in threads)
        - min(t.start_time for t in threads)
    )
    conn.send(("done", duration, mismatches, parsed))
    conn.close()


# -- metrics scraping --------------------------------------------------------


def parse_metrics(text: str):
    """Prometheus text -> (counter sums, request-latency buckets)."""
    counters: dict[str, float] = {}
    buckets: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value = line.rpartition(" ")
        if name_part.startswith("repro_request_seconds_bucket"):
            le = name_part.split('le="', 1)[1].split('"', 1)[0]
            buckets[le] = buckets.get(le, 0.0) + float(value)
        else:
            name = name_part.split("{", 1)[0]
            counters[name] = counters.get(name, 0.0) + float(value)
    return counters, buckets


def histogram_percentile(before: dict, after: dict, q: float) -> float:
    """Upper bound (seconds) of the q-quantile from cumulative buckets."""
    deltas = sorted(
        (
            float("inf") if le == "+Inf" else float(le),
            after[le] - before.get(le, 0.0),
        )
        for le in after
    )
    if not deltas:
        return 0.0
    total = deltas[-1][1]
    if total <= 0:
        return 0.0
    for le, cum in deltas:
        if cum >= q * total:
            return le
    return deltas[-1][0]


_WANTED = (
    "repro_select_queries_total",
    "repro_select_batch_queries_total",
    "repro_query_cache_hits_total",
    "repro_query_cache_misses_total",
    "repro_request_seconds_count",
)


def scrape_http(port: int) -> str:
    conn = HTTPConnection("127.0.0.1", port)
    conn.request("GET", "/metrics")
    text = conn.getresponse().read().decode()
    conn.close()
    return text


# -- one sweep configuration -------------------------------------------------


def drive(
    port: int,
    workload_path: str,
    depth: int,
    warmup: int,
    tlen: int,
    ctx,
):
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(
        target=_loadgen_main,
        args=(port, workload_path, depth, warmup, tlen, child_conn),
        daemon=True,
    )
    process.start()
    child_conn.close()
    message = parent_conn.recv()
    if message[0] != "ready":
        raise RuntimeError(f"load generator failed: {message[1]}")
    parent_conn.send("go")
    message = parent_conn.recv()
    process.join(timeout=180)
    if message[0] != "done":
        raise RuntimeError(f"load generator failed: {message[1]}")
    _, duration, mismatches, parsed = message
    return duration, mismatches, parsed


def run_config(
    workers: int,
    artifact,
    artifact_dir: str,
    workload_path: str,
    depth: int,
    warmup: int,
    tlen: int,
    ctx,
) -> dict:
    table = artifact.entries["bcast"].table
    if workers == 0:
        registry = ArtifactRegistry()
        registry.add(artifact)
        service = SelectionService(registry)
        with ServiceThread(service) as handle:
            before = scrape_http(handle.port)
            duration, mismatches, parsed = drive(
                handle.port, workload_path, depth, warmup, tlen, ctx
            )
            after = scrape_http(handle.port)
    else:
        supervisor = ShardSupervisor(
            artifact_dir, port=0, workers=workers
        )
        supervisor.start()
        try:
            before = supervisor.metrics_text()
            duration, mismatches, parsed = drive(
                supervisor.port, workload_path, depth, warmup, tlen, ctx,
            )
            after = supervisor.metrics_text()
        finally:
            supervisor.stop()

    # Bit-identity: every decoded selection equals the offline lookup.
    total_queries = 0
    for index, selections in enumerate(parsed):
        expected_queries = make_queries(
            artifact, len(selections), seed=index
        )
        for query, got in zip(expected_queries, selections):
            total_queries += 1
            selection, clamped = table.lookup(
                query["procs"], query["nbytes"]
            )
            want = (selection.algorithm, selection.segment_size, clamped)
            if got != want:
                raise RuntimeError(
                    f"served selection diverged at {query}: {got} != {want}"
                )
    if mismatches:
        raise RuntimeError(
            f"{mismatches} responses diverged from the offline rendering"
        )

    before_counters, before_buckets = parse_metrics(before)
    after_counters, after_buckets = parse_metrics(after)
    p50 = histogram_percentile(before_buckets, after_buckets, 0.50)
    p95 = histogram_percentile(before_buckets, after_buckets, 0.95)
    p99 = histogram_percentile(before_buckets, after_buckets, 0.99)

    if total_queries < 1000:
        raise RuntimeError(f"only {total_queries} queries; need >= 1000")
    if p99 >= P99_BUDGET:
        raise RuntimeError(f"p99 <= {p99 * 1e3:.2f} ms exceeds 50 ms budget")

    return {
        "workers": workers,
        "queries": total_queries,
        "duration_s": duration,
        "queries_per_s": total_queries / duration if duration else 0.0,
        "latency_ms": {
            # Upper bounds from the server-side histogram delta; the
            # timed loop is closed-loop pipelined, so there is no
            # meaningful per-request client-side latency to report.
            "p50_le": p50 * 1e3,
            "p95_le": p95 * 1e3,
            "p99_le": p99 * 1e3,
        },
        "selections_bit_identical": True,
        "server_metrics": {
            name: after_counters.get(name, 0.0)
            - before_counters.get(name, 0.0)
            for name in _WANTED
            if name in after_counters
        },
    }


# -- entry point -------------------------------------------------------------


def run_bench(
    full: bool,
    clients: int,
    queries_per_client: int,
    jobs: int,
    workers_sweep: list[int],
    depth: int,
    warmup: int,
    repeat: int,
) -> dict:
    print("building artifact...")
    build_start = time.perf_counter()
    spec, artifact = build_bench_artifact(full, jobs)
    build_s = time.perf_counter() - build_start
    table = artifact.entries["bcast"].table
    tlen = len(obs.new_trace_id())
    ctx = multiprocessing.get_context("spawn")

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        artifact_dir = Path(scratch) / "artifacts"
        artifact_dir.mkdir()
        artifact.save(artifact_dir / "artifact.json")
        workload_path = Path(scratch) / "workload.pkl"
        import pickle

        workload = build_workload(artifact, clients, queries_per_client, tlen)
        with open(workload_path, "wb") as handle:
            pickle.dump(workload, handle)
        requests_per_client = len(workload[0][0])

        sweep = []
        for workers in workers_sweep:
            label = (
                "in-process" if workers == 0
                else f"{workers} reuseport worker(s)"
            )
            print(
                f"[{label}] {clients} clients x {queries_per_client} "
                f"queries, depth {depth}, best of {repeat}..."
            )
            # Best-of-N: the timed window is a few hundred ms, so a
            # single trial is at the mercy of whatever else the machine
            # is doing.  All trial rates are recorded alongside.
            trials = []
            for _ in range(repeat):
                trials.append(run_config(
                    workers, artifact, str(artifact_dir),
                    str(workload_path), depth, warmup, tlen, ctx,
                ))
            result = max(trials, key=lambda t: t["queries_per_s"])
            result["trials_queries_per_s"] = [
                trial["queries_per_s"] for trial in trials
            ]
            print(
                f"[{label}] {result['queries']} queries in "
                f"{result['duration_s']:.3f}s -> "
                f"{result['queries_per_s']:,.0f} q/s "
                f"(trials: {[f'{t:,.0f}' for t in result['trials_queries_per_s']]})"
            )
            sweep.append(result)

    best = max(sweep, key=lambda result: result["queries_per_s"])
    return {
        "metadata": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": cpu_count(),
        },
        "workload": {
            "cluster": spec.name,
            "scale": "full" if full else "quick",
            "mode": "closed-loop-pipelined",
            "clients": clients,
            "queries_per_client": queries_per_client,
            "requests_per_client": requests_per_client,
            "batch_every": BATCH_EVERY,
            "batch_size": BATCH_SIZE,
            "depth": depth,
            "warmup_requests": warmup,
            "grid": f"{len(table.proc_points)}x{len(table.size_points)}",
        },
        "artifact": {
            "id": artifact.artifact_id,
            "build_s": build_s,
        },
        "sweep": sweep,
        "queries": best["queries"],
        "duration_s": best["duration_s"],
        "queries_per_s": best["queries_per_s"],
        "best_workers": best["workers"],
        "latency_ms": best["latency_ms"],
        "p99_budget_ms": P99_BUDGET * 1e3,
        "selections_bit_identical": True,
        "server_metrics": best["server_metrics"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO / "BENCH_service.json"))
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--queries", type=int, default=6000, help="queries per client"
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="workers for the artifact build (0 = all cores)",
    )
    parser.add_argument(
        "--workers", default="1,2",
        help="comma-separated worker counts to sweep "
             "(0 = in-process server thread, N = SO_REUSEPORT fleet)",
    )
    parser.add_argument(
        "--depth", type=int, default=512,
        help="max in-flight requests per client connection",
    )
    parser.add_argument(
        "--warmup", type=int, default=200,
        help="untimed warmup requests per client",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="trials per worker count; the best is recorded "
             "(all trial rates are kept alongside)",
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale artifact (noise-free Gros)")
    args = parser.parse_args(argv)

    workers_sweep = [int(part) for part in args.workers.split(",")]
    run = run_bench(
        args.full, args.clients, args.queries, args.jobs or cpu_count(),
        workers_sweep, args.depth, args.warmup, args.repeat,
    )

    output = Path(args.output)
    if output.exists():
        document = json.loads(output.read_text())
    else:
        document = {"runs": []}
    baseline = None
    for previous in document["runs"]:
        if "queries_per_s" in previous:
            baseline = previous["queries_per_s"]
            break
    if baseline:
        run["speedup_vs_run1"] = run["queries_per_s"] / baseline
    document["runs"].append(run)
    output.write_text(json.dumps(document, indent=2) + "\n")

    latency = run["latency_ms"]
    print(f"wrote {output}")
    speedup = (
        f", {run['speedup_vs_run1']:.1f}x vs run 1"
        if "speedup_vs_run1" in run else ""
    )
    print(
        f"best ({run['best_workers']} workers): {run['queries']} queries "
        f"in {run['duration_s']:.2f}s ({run['queries_per_s']:,.0f} q/s"
        f"{speedup}) | server-side p50 <= {latency['p50_le']:.2f} ms, "
        f"p99 <= {latency['p99_le']:.2f} ms (budget 50 ms) | "
        f"bit-identical: {run['selections_bit_identical']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
