"""Selection primitives and the measured oracle (ground truth).

A :class:`Selection` names an algorithm plus the segment size it should run
with — the same pair Open MPI's decision functions produce.  The
:class:`MeasuredOracle` runs every candidate algorithm on the simulated
cluster and returns the empirically best one; Table 3's "Best" column and
the green curve of Fig. 5.

Measurements flow through the :mod:`repro.exec` runner, so they are
memoised at three levels: the oracle's own ``(procs, nbytes, algorithm,
segment)`` memo (so Table 3 and Fig. 5 share *means*), the runner's
in-process memo, and — when configured — the persistent result cache (so
they are shared across processes and sessions).  :meth:`prefetch` warms a
whole sweep through the runner in one parallel batch.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS
from repro.errors import SelectionError
from repro.estimation.statistics import adaptive_measure
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.units import KiB


@dataclass(frozen=True)
class Selection:
    """An algorithm choice: name plus segment size (0 = unsegmented).

    ``operation`` names the collective the choice belongs to (``"bcast"``
    unless the future-work reduce selection produced it); the algorithm
    name is validated against that operation's catalogue.
    """

    algorithm: str
    segment_size: int
    operation: str = "bcast"

    def __post_init__(self) -> None:
        from repro.collectives.registry import algorithm_names

        known = algorithm_names(self.operation)
        if self.algorithm not in known:
            raise SelectionError(
                f"unknown {self.operation} algorithm {self.algorithm!r}; "
                f"known: {', '.join(known)}"
            )
        if self.segment_size < 0:
            raise SelectionError(f"negative segment size {self.segment_size}")

    def describe(self) -> str:
        if self.segment_size:
            return f"{self.algorithm} ({self.segment_size // 1024} KB segments)"
        return f"{self.algorithm} (no segmentation)"


@dataclass
class OracleStats:
    """Memo-effectiveness counters of one :class:`MeasuredOracle`.

    ``simulations`` counts the simulator runs performed *for this oracle*
    (repetitions of adaptive measurements); runner-level cache hits that
    avoided a simulation entirely are visible in the runner's own stats.
    """

    memo_hits: int = 0
    memo_misses: int = 0
    simulations: int = 0

    def as_dict(self) -> dict:
        return {
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "simulations": self.simulations,
        }


def _stable_key_hash(key: tuple) -> int:
    """Deterministic across processes (unlike ``hash`` on strings)."""
    return zlib.crc32(repr(key).encode("utf-8"))


#: The simulation job kind measuring one call of each collective.
ORACLE_JOB_KINDS = {
    "bcast": "bcast",
    "reduce": "reduce",
    "gather": "gather",
    "barrier": "barrier",
    "allreduce": "allreduce",
    "allgather": "allgather",
    "alltoall": "alltoall",
    "scatter": "scatter",
}

#: Operations whose algorithms take a segment size.
SEGMENTED_OPERATIONS = ("bcast", "reduce")


class MeasuredOracle:
    """Exhaustive measurement: the empirically optimal algorithm.

    Results are memoised per ``(procs, nbytes, algorithm, segment_size)``
    so Table 3 and Fig. 5 share measurements.

    ``operation`` picks the collective under test (default ``"bcast"``,
    the paper's experiment); candidate algorithms default to the paper's
    six for broadcast and to the operation's full catalogue otherwise.
    Unsegmented operations (gather, barrier) force ``segment_size=0``.
    """

    #: Repetitions prefetched per measurement before the adaptive loop runs.
    #: Deterministic platforms converge after exactly two identical samples,
    #: so two is the whole schedule there; noisy platforms draw any further
    #: repetitions serially.
    PREFETCH_REPS = 2

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        operation: str = "bcast",
        algorithms: Sequence[str] | None = None,
        segment_size: int = 8 * KiB,
        precision: float = 0.025,
        max_reps: int = 12,
        seed: int = 0,
        runner: ParallelRunner | None = None,
    ):
        if operation not in ORACLE_JOB_KINDS:
            raise SelectionError(
                f"no measured oracle for operation {operation!r}; "
                f"known: {', '.join(sorted(ORACLE_JOB_KINDS))}"
            )
        self.spec = spec
        self.operation = operation
        if algorithms is not None:
            self.algorithms = list(algorithms)
        elif operation == "bcast":
            # Default to the paper's six algorithms so Table 3 / Fig. 5 stay
            # faithful; pass an explicit list to include extension algorithms.
            self.algorithms = sorted(PAPER_BCAST_ALGORITHMS)
        elif operation == "reduce":
            # Same contract: topology-aware extensions are opt-in.
            from repro.collectives.reduce import DEFAULT_REDUCE_ALGORITHMS

            self.algorithms = sorted(DEFAULT_REDUCE_ALGORITHMS)
        else:
            from repro.collectives.registry import algorithm_names

            self.algorithms = algorithm_names(operation)
        self.segment_size = (
            segment_size if operation in SEGMENTED_OPERATIONS else 0
        )
        self.precision = precision
        self.max_reps = max_reps
        self.seed = seed
        self.runner = runner
        self.stats = OracleStats()
        self._cache: dict[tuple[int, int, str, int], float] = {}

    def _runner(self) -> ParallelRunner:
        return self.runner if self.runner is not None else default_runner()

    def _base_seed(self, key: tuple[int, int, str, int]) -> int:
        return self.seed + _stable_key_hash(key) % 1_000_000

    def _job(
        self, procs: int, nbytes: int, algorithm: str, seg: int, rep_seed: int
    ) -> SimJob:
        if self.operation == "barrier":
            # Barriers carry no payload: the job ignores size and segment,
            # so measurements at different nbytes share one simulation.
            return SimJob(
                spec=self.spec,
                kind="barrier",
                procs=procs,
                algorithm=algorithm,
                seed=rep_seed,
            )
        return SimJob(
            spec=self.spec,
            kind=ORACLE_JOB_KINDS[self.operation],
            procs=procs,
            algorithm=algorithm,
            nbytes=nbytes,
            segment_size=seg,
            seed=rep_seed,
        )

    def prefetch(
        self,
        procs: int,
        sizes: Sequence[int],
        *,
        selections: Sequence[tuple[int, Selection]] = (),
    ) -> None:
        """Warm the runner with a whole sweep in one parallel batch.

        Enumerates the first :attr:`PREFETCH_REPS` repetitions of every
        (size, algorithm) measurement — plus any extra ``(nbytes,
        selection)`` pairs whose segment sizes differ from the default —
        exactly as the adaptive loop will request them, and executes them
        through the runner.
        """
        grid = [
            (nbytes, name, self.segment_size)
            for nbytes in sizes
            for name in self.algorithms
        ]
        grid += [(n, s.algorithm, s.segment_size) for n, s in selections]
        batch: list[SimJob] = []
        for nbytes, name, seg in grid:
            key = (procs, nbytes, name, seg)
            if key in self._cache:
                continue
            base = self._base_seed(key)
            for rep in range(self.PREFETCH_REPS):
                batch.append(
                    self._job(procs, nbytes, name, seg, base + 7919 * rep)
                )
        if batch:
            self._runner().prefetch(batch)

    def measure(
        self,
        procs: int,
        nbytes: int,
        algorithm: str,
        segment_size: int | None = None,
    ) -> float:
        """Mean measured time of one algorithm (memoised)."""
        seg = self.segment_size if segment_size is None else segment_size
        key = (procs, nbytes, algorithm, seg)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        self.stats.memo_misses += 1
        runner = self._runner()

        def measure_once(rep_seed: int) -> float:
            self.stats.simulations += 1
            return runner.run_one(
                self._job(procs, nbytes, algorithm, seg, rep_seed)
            )

        stats = adaptive_measure(
            measure_once,
            precision=self.precision,
            max_reps=self.max_reps,
            seed=self._base_seed(key),
        )
        self._cache[key] = stats.mean
        return stats.mean

    def measure_selection(self, procs: int, nbytes: int, choice: Selection) -> float:
        """Measured time of an arbitrary (algorithm, segment size) choice."""
        return self.measure(procs, nbytes, choice.algorithm, choice.segment_size)

    def sweep(self, procs: int, nbytes: int) -> dict[str, float]:
        """Measured time of every candidate algorithm at ``(procs, nbytes)``."""
        self.prefetch(procs, [nbytes])
        return {
            name: self.measure(procs, nbytes, name) for name in self.algorithms
        }

    def best(self, procs: int, nbytes: int) -> tuple[Selection, float]:
        """The empirically best algorithm and its measured time."""
        times = self.sweep(procs, nbytes)
        winner = min(times, key=times.get)
        return (
            Selection(winner, self.segment_size, operation=self.operation),
            times[winner],
        )

    def degradation(
        self, procs: int, nbytes: int, choice: Selection
    ) -> float:
        """Relative slowdown of ``choice`` versus the best, in percent.

        This is the figure Table 3 prints in braces.
        """
        _, best_time = self.best(procs, nbytes)
        chosen_time = self.measure_selection(procs, nbytes, choice)
        if best_time <= 0:
            raise SelectionError("best time measured as non-positive")
        return 100.0 * (chosen_time - best_time) / best_time
