"""The virtual-topology tree structure shared by all collective algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError


@dataclass(frozen=True)
class Tree:
    """A rooted tree over communicator ranks ``0..size-1``.

    ``parent[r]`` is the parent of rank ``r`` (``-1`` for the root);
    ``children[r]`` lists the children of rank ``r`` in send order — the
    order matters because interior nodes of the broadcast algorithms send to
    children in list order and the analytical models count those sends.
    """

    root: int
    parent: tuple[int, ...]
    children: tuple[tuple[int, ...], ...]
    _depth_cache: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def size(self) -> int:
        return len(self.parent)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`."""
        size = self.size
        if not 0 <= self.root < size:
            raise TopologyError(f"root {self.root} outside 0..{size - 1}")
        if len(self.children) != size:
            raise TopologyError("children table size mismatch")
        if self.parent[self.root] != -1:
            raise TopologyError("root must have parent -1")
        seen_as_child: set[int] = set()
        for rank in range(size):
            for child in self.children[rank]:
                if not 0 <= child < size:
                    raise TopologyError(f"child {child} outside communicator")
                if child in seen_as_child:
                    raise TopologyError(f"rank {child} appears as child twice")
                seen_as_child.add(child)
                if self.parent[child] != rank:
                    raise TopologyError(
                        f"child link {rank}->{child} disagrees with parent table"
                    )
        for rank in range(size):
            if rank == self.root:
                continue
            if rank not in seen_as_child:
                raise TopologyError(f"rank {rank} unreachable from root")
            if not 0 <= self.parent[rank] < size:
                raise TopologyError(f"rank {rank} has invalid parent")
        # Acyclicity + connectivity: walking to the root must terminate.
        for rank in range(size):
            if self.depth_of(rank) >= size:
                raise TopologyError(f"cycle through rank {rank}")

    def depth_of(self, rank: int) -> int:
        """Number of hops from the root to ``rank`` (root has depth 0)."""
        cached = self._depth_cache.get(rank)
        if cached is not None:
            return cached
        depth = 0
        current = rank
        while current != self.root and depth <= self.size:
            current = self.parent[current]
            depth += 1
        self._depth_cache[rank] = depth
        return depth

    @property
    def height(self) -> int:
        """Maximum depth over all ranks."""
        return max(self.depth_of(r) for r in range(self.size))

    def levels(self) -> list[list[int]]:
        """Ranks grouped by depth, ``levels()[0] == [root]``."""
        grouped: list[list[int]] = [[] for _ in range(self.height + 1)]
        for rank in range(self.size):
            grouped[self.depth_of(rank)].append(rank)
        return grouped

    def interior_ranks(self) -> list[int]:
        """Ranks with at least one child, in rank order."""
        return [r for r in range(self.size) if self.children[r]]

    def leaves(self) -> list[int]:
        """Ranks with no children, in rank order."""
        return [r for r in range(self.size) if not self.children[r]]

    def num_children(self, rank: int) -> int:
        return len(self.children[rank])

    def max_fanout(self) -> int:
        """Largest number of children of any rank."""
        return max(len(c) for c in self.children)

    def path_to_root(self, rank: int) -> list[int]:
        """Ranks from ``rank`` up to (and including) the root."""
        path = [rank]
        while path[-1] != self.root:
            if len(path) > self.size:
                raise TopologyError(f"cycle through rank {rank}")
            path.append(self.parent[path[-1]])
        return path

    def subtree_size(self, rank: int) -> int:
        """Number of ranks in the subtree rooted at ``rank`` (inclusive)."""
        total = 1
        for child in self.children[rank]:
            total += self.subtree_size(child)
        return total

    def render(self) -> str:
        """ASCII rendering (used by examples and error messages)."""
        lines: list[str] = []

        def walk(rank: int, prefix: str, tail: bool) -> None:
            connector = "`- " if tail else "|- "
            lines.append(f"{prefix}{connector if prefix else ''}{rank}")
            kids = self.children[rank]
            for i, child in enumerate(kids):
                extension = "   " if tail else "|  "
                walk(child, prefix + (extension if prefix else ""), i == len(kids) - 1)

        walk(self.root, "", True)
        return "\n".join(lines)


def tree_from_children(root: int, size: int, children_map: dict[int, list[int]]) -> Tree:
    """Build a validated :class:`Tree` from a children adjacency map."""
    parent = [-1] * size
    children: list[tuple[int, ...]] = [()] * size
    for rank, kids in children_map.items():
        if not 0 <= rank < size:
            raise TopologyError(f"rank {rank} outside communicator of size {size}")
        children[rank] = tuple(kids)
        for child in kids:
            if not 0 <= child < size:
                raise TopologyError(
                    f"child {child} outside communicator of size {size}"
                )
            if parent[child] != -1:
                raise TopologyError(f"rank {child} assigned two parents")
            parent[child] = rank
    parent[root] = -1
    tree = Tree(root=root, parent=tuple(parent), children=tuple(children))
    tree.validate()
    return tree
