"""Robustness tests: extreme parameters, heavy noise, adversarial inputs.

The simulator and estimation pipeline must stay correct (not merely
accurate) under ugly conditions: heavy measurement noise, extreme fabric
parameters, degenerate communicator shapes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clusters import MINICLUSTER, ClusterSpec
from repro.collectives.bcast import BCAST_ALGORITHMS
from repro.measure import time_bcast
from repro.selection.ompi_fixed import ompi_bcast_decision, ompi_reduce_decision
from repro.sim.network import NetworkParams
from repro.units import KiB


def make_extreme_cluster(**overrides) -> ClusterSpec:
    params = dict(
        latency=1e-3,  # a WAN-grade millisecond
        byte_time_out=1e-7,  # ~80 Mbit/s
        byte_time_in=1e-7,
        per_message_overhead=1e-4,
        send_overhead=1e-5,
        recv_overhead=1e-5,
        eager_limit=0,  # everything rendezvous
        control_latency=1e-3,
        shm_latency=1e-6,
        shm_byte_time=1e-9,
    )
    params.update(overrides)
    return ClusterSpec(
        name="extreme", nodes=8, procs_per_node=1,
        network=NetworkParams(**params),
    )


class TestExtremeFabrics:
    @pytest.mark.parametrize("algorithm", sorted(BCAST_ALGORITHMS))
    def test_all_algorithms_complete_on_all_rendezvous_fabric(self, algorithm):
        """eager_limit=0: every message handshakes; nothing deadlocks."""
        spec = make_extreme_cluster()
        elapsed = time_bcast(spec, algorithm, 8, 64 * KiB, 8 * KiB)
        assert elapsed > 0

    def test_zero_byte_broadcast(self):
        for algorithm in ("linear", "binomial", "chain"):
            elapsed = time_bcast(MINICLUSTER, algorithm, 6, 0, 8 * KiB)
            assert elapsed >= 0

    def test_one_byte_broadcast(self):
        for algorithm in sorted(BCAST_ALGORITHMS):
            elapsed = time_bcast(MINICLUSTER, algorithm, 5, 1, 8 * KiB)
            assert elapsed > 0

    def test_latency_free_fabric(self):
        spec = make_extreme_cluster(
            latency=0.0, control_latency=0.0, per_message_overhead=0.0,
            send_overhead=0.0, recv_overhead=0.0, shm_latency=0.0,
            eager_limit=1 << 30,
        )
        elapsed = time_bcast(spec, "binomial", 8, 64 * KiB, 8 * KiB)
        # Pure bandwidth: still positive and finite.
        assert 0 < elapsed < 1.0


class TestHeavyNoise:
    def test_estimation_survives_20_percent_jitter(self):
        from repro.estimation.gamma import estimate_gamma

        noisy = MINICLUSTER.with_noise(0.20)
        estimate = estimate_gamma(noisy, max_procs=4, max_reps=30, seed=7)
        assert estimate.table[2] == 1.0
        for value in estimate.table.values():
            assert 0.3 < value < 10.0

    def test_adaptive_measure_reports_non_convergence(self):
        from repro.estimation.statistics import adaptive_measure

        noisy = MINICLUSTER.with_noise(0.5)

        def measure(seed):
            return time_bcast(noisy, "binomial", 6, 64 * KiB, 8 * KiB, seed=seed)

        stats = adaptive_measure(measure, precision=1e-4, max_reps=5, seed=3)
        assert stats.n == 5
        assert not stats.converged
        assert stats.std > 0

    def test_huber_calibration_under_noise_still_ranks_sanely(self):
        """With 10% jitter the fitted platform still refuses linear at scale."""
        from repro.estimation.workflow import calibrate_platform
        from repro.selection.model_based import ModelBasedSelector
        from repro.units import MiB, log_spaced_sizes

        noisy = MINICLUSTER.with_noise(0.10)
        calibration = calibrate_platform(
            noisy,
            procs=8,
            sizes=log_spaced_sizes(8 * KiB, 1 * MiB, 4),
            gamma_max_procs=4,
            max_reps=10,
            seed=5,
        )
        selector = ModelBasedSelector(calibration.platform)
        assert selector.select(16, 1 * MiB).algorithm != "linear"


class TestDecisionFunctionTotality:
    """The ported decision functions are total over their whole domain."""

    @given(procs=st.integers(1, 10_000), nbytes=st.integers(0, 1 << 32))
    @settings(max_examples=200)
    def test_bcast_decision_always_valid(self, procs, nbytes):
        choice = ompi_bcast_decision(procs, nbytes)
        assert choice.algorithm in BCAST_ALGORITHMS
        assert choice.segment_size >= 0

    @given(procs=st.integers(1, 10_000), nbytes=st.integers(0, 1 << 32))
    @settings(max_examples=200)
    def test_reduce_decision_always_valid(self, procs, nbytes):
        choice = ompi_reduce_decision(procs, nbytes)
        assert choice.operation == "reduce"
        assert choice.segment_size >= 0

    @given(nbytes=st.integers(0, 1 << 30))
    @settings(max_examples=100)
    def test_bcast_decision_monotone_regions(self, nbytes):
        """Small messages always binomial; intermediate always split-binary."""
        choice = ompi_bcast_decision(64, nbytes)
        if nbytes < 2048:
            assert choice.algorithm == "binomial"
        elif nbytes < 370728:
            assert choice.algorithm == "split_binary"


class TestPlatformModelRoundTripProperty:
    @given(
        alpha=st.floats(0, 1e-3, allow_nan=False),
        beta=st.floats(0, 1e-6, allow_nan=False),
        segment=st.integers(1024, 1 << 20),
    )
    @settings(max_examples=50)
    def test_json_round_trip_exact(self, alpha, beta, segment, tmp_path_factory):
        from repro.estimation.workflow import PlatformModel
        from repro.models.gamma import GammaFunction
        from repro.models.hockney import HockneyParams

        platform = PlatformModel(
            cluster="prop",
            segment_size=segment,
            gamma=GammaFunction({3: 1.25}),
            parameters={"binomial": HockneyParams(alpha, beta)},
        )
        restored = PlatformModel.from_dict(platform.to_dict())
        assert restored.parameters == platform.parameters
        assert restored.segment_size == segment
