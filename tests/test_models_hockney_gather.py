"""Tests for the Hockney p2p model and the linear gather model (Eq. 8)."""

import pytest

from repro.models.gather_models import linear_gather_coefficients, linear_gather_time
from repro.models.hockney import HockneyParams


class TestHockneyParams:
    def test_p2p_time(self):
        params = HockneyParams(alpha=10e-6, beta=2e-9)
        assert params.p2p_time(1000) == pytest.approx(10e-6 + 2e-6)

    def test_zero_bytes_costs_alpha(self):
        params = HockneyParams(alpha=10e-6, beta=2e-9)
        assert params.p2p_time(0) == pytest.approx(10e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            HockneyParams(1e-6, 1e-9).p2p_time(-1)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            HockneyParams(alpha=1e-6, beta=-1e-9)

    def test_str_is_informative(self):
        text = str(HockneyParams(alpha=1.5e-6, beta=2.5e-9))
        assert "alpha" in text and "beta" in text


class TestLinearGatherModel:
    def test_eq8_structure(self):
        """T = (P-1)(alpha + m_g beta)."""
        params = HockneyParams(alpha=20e-6, beta=1e-9)
        assert linear_gather_time(10, 2048, params) == pytest.approx(
            9 * (20e-6 + 2048e-9)
        )

    def test_coefficients(self):
        coeffs = linear_gather_coefficients(5, 100)
        assert coeffs.c_alpha == 4
        assert coeffs.c_beta == 400

    def test_single_process_is_free(self):
        params = HockneyParams(alpha=20e-6, beta=1e-9)
        assert linear_gather_time(1, 2048, params) == 0.0
