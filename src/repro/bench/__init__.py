"""Shared experiment harness for the benchmark suite and the CLI.

:mod:`repro.bench.runner` orchestrates the paper's experiments (selection
comparisons, model-vs-measurement curves); :mod:`repro.bench.tables`
formats them as the paper's Tables 1-3; :mod:`repro.bench.figures`
produces the data series of Figs. 1 and 5 with CSV output and ASCII plots;
:mod:`repro.bench.chaos` re-runs the selection comparison under injected
faults and reports the model-vs-oracle drift.
"""

from repro.bench.chaos import ChaosReport, chaos_sweep, format_chaos, severity_plan
from repro.bench.runner import SelectionRow, selection_comparison
from repro.bench.tables import format_table1, format_table2, format_table3
from repro.bench.figures import ascii_plot, fig1_series, fig5_series, write_csv

__all__ = [
    "ChaosReport",
    "SelectionRow",
    "ascii_plot",
    "chaos_sweep",
    "fig1_series",
    "fig5_series",
    "format_chaos",
    "format_table1",
    "format_table2",
    "format_table3",
    "selection_comparison",
    "severity_plan",
    "write_csv",
]
