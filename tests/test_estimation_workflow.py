"""Tests for the end-to-end calibration workflow and PlatformModel."""

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import EstimationError
from repro.estimation.workflow import (
    DEFAULT_QUALITY,
    PlatformModel,
    QualityThresholds,
    calibrate_platform,
)
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams
from repro.units import KiB, log_spaced_sizes


class TestCalibration:
    def test_calibrates_all_six_algorithms(self, mini_calibration):
        assert sorted(mini_calibration.platform.algorithms) == [
            "binary",
            "binomial",
            "chain",
            "k_chain",
            "linear",
            "split_binary",
        ]

    def test_gamma_estimate_attached(self, mini_calibration):
        assert mini_calibration.gamma_estimate.table[2] == 1.0

    def test_alpha_beta_per_algorithm(self, mini_calibration):
        for name, estimate in mini_calibration.alpha_beta.items():
            assert estimate.algorithm == name
            # The effective segment cost is what the models consume.
            assert estimate.params.p2p_time(8 * 1024) > 0

    def test_predictions_positive_and_finite(self, mini_platform):
        for name, predicted in mini_platform.predict_all(12, 256 * KiB).items():
            assert predicted > 0, name

    def test_p2p_estimation_mode(self):
        result = calibrate_platform(
            MINICLUSTER,
            estimation="p2p",
            sizes=[8 * KiB, 64 * KiB, 256 * KiB],
            gamma_max_procs=4,
        )
        params = set(
            (p.alpha, p.beta) for p in result.platform.parameters.values()
        )
        assert len(params) == 1  # one shared ping-pong fit
        assert result.p2p_estimate is not None

    def test_traditional_family_mode(self):
        result = calibrate_platform(
            MINICLUSTER,
            model_family="traditional",
            sizes=[8 * KiB, 64 * KiB, 256 * KiB],
            gamma_max_procs=4,
            algorithms=["binomial", "chain"],
        )
        assert result.platform.model_family == "traditional"
        assert sorted(result.platform.algorithms) == ["binomial", "chain"]

    def test_unknown_estimation_rejected(self):
        with pytest.raises(EstimationError):
            calibrate_platform(MINICLUSTER, estimation="magic")

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            calibrate_platform(MINICLUSTER, model_family="quantum")


class TestPlatformModel:
    def make_platform(self):
        return PlatformModel(
            cluster="toy",
            segment_size=8 * KiB,
            gamma=GammaFunction({3: 1.1, 4: 1.2}),
            parameters={
                "binomial": HockneyParams(1e-6, 1e-9),
                "chain": HockneyParams(2e-6, 2e-9),
            },
        )

    def test_predict_uses_per_algorithm_parameters(self):
        platform = self.make_platform()
        binomial = platform.predict("binomial", 16, 64 * KiB)
        chain = platform.predict("chain", 16, 64 * KiB)
        assert binomial != chain

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(EstimationError, match="no parameters"):
            self.make_platform().predict("linear", 8, 1024)

    def test_segment_size_override(self):
        platform = self.make_platform()
        default = platform.predict("chain", 16, 256 * KiB)
        coarse = platform.predict("chain", 16, 256 * KiB, segment_size=64 * KiB)
        assert default != coarse

    def test_model_instances_cached(self):
        platform = self.make_platform()
        assert platform.model_for("chain") is platform.model_for("chain")

    def test_json_round_trip(self, tmp_path):
        platform = self.make_platform()
        path = tmp_path / "platform.json"
        platform.save(path)
        loaded = PlatformModel.load(path)
        assert loaded.cluster == platform.cluster
        assert loaded.segment_size == platform.segment_size
        assert loaded.parameters == platform.parameters
        assert loaded.gamma.table == platform.gamma.table
        # And it predicts identically.
        assert loaded.predict("chain", 16, 64 * KiB) == pytest.approx(
            platform.predict("chain", 16, 64 * KiB)
        )

    def test_invalid_family_rejected(self):
        with pytest.raises(EstimationError):
            PlatformModel(
                cluster="toy",
                segment_size=8 * KiB,
                gamma=GammaFunction.ideal(),
                parameters={},
                model_family="bogus",
            )


class TestCalibrationQuality:
    def test_quality_attached_to_every_fit(self, mini_calibration):
        for name, estimate in mini_calibration.alpha_beta.items():
            assert estimate.quality is not None, name
            q = estimate.quality
            assert q.fitted <= q.points
            assert q.screened == q.points - q.fitted
            assert 0.0 <= q.converged_fraction <= 1.0
            assert q.relative_residual >= 0.0

    def test_quality_report_is_json_ready(self, mini_calibration):
        report = mini_calibration.quality_report()
        assert set(report) == set(mini_calibration.alpha_beta)
        import json

        json.dumps(report)  # must not raise

    def test_clean_cluster_passes_default_gate(self, mini_calibration):
        assert mini_calibration.check_quality() == []

    def test_impossible_gate_fails_everything(self, mini_calibration):
        gate = QualityThresholds(
            max_relative_residual=0.0, min_converged_fraction=1.1
        )
        failed = mini_calibration.check_quality(gate)
        assert set(failed) == set(mini_calibration.alpha_beta)

    def test_strict_calibration_raises_on_impossible_gate(self):
        gate = QualityThresholds(
            max_relative_residual=0.0, min_converged_fraction=1.1
        )
        with pytest.raises(EstimationError, match="quality gate"):
            calibrate_platform(
                MINICLUSTER,
                procs=4,
                sizes=log_spaced_sizes(8 * KiB, 64 * KiB, 3),
                gamma_max_procs=4,
                max_reps=3,
                strict=gate,
            )

    def test_strict_calibration_passes_default_gate(self):
        result = calibrate_platform(
            MINICLUSTER,
            procs=4,
            sizes=log_spaced_sizes(8 * KiB, 64 * KiB, 3),
            gamma_max_procs=4,
            max_reps=3,
            strict=DEFAULT_QUALITY,
        )
        assert result.check_quality() == []

    def test_screening_does_not_change_clean_calibration(self):
        kwargs = dict(
            procs=4,
            sizes=log_spaced_sizes(8 * KiB, 64 * KiB, 3),
            gamma_max_procs=4,
            max_reps=3,
        )
        plain = calibrate_platform(MINICLUSTER, **kwargs)
        screened = calibrate_platform(MINICLUSTER, screen_mad=3.5, **kwargs)
        for name in plain.alpha_beta:
            assert screened.alpha_beta[name].alpha == pytest.approx(
                plain.alpha_beta[name].alpha
            )
            assert screened.alpha_beta[name].beta == pytest.approx(
                plain.alpha_beta[name].beta
            )

    def test_retry_budget_counts_no_retries_on_converged_data(self):
        result = calibrate_platform(
            MINICLUSTER,
            procs=4,
            sizes=log_spaced_sizes(8 * KiB, 64 * KiB, 3),
            gamma_max_procs=4,
            max_reps=3,
            retry_budget=2,
        )
        for estimate in result.alpha_beta.values():
            assert estimate.quality is not None
            assert estimate.quality.retried >= 0
