"""Benchmark: the efficiency claim of §5.3.

*"the efficiency of the selection procedure is evident from the low
complexity of the analytical formulas"* — a model-based decision must cost
microseconds (pure arithmetic), i.e. many orders of magnitude less than the
collective operation it optimises, and be in the same league as Open MPI's
hard-coded decision function.

This file measures: one model-based selection, one Open MPI fixed decision,
and one precomputed decision-table lookup.
"""

import pytest

from repro.selection.decision_table import build_decision_table
from repro.selection.model_based import ModelBasedSelector
from repro.selection.ompi_fixed import ompi_bcast_decision
from repro.units import KiB, MiB

from conftest import PAPER_SIZES


@pytest.fixture(scope="module")
def selector(grisou_calibration):
    return ModelBasedSelector(grisou_calibration.platform)


@pytest.fixture(scope="module")
def table(selector):
    return build_decision_table(selector, list(range(2, 129, 2)), PAPER_SIZES)


def test_model_based_decision_overhead(benchmark, selector, grisou_oracle):
    """One full model-based selection (six model evaluations + argmin)."""
    result = benchmark(selector.select, 90, 1 * MiB)
    assert result.algorithm in {"binary", "split_binary", "binomial", "chain", "k_chain"}
    # The decision is vastly cheaper than the collective it optimises:
    # compare against the measured 1 MiB broadcast time on the same cluster.
    bcast_time = grisou_oracle.measure(90, 1 * MiB, result.algorithm)
    assert benchmark.stats["mean"] < bcast_time * 50, (
        "selection overhead is not negligible next to the collective"
    )


def test_ompi_fixed_decision_overhead(benchmark):
    """The baseline decision function: straight-line threshold code."""
    result = benchmark(ompi_bcast_decision, 90, 1 * MiB)
    assert result.algorithm == "chain"


def test_decision_table_lookup_overhead(benchmark, table, selector):
    """The deployment path: precomputed table + bisect lookup."""
    result = benchmark(table.select, 90, 1 * MiB)
    assert result == selector.select(90, 1 * MiB)
