"""Structured spans: the core of the observability layer.

A :class:`Span` is one timed operation — a calibration phase, an executor
batch, an HTTP request — with monotonic start/end timestamps, free-form
attributes, and identity: a ``trace_id`` shared by every span of one
logical operation, a unique ``span_id``, and the ``parent_id`` of the
enclosing span.  Spans nest via a :mod:`contextvars` stack, so the tree is
correct across threads *and* inside asyncio tasks, and IDs embed the
process id, so traces merged from several processes stay unambiguous.

The :class:`SpanRecorder` is the collection point.  It is **disabled by
default** and the disabled path is a single attribute check returning a
shared no-op span — instrumented code pays (sub-)microseconds when nobody
is tracing.  Some call sites (the HTTP server) need a real span even when
tracing is off, because the span *is* their timer and trace-ID source;
they pass ``force=True`` and the recorder creates the span but does not
retain it.

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("artifact.build", cluster="gros") as sp:
        ...
        sp.set_attr("operations", 2)
    obs.save("build-trace.json")        # chrome://tracing / Perfetto

    @obs.traced("estimate.gamma")
    def estimate_gamma(...): ...
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from typing import Callable, Iterator

#: Binary salt distinguishing traces from different runner processes that
#: happen to share a pid (containers, pid reuse).
_SALT = os.urandom(3).hex()

_ids = itertools.count(1)

#: The innermost live span of the current thread / asyncio task.
_current: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

# The pid is baked into every id, so cache its formatted forms once per
# process; refreshed after fork so worker processes keep distinct ids.
_PID = os.getpid()
_PID_HEX = f"{_PID:x}"
_TRACE_PREFIX = f"{_SALT}{_PID:08x}"


def _refresh_pid() -> None:
    global _PID, _PID_HEX, _TRACE_PREFIX, _SALT
    _SALT = os.urandom(3).hex()
    _PID = os.getpid()
    _PID_HEX = f"{_PID:x}"
    _TRACE_PREFIX = f"{_SALT}{_PID:08x}"


if hasattr(os, "register_at_fork"):  # not on Windows
    os.register_at_fork(after_in_child=_refresh_pid)


def _next_id() -> str:
    """A span id unique across threads and processes: ``<pid>-<n>``."""
    return f"{_PID_HEX}-{next(_ids):x}"


def new_trace_id() -> str:
    """A fresh trace id: salted, process- and counter-unique."""
    return f"{_TRACE_PREFIX}{next(_ids):08x}"


class Span:
    """One timed operation with attributes and trace identity.

    Timestamps come from :func:`time.perf_counter` (monotonic); the wall
    clock of the start is kept separately for log correlation only.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "start_unix",
        "pid",
        "thread_id",
        "thread_name",
        "attributes",
        "_token",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        attributes: dict | None = None,
    ):
        self.name = name
        self.trace_id = trace_id or new_trace_id()
        self.span_id = _next_id()
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: float | None = None
        self.start_unix = time.time()
        self.pid = _PID
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        # The span takes ownership of the dict (recorder.span builds a
        # fresh one from **kwargs); copying here would double the cost of
        # every attributed span.
        self.attributes: dict = attributes if attributes is not None else {}
        self._token = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to *now* while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set_attr(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attrs(self, **attributes) -> None:
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        """JSONL-ready representation (one line per span)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "start_unix": self.start_unix,
            "pid": self.pid,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return f"<Span {self.name!r} {state} trace={self.trace_id[:8]}…>"


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled.

    Mirrors the :class:`Span` surface that instrumented code touches, so
    call sites never branch on whether tracing is on.
    """

    __slots__ = ()

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    duration = 0.0
    attributes: dict = {}

    def set_attr(self, key: str, value) -> None:
        pass

    def set_attrs(self, **attributes) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a :class:`Span` on a recorder."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span: Span):
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        span._token = _current.set(span)
        # Re-stamp the start so recorder bookkeeping before __enter__ does
        # not count against the span.
        span.start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, _tb) -> None:
        span = self._span
        span.end = time.perf_counter()
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        if span._token is not None:
            _current.reset(span._token)
            span._token = None
        self._recorder._finish(span)


class SpanRecorder:
    """Collects finished spans; thread-safe; disabled by default.

    ``enabled`` controls *retention* (and JSONL streaming); finish hooks
    — e.g. the span-to-metrics bridge — always run, even for forced spans
    recorded while tracing is off.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: list[Span] = []
        #: perf_counter origin all exported timestamps are relative to.
        self.origin = time.perf_counter()
        self._lock = threading.Lock()
        self._hooks: list[Callable[[Span], None]] = []
        self._stream = None  # open file handle for JSONL streaming

    # -- span creation -----------------------------------------------------

    def span(self, name: str, *, force: bool = False, **attributes):
        """Open a span as a context manager.

        Returns the shared :data:`NULL_SPAN` when tracing is disabled and
        ``force`` is false — the no-tracing fast path.  A forced span is
        always real (it has IDs, duration and runs the finish hooks) but
        is only *retained* while the recorder is enabled.
        """
        if not (self.enabled or force):
            return NULL_SPAN
        parent = _current.get()
        return _SpanContext(
            self,
            Span(
                name,
                trace_id=parent.trace_id if parent is not None else None,
                parent_id=parent.span_id if parent is not None else None,
                attributes=attributes,
            ),
        )

    def traced(self, name: str | None = None, **attributes):
        """Decorator form: trace every call of the wrapped function."""

        def decorate(func):
            span_name = name or f"{func.__module__}.{func.__qualname__}"

            def wrapper(*args, **kwargs):
                with self.span(span_name, **attributes):
                    return func(*args, **kwargs)

            wrapper.__name__ = func.__name__
            wrapper.__qualname__ = func.__qualname__
            wrapper.__doc__ = func.__doc__
            wrapper.__wrapped__ = func
            return wrapper

        return decorate

    def current(self) -> Span | None:
        """The innermost live span of this thread/task, if any."""
        return _current.get()

    # -- finish plumbing ---------------------------------------------------

    def _finish(self, span: Span) -> None:
        if self.enabled:
            with self._lock:
                self.spans.append(span)
                if self._stream is not None:
                    import json

                    self._stream.write(json.dumps(span.to_dict()) + "\n")
        for hook in self._hooks:
            try:
                hook(span)
            except Exception:  # noqa: BLE001 — observability must not break work
                pass

    def add_finish_hook(self, hook: Callable[[Span], None]) -> Callable:
        """Run ``hook(span)`` on every finished span; returns the hook."""
        self._hooks.append(hook)
        return hook

    def remove_finish_hook(self, hook: Callable[[Span], None]) -> None:
        try:
            self._hooks.remove(hook)
        except ValueError:
            pass

    # -- lifecycle ---------------------------------------------------------

    def enable(self, stream_path=None) -> "SpanRecorder":
        """Start retaining spans (optionally streaming JSONL to a path)."""
        self.enabled = True
        self.origin = time.perf_counter()
        if stream_path is not None:
            self._stream = open(stream_path, "a", encoding="utf-8")
        return self

    def disable(self) -> None:
        self.enabled = False
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def finished(self) -> list[Span]:
        """Snapshot of the retained spans (oldest first)."""
        with self._lock:
            return list(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.finished())


#: The process-wide recorder the module-level API operates on.
_recorder = SpanRecorder(enabled=False)


def get_recorder() -> SpanRecorder:
    return _recorder


def enable(stream_path=None) -> SpanRecorder:
    """Turn span collection on process-wide; returns the recorder."""
    return _recorder.enable(stream_path)


def disable() -> None:
    _recorder.disable()


def is_enabled() -> bool:
    return _recorder.enabled


def span(name: str, *, force: bool = False, **attributes):
    """Open a span on the process-wide recorder (context manager)."""
    return _recorder.span(name, force=force, **attributes)


def traced(name: str | None = None, **attributes):
    """Decorator tracing calls through the process-wide recorder."""
    return _recorder.traced(name, **attributes)


def current_span() -> Span | None:
    return _recorder.current()
