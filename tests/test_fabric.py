"""The ``repro.fabric`` subsystem: multi-level topologies end to end.

Covers the fabric description layer (specs, builders, validation), the
contract that a *flat* fabric is bit-identical to no fabric at every
layer (fingerprints, simulated times, artifact content hashes, warm
caches), the simulator's uplink routing (inter-rack transfers pay the
extra switch tier and serialise on the rack uplink), the hierarchical
rack-leader collectives, and the acceptance scenario of the topology
extension: on a two-rack cluster with heavily oversubscribed uplinks the
conditioned artifact's decision table picks the hierarchical broadcast
where the flat table does not — and the measured oracle agrees.
"""

from __future__ import annotations

import json
from dataclasses import replace
from http.client import HTTPConnection

import pytest

from repro.clusters import MINICLUSTER, get_preset
from repro.errors import ArtifactError, SimulationError
from repro.exec.cache import ResultCache
from repro.exec.runner import ParallelRunner
from repro.fabric import (
    FLAT_FABRIC,
    FabricSpec,
    Uplink,
    available_fabrics,
    build_fabric,
    fat_tree,
    flat_fabric,
    heterogeneous_spine,
    leaf_spine,
)
from repro.measure import time_bcast, time_reduce
from repro.selection.oracle import MeasuredOracle
from repro.service import ArtifactRegistry, SelectionService, ServiceThread
from repro.service.artifact import build_artifact
from repro.topology.trees import build_hierarchy_tree

#: The acceptance platform: ten nodes split 5+5 across two racks whose
#: uplinks are oversubscribed hard enough that crossing them repeatedly
#: (as the flat algorithms do) loses to a single rack-leader transfer.
TWO_RACK = replace(MINICLUSTER, name="tworack", nodes=10)
ACCEPTANCE_SIZES = (16384, 32768, 65536, 131072)


def acceptance_fabric() -> FabricSpec:
    return leaf_spine(
        TWO_RACK, nodes_per_rack=5, oversubscription=32,
        name="acceptance_32to1",
    )


def build_acceptance_artifact(spec, **overrides):
    kwargs = dict(
        collectives=("bcast",),
        proc_points=[10],
        size_points=ACCEPTANCE_SIZES,
        procs=10,
        sizes=ACCEPTANCE_SIZES,
        max_reps=4,
        seed=0,
    )
    kwargs.update(overrides)
    return build_artifact(spec, **kwargs)


class TestFabricSpec:
    def test_flat_sentinel(self):
        assert FLAT_FABRIC.is_flat()
        assert flat_fabric(MINICLUSTER).is_flat()
        assert not acceptance_fabric().is_flat()

    def test_rack_assignment_is_block(self):
        fabric = acceptance_fabric()
        assert [fabric.rack_of(n) for n in range(10)] == [0] * 5 + [1] * 5

    def test_uplink_validation(self):
        with pytest.raises(SimulationError):
            Uplink(latency=-1e-6, byte_time=1e-9)
        with pytest.raises(SimulationError):
            Uplink(latency=1e-6, byte_time=1e-9, count=0)

    def test_payload_is_canonical(self):
        fabric = acceptance_fabric()
        payload = fabric.payload()
        assert payload["name"] == "acceptance_32to1"
        assert payload["nodes_per_rack"] == 5
        # Round-trippable through JSON with stable key order.
        assert json.loads(json.dumps(payload, sort_keys=True)) == json.loads(
            json.dumps(payload, sort_keys=True)
        )

    def test_heterogeneous_override(self):
        fabric = heterogeneous_spine(
            MINICLUSTER, nodes_per_rack=8, oversubscription=2.0,
            slow_racks={1: 2.0},
        )
        assert fabric.uplink_of(1).byte_time == pytest.approx(
            2.0 * fabric.uplink_of(0).byte_time
        )

    def test_fat_tree_compounds_ratios(self):
        fabric = fat_tree(
            MINICLUSTER, nodes_per_rack=4, pod_racks=2,
            rack_oversubscription=2.0, pod_oversubscription=2.0,
        )
        assert fabric.pod_racks == 2
        # Per-flow wire speed matches the rack uplink, but the pod link
        # is shared by twice the hosts: aggregate per-host bandwidth
        # through the pod tier is half that of the rack tier.
        rack_aggregate = fabric.uplink.byte_time * 4
        pod_aggregate = fabric.pod_uplink.byte_time * 8
        assert pod_aggregate == pytest.approx(2.0 * rack_aggregate)

    def test_build_fabric_rejects_unknown_name_listing_alternatives(self):
        with pytest.raises(ArtifactError) as excinfo:
            build_fabric("nonsense", MINICLUSTER)
        message = str(excinfo.value)
        for name in available_fabrics():
            assert name in message

    def test_named_builders_produce_fabrics(self):
        for name in available_fabrics():
            fabric = build_fabric(name, MINICLUSTER)
            assert fabric.is_flat() == (name == "flat")


class TestFingerprintFolding:
    def test_flat_fabric_fingerprint_is_bit_identical_to_none(self):
        with_flat = MINICLUSTER.with_fabric(flat_fabric(MINICLUSTER))
        assert with_flat.fingerprint() == MINICLUSTER.fingerprint()

    def test_non_flat_fabric_changes_the_fingerprint(self):
        conditioned = TWO_RACK.with_fabric(acceptance_fabric())
        assert conditioned.fingerprint() != TWO_RACK.fingerprint()

    def test_distinct_fabrics_fingerprint_differently(self):
        spec = get_preset("minicluster")
        prints = {
            spec.with_fabric(build_fabric(name, spec)).fingerprint()
            for name in available_fabrics()
            if name != "flat"
        }
        assert len(prints) == len(available_fabrics()) - 1

    def test_describe_mentions_the_fabric_only_when_non_flat(self):
        assert "fabric" not in MINICLUSTER.describe()
        flat = MINICLUSTER.with_fabric(flat_fabric(MINICLUSTER))
        assert "fabric" not in flat.describe()
        conditioned = TWO_RACK.with_fabric(acceptance_fabric())
        assert "acceptance_32to1" in conditioned.describe()


class TestFlatBitIdentity:
    def test_flat_fabric_simulates_bit_identically(self):
        flat = MINICLUSTER.with_fabric(flat_fabric(MINICLUSTER))
        for algorithm in ("binomial", "chain", "hierarchical"):
            assert time_bcast(
                flat, algorithm, 10, 65536, 8192
            ) == time_bcast(MINICLUSTER, algorithm, 10, 65536, 8192)

    def test_flat_artifact_content_hash_is_unchanged(self):
        bare = build_acceptance_artifact(TWO_RACK)
        flat = build_acceptance_artifact(
            TWO_RACK.with_fabric(flat_fabric(TWO_RACK))
        )
        assert flat.content_hash() == bare.content_hash()
        assert flat.fabric == "" and bare.fabric == ""
        assert "fabric" not in flat.payload()

    def test_flat_rebuild_replays_warm_cache_with_zero_simulations(
        self, tmp_path
    ):
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        build_acceptance_artifact(TWO_RACK, runner=cold)
        assert cold.stats.simulations > 0
        cold.close()
        # Attaching the *flat* fabric must hit every cached result: the
        # fingerprint, and therefore every cache key, is unchanged.
        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        build_acceptance_artifact(
            TWO_RACK.with_fabric(flat_fabric(TWO_RACK)), runner=warm
        )
        assert warm.stats.simulations == 0
        warm.close()


class TestUplinkRouting:
    def test_inter_rack_transfer_pays_the_switch_tiers(self):
        fabspec = TWO_RACK.with_fabric(acceptance_fabric())
        # P=2 stays inside rack 0; P=6 forces rank 5 into rack 1 and a
        # two-rank chain 0->5 would cross — use linear bcast at P=6 vs
        # the same ranks flat.
        flat = time_bcast(TWO_RACK, "linear", 6, 32768, 0)
        routed = time_bcast(fabspec, "linear", 6, 32768, 0)
        assert routed > flat
        # Purely intra-rack traffic is untouched.
        assert time_bcast(fabspec, "linear", 5, 32768, 0) == time_bcast(
            TWO_RACK, "linear", 5, 32768, 0
        )

    def test_oversubscription_ratio_orders_completion_times(self):
        mild = TWO_RACK.with_fabric(
            leaf_spine(TWO_RACK, nodes_per_rack=5, oversubscription=2)
        )
        harsh = TWO_RACK.with_fabric(
            leaf_spine(TWO_RACK, nodes_per_rack=5, oversubscription=32)
        )
        assert time_bcast(harsh, "binomial", 10, 262144, 8192) > time_bcast(
            mild, "binomial", 10, 262144, 8192
        )

    def test_parallel_uplinks_relieve_serialisation(self):
        single = TWO_RACK.with_fabric(
            leaf_spine(TWO_RACK, nodes_per_rack=5, oversubscription=32,
                       uplinks=1)
        )
        double = TWO_RACK.with_fabric(
            leaf_spine(TWO_RACK, nodes_per_rack=5, oversubscription=16,
                       uplinks=2)
        )
        # Same aggregate ratio per uplink count doubled: two parallel
        # links strictly help concurrent crossings (the linear root
        # sprays into the far rack).
        assert time_bcast(double, "linear", 10, 262144, 0) < time_bcast(
            single, "linear", 10, 262144, 0
        )

    def test_pod_tier_costs_more_than_rack_tier(self):
        spec = replace(MINICLUSTER, name="podded", nodes=16)
        fabric = fat_tree(
            spec, nodes_per_rack=4, pod_racks=2,
            rack_oversubscription=2.0, pod_oversubscription=4.0,
        )
        fabspec = spec.with_fabric(fabric)
        # 0->4 crosses racks inside one pod; 0->8 also crosses pods.
        intra_pod = time_bcast(fabspec, "linear", 5, 65536, 0)
        del intra_pod  # smoke: runs and is quiescent
        assert time_bcast(fabspec, "binomial", 16, 262144, 8192) > time_bcast(
            spec, "binomial", 16, 262144, 8192
        )


class TestHierarchicalCollectives:
    def test_hierarchy_tree_is_valid_and_leader_first(self):
        group_of = [0, 0, 0, 1, 1, 1]
        tree = build_hierarchy_tree(group_of, root=0)
        tree.validate()
        assert tree.root == 0
        assert tree.size == 6
        # The inter-group edge to rank 3 (leader of group 1) is listed
        # before 0's intra-group children: uplink traffic starts first.
        assert tree.children[0][0] == 3

    def test_root_leads_its_own_group(self):
        tree = build_hierarchy_tree([0, 0, 1, 1], root=3)
        tree.validate()
        assert tree.root == 3
        assert 2 in tree.children[3]

    def test_hierarchical_bcast_runs_quiescent_on_all_shapes(self):
        fabspec = TWO_RACK.with_fabric(acceptance_fabric())
        for procs in (2, 5, 7, 10):
            elapsed = time_bcast(fabspec, "hierarchical", procs, 32768, 8192)
            assert elapsed > 0
        # Degenerate corners.
        assert time_bcast(fabspec, "hierarchical", 1, 32768, 8192) == 0.0
        assert time_bcast(fabspec, "hierarchical", 4, 0, 8192) == 0.0

    def test_hierarchical_reduce_runs_quiescent(self):
        fabspec = TWO_RACK.with_fabric(acceptance_fabric())
        assert time_reduce(fabspec, "hierarchical", 10, 32768, 8192) > 0

    def test_hierarchical_crosses_each_uplink_once(self):
        # At P=10 on the harsh two-rack fabric the rack-leader broadcast
        # beats every flat algorithm that crosses the uplink repeatedly.
        fabspec = TWO_RACK.with_fabric(acceptance_fabric())
        hier = time_bcast(fabspec, "hierarchical", 10, 32768, 8192)
        for algorithm in ("binomial", "binary", "linear"):
            assert hier < time_bcast(fabspec, algorithm, 10, 32768, 8192)

    def test_hierarchical_excluded_from_flat_defaults(self):
        from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS
        from repro.collectives.reduce import DEFAULT_REDUCE_ALGORITHMS

        assert "hierarchical" not in PAPER_BCAST_ALGORITHMS
        assert "hierarchical" not in DEFAULT_REDUCE_ALGORITHMS


class TestBatchedEngineFallback:
    def test_batched_runner_matches_serial_on_fabric_specs(self):
        fabspec = TWO_RACK.with_fabric(acceptance_fabric())
        serial = build_acceptance_artifact(
            fabspec, runner=ParallelRunner(jobs=1, batch=False)
        )
        batched = build_acceptance_artifact(
            fabspec, runner=ParallelRunner(jobs=1, batch=True)
        )
        assert serial.content_hash() == batched.content_hash()


@pytest.fixture(scope="module")
def flat_artifact():
    return build_acceptance_artifact(TWO_RACK)


@pytest.fixture(scope="module")
def fabric_artifact():
    return build_acceptance_artifact(TWO_RACK.with_fabric(acceptance_fabric()))


class TestTopologyConditionedSelection:
    """The PR's acceptance scenario, end to end."""

    def test_fabric_table_differs_from_flat_and_hierarchical_wins(
        self, flat_artifact, fabric_artifact
    ):
        differing = [
            nbytes
            for nbytes in ACCEPTANCE_SIZES
            if fabric_artifact.select("bcast", 10, nbytes).algorithm
            != flat_artifact.select("bcast", 10, nbytes).algorithm
        ]
        assert differing, "conditioned table must differ from flat"
        hier_cells = [
            nbytes
            for nbytes in ACCEPTANCE_SIZES
            if fabric_artifact.select("bcast", 10, nbytes).algorithm
            == "hierarchical"
        ]
        assert hier_cells, "hierarchical must win at least one cell"

    def test_measured_oracle_agrees_at_the_hierarchical_cell(
        self, fabric_artifact
    ):
        fabspec = TWO_RACK.with_fabric(acceptance_fabric())
        algorithms = sorted(fabric_artifact.entries["bcast"].platform.algorithms)
        oracle = MeasuredOracle(fabspec, algorithms=algorithms, max_reps=4)
        cells = [
            nbytes
            for nbytes in ACCEPTANCE_SIZES
            if fabric_artifact.select("bcast", 10, nbytes).algorithm
            == "hierarchical"
        ]
        for nbytes in cells:
            best, _ = oracle.best(10, nbytes)
            assert best.algorithm == "hierarchical"

    def test_flat_artifact_never_picks_hierarchical(self, flat_artifact):
        algorithms = flat_artifact.entries["bcast"].platform.algorithms
        assert "hierarchical" not in algorithms

    def test_artifact_carries_the_fabric_name(
        self, flat_artifact, fabric_artifact
    ):
        assert fabric_artifact.fabric == "acceptance_32to1"
        assert fabric_artifact.payload()["fabric"] == "acceptance_32to1"
        assert "fabric" not in flat_artifact.payload()

    def test_artifact_round_trips_with_fabric(self, fabric_artifact, tmp_path):
        from repro.service.artifact import load_artifact

        path = fabric_artifact.save(tmp_path / "fabric.json")
        loaded = load_artifact(path)
        assert loaded.fabric == "acceptance_32to1"
        assert loaded.content_hash() == fabric_artifact.content_hash()
        loaded.verify()


class TestRegistryAndServerRouting:
    def test_registry_routes_by_fabric(self, flat_artifact, fabric_artifact):
        registry = ArtifactRegistry()
        registry.add(flat_artifact, "flat.json")
        registry.add(fabric_artifact, "fabric.json")
        assert registry.lookup("tworack", "bcast") is flat_artifact
        assert (
            registry.lookup("tworack", "bcast", "acceptance_32to1")
            is fabric_artifact
        )
        with pytest.raises(ArtifactError) as excinfo:
            registry.lookup("tworack", "bcast", "unknown_fabric")
        assert "acceptance_32to1" in str(excinfo.value)

    def test_server_routes_fabric_queries(
        self, flat_artifact, fabric_artifact, tmp_path
    ):
        flat_artifact.save(tmp_path / "flat.json")
        fabric_artifact.save(tmp_path / "fabric.json")
        service = SelectionService(ArtifactRegistry(tmp_path), cache_size=16)
        with ServiceThread(service) as handle:
            flat_answer = self._post(handle.port, {})
            fabric_answer = self._post(
                handle.port, {"fabric": "acceptance_32to1"}
            )
        assert flat_answer["artifact"] == flat_artifact.artifact_id
        assert "fabric" not in flat_answer
        assert fabric_answer["artifact"] == fabric_artifact.artifact_id
        assert fabric_answer["fabric"] == "acceptance_32to1"
        assert fabric_answer["algorithm"] == "hierarchical"

    @staticmethod
    def _post(port, extra):
        query = {
            "cluster": "tworack",
            "operation": "bcast",
            "procs": 10,
            "nbytes": 16384,
        }
        query.update(extra)
        conn = HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("POST", "/select", json.dumps(query))
            response = conn.getresponse()
            assert response.status == 200
            return json.loads(response.read())
        finally:
            conn.close()


class TestCliFabricFlags:
    def test_artifact_build_rejects_unknown_fabric_with_listing(self, capsys):
        from repro.cli import main

        code = main([
            "artifact", "build", "--cluster", "minicluster",
            "--output", "/tmp/nonexistent-artifact.json",
            "--fabric", "bogus",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "bogus" in err
        for name in available_fabrics():
            assert name in err

    def test_chaos_rejects_unknown_fabric(self, capsys):
        from repro.cli import main

        code = main([
            "chaos", "--cluster", "minicluster", "--fabric", "bogus",
        ])
        assert code == 1
        assert "available fabrics" in capsys.readouterr().err
