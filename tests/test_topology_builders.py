"""Tests for the Open MPI tree builders, including paper-specific facts."""

import math

import pytest

from repro.errors import TopologyError
from repro.topology import (
    build_binary_tree,
    build_binomial_tree,
    build_chain_tree,
    build_in_order_binomial_tree,
    build_kary_tree,
)

SIZES = [1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 90, 100, 124]


class TestKaryTree:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("fanout", [1, 2, 3, 4])
    def test_valid_for_all_sizes(self, size, fanout):
        build_kary_tree(fanout, size).validate()

    def test_binary_heap_shape(self):
        tree = build_binary_tree(7)
        assert tree.children[0] == (1, 2)
        assert tree.children[1] == (3, 4)
        assert tree.children[2] == (5, 6)

    def test_binary_height_matches_formula(self):
        """H = ceil(log2(P+1)) - 1, the quantity in the binary-tree model."""
        for size in SIZES:
            tree = build_binary_tree(size)
            assert tree.height == math.ceil(math.log2(size + 1)) - 1

    def test_max_two_children(self):
        assert build_binary_tree(90).max_fanout() <= 2

    def test_root_shift(self):
        tree = build_binary_tree(7, root=3)
        assert tree.root == 3
        assert tree.children[3] == (4, 5)  # virtual 1, 2 shifted by root

    def test_invalid_fanout_rejected(self):
        with pytest.raises(TopologyError):
            build_kary_tree(0, 4)


class TestBinomialTree:
    @pytest.mark.parametrize("size", SIZES)
    def test_valid_for_all_sizes(self, size):
        build_binomial_tree(size).validate()

    def test_power_of_two_structure(self):
        tree = build_binomial_tree(8)
        assert tree.children[0] == (1, 2, 4)
        assert tree.children[2] == (3,)
        assert tree.children[4] == (5, 6)

    def test_root_children_count_is_ceil_log(self):
        """Root fanout = ceil(log2 P): the gamma argument in paper Eq. 6."""
        for size in [3, 5, 8, 17, 64, 90, 100, 124]:
            tree = build_binomial_tree(size)
            assert len(tree.children[0]) == math.ceil(math.log2(size))

    def test_height_is_floor_log(self):
        """Height = floor(log2 P): the stage count in paper Eq. 4."""
        for size in [2, 3, 4, 7, 8, 90, 124]:
            tree = build_binomial_tree(size)
            assert tree.height == math.floor(math.log2(size))

    def test_depth_equals_popcount_of_virtual_rank(self):
        tree = build_binomial_tree(64)
        for rank in range(64):
            assert tree.depth_of(rank) == bin(rank).count("1")

    def test_children_fanout_decreases_along_deepest_path(self):
        """The per-level gamma arguments of Eq. 6 decrease going down."""
        tree = build_binomial_tree(90)
        rank = 0
        fanouts = []
        while tree.children[rank]:
            fanouts.append(len(tree.children[rank]))
            rank = tree.children[rank][-1]
        assert fanouts == sorted(fanouts, reverse=True)


class TestInOrderBinomial:
    @pytest.mark.parametrize("size", SIZES)
    def test_valid_for_all_sizes(self, size):
        build_in_order_binomial_tree(size).validate()

    def test_children_reversed_relative_to_standard(self):
        standard = build_binomial_tree(16)
        in_order = build_in_order_binomial_tree(16)
        for rank in range(16):
            assert in_order.children[rank] == tuple(
                reversed(standard.children[rank])
            )


class TestChainTree:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("chains", [1, 2, 4])
    def test_valid_for_all_sizes(self, size, chains):
        build_chain_tree(size, chains=chains).validate()

    def test_single_chain_is_a_path(self):
        tree = build_chain_tree(6, chains=1)
        assert tree.height == 5
        assert tree.max_fanout() == 1
        assert tree.children[0] == (1,)
        assert tree.children[4] == (5,)

    def test_four_chains_balanced(self):
        tree = build_chain_tree(13, chains=4)  # 12 non-root over 4 chains
        assert len(tree.children[0]) == 4
        # Every chain has exactly 3 nodes.
        for head in tree.children[0]:
            length = 1
            rank = head
            while tree.children[rank]:
                rank = tree.children[rank][0]
                length += 1
            assert length == 3

    def test_uneven_chains_differ_by_at_most_one(self):
        tree = build_chain_tree(90, chains=4)  # 89 = 4*22 + 1
        lengths = []
        for head in tree.children[0]:
            length, rank = 1, head
            while tree.children[rank]:
                rank = tree.children[rank][0]
                length += 1
            lengths.append(length)
        assert max(lengths) - min(lengths) <= 1
        assert sum(lengths) == 89

    def test_more_chains_than_ranks_clamps(self):
        tree = build_chain_tree(3, chains=8)
        assert len(tree.children[0]) == 2

    def test_root_shift(self):
        tree = build_chain_tree(5, root=2, chains=1)
        assert tree.root == 2
        assert tree.children[2] == (3,)
        assert tree.children[1] == ()

    def test_invalid_chains_rejected(self):
        with pytest.raises(TopologyError):
            build_chain_tree(4, chains=0)


class TestPaperScales:
    """Structural facts at the exact scales the paper evaluates."""

    def test_grisou_p90(self):
        binomial = build_binomial_tree(90)
        assert len(binomial.children[0]) == 7  # ceil(log2 90)
        assert binomial.height == 6  # floor(log2 90)
        binary = build_binary_tree(90)
        assert binary.height == 6

    def test_gros_p124(self):
        binomial = build_binomial_tree(124)
        assert len(binomial.children[0]) == 7
        assert binomial.height == 6
        chain = build_chain_tree(124, chains=1)
        assert chain.height == 123

    def test_max_tree_fanout_is_seven(self):
        """The largest fanout at paper scales is 7 (the binomial root);
        gamma beyond the measured P=7 table is served by extrapolation."""
        for size in (90, 100, 124):
            binomial = build_binomial_tree(size)
            assert binomial.max_fanout() == 7
