"""The per-collective calibration registry (multi-collective builds).

Covers the registry's contract end to end: the built-in pipelines, the
accepts/tolerates kwarg validation (a genuinely unsupported kwarg is an
error, never silently dropped), ``gamma_max_procs`` forwarding to the
reduce pipeline, the uniform strict quality gate, and the headline
executor property — a warm persistent cache rebuilds *every* collective's
calibration with zero simulations.
"""

from __future__ import annotations

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import ArtifactError
from repro.estimation.registry import (
    CalibrationOutcome,
    CalibrationPipeline,
    get_pipeline,
    register_pipeline,
    registered_collectives,
    unregister_pipeline,
)
from repro.estimation.workflow import QualityThresholds
from repro.exec.cache import ResultCache
from repro.exec.runner import ParallelRunner
from repro.service.artifact import build_artifact
from repro.units import KiB

#: One kwarg set every built-in pipeline either accepts or tolerates —
#: the shape ``build_artifact`` forwards in a combined multi-collective
#: build.
CALIB_KWARGS = dict(
    procs=4,
    sizes=(8 * KiB, 32 * KiB, 128 * KiB),
    gamma_max_procs=3,
    max_reps=3,
    seed=0,
)

#: Thresholds no finite fit can meet (used to trip the strict gate).
IMPOSSIBLE = QualityThresholds(
    max_relative_residual=-1.0, min_converged_fraction=2.0
)


#: Every built-in pipeline: the original four plus the whole suite.
ALL_PIPELINES = (
    "bcast", "reduce", "gather", "barrier",
    "allreduce", "allgather", "alltoall", "scatter",
)


class TestRegistryListing:
    def test_builtin_collectives_registered(self):
        assert set(ALL_PIPELINES) <= set(registered_collectives())

    def test_unknown_operation_names_registered_pipelines(self):
        with pytest.raises(ArtifactError, match="no calibration pipeline"):
            get_pipeline("reduce_scatter")

    def test_build_artifact_rejects_unregistered_collective(self):
        with pytest.raises(ArtifactError, match="no calibration pipeline"):
            build_artifact(MINICLUSTER, collectives=("reduce_scatter",))


class TestKwargContract:
    def _recorder(self, seen: dict):
        def fn(spec, *, runner=None, **kwargs):
            seen.update(kwargs)
            raise RuntimeError("recorder: calibration should not proceed")

        return CalibrationPipeline(
            operation="_test_op",
            fn=fn,
            accepts=frozenset({"seed"}),
            tolerates=frozenset({"procs"}),
        )

    def test_accepted_kwargs_forwarded_tolerated_dropped(self):
        seen: dict = {}
        pipeline = self._recorder(seen)
        with pytest.raises(RuntimeError, match="recorder"):
            pipeline.calibrate(MINICLUSTER, seed=7, procs=4)
        assert seen == {"seed": 7}

    def test_unsupported_kwarg_is_an_error_not_a_drop(self):
        seen: dict = {}
        pipeline = self._recorder(seen)
        with pytest.raises(ArtifactError, match="does not support bogus_knob"):
            pipeline.calibrate(MINICLUSTER, seed=7, bogus_knob=1)
        assert seen == {}  # validation happens before any work

    def test_builtin_pipelines_reject_unknown_kwargs(self):
        for operation in ALL_PIPELINES:
            with pytest.raises(ArtifactError, match="does not support"):
                get_pipeline(operation).calibrate(MINICLUSTER, bogus_knob=1)

    def test_gamma_max_procs_accepted_by_reduce(self):
        # Regression: the reduce pipeline used to silently ignore
        # gamma_max_procs; it must now forward it to calibrate_reduce.
        assert "gamma_max_procs" in get_pipeline("reduce").accepts

    def test_duplicate_registration_refused_unless_replaced(self):
        pipeline = CalibrationPipeline(
            operation="_test_dup",
            fn=lambda spec, *, runner=None, **kwargs: None,
            accepts=frozenset(),
        )
        register_pipeline(pipeline)
        try:
            with pytest.raises(ArtifactError, match="already registered"):
                register_pipeline(pipeline)
            register_pipeline(pipeline, replace=True)
            assert get_pipeline("_test_dup") is pipeline
        finally:
            unregister_pipeline("_test_dup")
        with pytest.raises(ArtifactError, match="no calibration pipeline"):
            get_pipeline("_test_dup")


class TestGammaMaxProcsForwarding:
    def test_reduce_gamma_table_bounded_by_gamma_max_procs(self):
        outcome = get_pipeline("reduce").calibrate(
            MINICLUSTER,
            procs=4,
            sizes=(8 * KiB, 64 * KiB),
            gamma_max_procs=3,
            max_reps=3,
            seed=0,
        )
        assert outcome.platform.gamma.table
        assert max(outcome.platform.gamma.table) <= 3


class TestWarmCacheRebuild:
    @pytest.mark.parametrize("operation", ALL_PIPELINES)
    def test_rebuild_from_warm_cache_runs_zero_simulations(
        self, operation, tmp_path
    ):
        pipeline = get_pipeline(operation)
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        first = pipeline.calibrate(MINICLUSTER, runner=cold, **CALIB_KWARGS)
        assert cold.stats.simulations > 0
        cold.close()

        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = pipeline.calibrate(MINICLUSTER, runner=warm, **CALIB_KWARGS)
        assert warm.stats.simulations == 0
        warm.close()

        assert second.platform.parameters == first.platform.parameters
        assert second.platform.gamma.table == first.platform.gamma.table

    def test_full_suite_rebuild_is_simulation_free_and_bit_identical(
        self, tmp_path
    ):
        """The acceptance headline: eight collectives, one warm replay.

        A second full-suite build against the same persistent cache must
        run zero simulations and reproduce the exact content hash.
        """
        build_kwargs = dict(
            collectives=ALL_PIPELINES,
            proc_points=(4, 8),
            size_points=(8 * KiB, 64 * KiB),
            **CALIB_KWARGS,
        )
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        first = build_artifact(MINICLUSTER, runner=cold, **build_kwargs)
        assert cold.stats.simulations > 0
        cold.close()

        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = build_artifact(MINICLUSTER, runner=warm, **build_kwargs)
        assert warm.stats.simulations == 0
        warm.close()

        assert set(first.operations) == set(ALL_PIPELINES)
        assert second.artifact_id == first.artifact_id

        # With every operand collective present, the five cross-collective
        # mock-up guidelines flip from skipped to actually checked.
        assert first.guidelines["ok"] is True
        assert first.guidelines["skipped"] == {}
        assert {
            "bcast_le_scatter_plus_allgather",
            "scatter_le_alltoall",
            "gather_le_allgather",
            "reduce_le_allreduce",
            "alltoall_le_scatter",
        } <= set(first.guidelines["checked"])


class TestStrictGate:
    @pytest.mark.parametrize(
        "operation",
        (
            "reduce", "gather", "barrier",
            "allreduce", "allgather", "alltoall", "scatter",
        ),
    )
    def test_strict_build_gates_every_pipeline(self, operation):
        # Regression: --strict used to gate only the broadcast calibration;
        # every pipeline's quality report now feeds the same gate.
        with pytest.raises(
            ArtifactError,
            match=f"strict build refused.*{operation} calibration quality",
        ):
            build_artifact(
                MINICLUSTER,
                collectives=(operation,),
                proc_points=(2, 4, 8),
                size_points=(8 * KiB, 64 * KiB),
                strict=True,
                thresholds=IMPOSSIBLE,
                **CALIB_KWARGS,
            )

    def test_every_calibrating_pipeline_reports_quality(self):
        for operation in ALL_PIPELINES:
            outcome = get_pipeline(operation).calibrate(
                MINICLUSTER, **CALIB_KWARGS
            )
            assert isinstance(outcome, CalibrationOutcome)
            assert outcome.quality, f"{operation} produced no quality report"
            # failing() names a subset of the fitted algorithms (the small
            # test sweep may legitimately trip the model-form residual).
            assert set(outcome.failing()) <= set(outcome.quality)
