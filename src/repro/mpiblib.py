"""An MPIBlib-style benchmarking front end for the simulated runtime.

The paper measures with MPIBlib [24] — Lastovetsky et al.'s library for
benchmarking MPI communications with statistically sound repetition.  This
module reproduces its user-facing shape on top of the simulator:

* benchmark any registered collective operation/algorithm pair by name;
* choose the timing scope: ``"global"`` (last rank's completion — MPIBlib's
  globally synchronised timing) or ``"root"`` (the root's clock);
* repetitions driven by the paper's §5.1 criterion (95% confidence
  interval within 2.5% of the mean) with a normality check attached;
* results as structured records that render as a table.

Example::

    from repro.mpiblib import CollectiveBenchmark
    from repro.clusters import GRISOU

    bench = CollectiveBenchmark(GRISOU)
    result = bench.run("bcast", "binomial", procs=32, nbytes=1 << 20)
    print(result.describe())
    table = bench.sweep("bcast", ["binary", "binomial"], procs=32,
                        sizes=[8192, 65536])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.collectives.registry import algorithm_names, get_algorithm
from repro.errors import SimulationError
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.measure import run_timed
from repro.units import KiB, format_bytes, format_seconds

#: Operations whose algorithms take (comm, root, nbytes, segment_size).
_SEGMENTED_SIGNATURE = {"bcast", "reduce"}
#: Operations whose algorithms take (comm, root, nbytes).
_ROOTED_SIGNATURE = {"gather", "scatter"}
#: Operations whose algorithms take (comm, nbytes).
_ROOTLESS_SIGNATURE = {"allgather", "allreduce", "alltoall"}
#: Operations whose algorithms take (comm,) only.
_NO_PAYLOAD_SIGNATURE = {"barrier"}


@dataclass(frozen=True)
class BenchmarkResult:
    """One benchmarked configuration with its statistics."""

    operation: str
    algorithm: str
    procs: int
    nbytes: int
    segment_size: int
    policy: str
    stats: SampleStats

    @property
    def mean(self) -> float:
        return self.stats.mean

    def describe(self) -> str:
        """One-line human-readable summary."""
        precision = 100 * self.stats.relative_precision
        normality = (
            f", Shapiro p={self.stats.normality_p:.2f}"
            if self.stats.normality_p is not None
            else ""
        )
        return (
            f"{self.operation}/{self.algorithm} P={self.procs} "
            f"m={format_bytes(self.nbytes)}: {format_seconds(self.mean)} "
            f"(n={self.stats.n}, ±{precision:.1f}%{normality})"
        )


class CollectiveBenchmark:
    """Benchmark registered collective algorithms on a simulated cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        precision: float = 0.025,
        confidence: float = 0.95,
        max_reps: int = 30,
        seed: int = 0,
    ):
        self.spec = spec
        self.precision = precision
        self.confidence = confidence
        self.max_reps = max_reps
        self.seed = seed

    def _program(self, operation: str, algorithm: str, root: int, nbytes: int,
                 segment_size: int):
        entry = get_algorithm(operation, algorithm)
        if operation in _SEGMENTED_SIGNATURE:
            return lambda comm: entry(comm, root, nbytes, segment_size)
        if operation in _ROOTED_SIGNATURE:
            return lambda comm: entry(comm, root, nbytes)
        if operation in _ROOTLESS_SIGNATURE:
            return lambda comm: entry(comm, nbytes)
        if operation in _NO_PAYLOAD_SIGNATURE:
            return lambda comm: entry(comm)
        raise SimulationError(f"no benchmark signature for operation {operation!r}")

    def run(
        self,
        operation: str,
        algorithm: str,
        *,
        procs: int,
        nbytes: int = 0,
        segment_size: int = 8 * KiB,
        root: int = 0,
        policy: str = "global",
    ) -> BenchmarkResult:
        """Benchmark one configuration to the paper's precision target."""
        program_of = self._program(operation, algorithm, root, nbytes, segment_size)

        def measure_once(rep_seed: int) -> float:
            def body(comm):
                yield from program_of(comm)

            return run_timed(
                self.spec, body, procs, root=root, seed=rep_seed, policy=policy
            )

        stats = adaptive_measure(
            measure_once,
            precision=self.precision,
            confidence=self.confidence,
            max_reps=self.max_reps,
            seed=self.seed
            + 131 * hash((operation, algorithm, procs, nbytes)) % 1_000_000,
        )
        return BenchmarkResult(
            operation=operation,
            algorithm=algorithm,
            procs=procs,
            nbytes=nbytes,
            segment_size=segment_size,
            policy=policy,
            stats=stats,
        )

    def sweep(
        self,
        operation: str,
        algorithms: Sequence[str] | None = None,
        *,
        procs: int,
        sizes: Sequence[int],
        segment_size: int = 8 * KiB,
        root: int = 0,
        policy: str = "global",
    ) -> list[BenchmarkResult]:
        """Benchmark several algorithms over several sizes."""
        if algorithms is None:
            algorithms = algorithm_names(operation)
        return [
            self.run(
                operation,
                algorithm,
                procs=procs,
                nbytes=nbytes,
                segment_size=segment_size,
                root=root,
                policy=policy,
            )
            for algorithm in algorithms
            for nbytes in sizes
        ]


def render_results(results: Sequence[BenchmarkResult]) -> str:
    """Format a sweep as a size-by-algorithm table (seconds)."""
    if not results:
        return "(no results)"
    algorithms = sorted({r.algorithm for r in results})
    sizes = sorted({r.nbytes for r in results})
    by_key = {(r.algorithm, r.nbytes): r for r in results}
    header = ["m"] + algorithms
    rows = [header, ["-" * len(h) for h in header]]
    for nbytes in sizes:
        row = [format_bytes(nbytes)]
        for algorithm in algorithms:
            result = by_key.get((algorithm, nbytes))
            row.append(format_seconds(result.mean) if result else "-")
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rows
    )
