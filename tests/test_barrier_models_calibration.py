"""Tests for the barrier extension: models, calibration, selection.

Barrier is the degenerate (payload-free) case of the framework: only α is
identifiable, so each model is a message count times α.  The single-α form
cannot separate wire latency from per-message injection (the linear
barrier's 2(P-1) zero-byte messages serialise at the *injection* cost, not
at full α), so predictions are coarser than the broadcast models' — the
tests below assert the properties that do hold: correct counts, sane fits,
and selection that always avoids the catastrophic algorithm.
"""

import pytest

from repro.clusters import MINICLUSTER
from repro.estimation.barrier_calibration import (
    calibrate_barrier,
    estimate_barrier_alpha,
    time_barrier,
)
from repro.models.barrier_models import DERIVED_BARRIER_MODELS
from repro.models.gamma import GammaFunction
from repro.selection.model_based import ModelBasedSelector

GAMMA = GammaFunction.ideal()


class TestBarrierModels:
    def test_registry_covers_barrier_catalogue(self):
        from repro.collectives.barrier import BARRIER_ALGORITHMS

        assert set(DERIVED_BARRIER_MODELS) == set(BARRIER_ALGORITHMS)

    @pytest.mark.parametrize(
        "name,procs,expected",
        [
            ("linear", 9, 16),
            ("double_ring", 9, 18),
            ("bruck", 8, 3),
            ("bruck", 9, 4),
            ("recursive_doubling", 8, 3),
            ("recursive_doubling", 9, 6),  # 4 rounds + fold + release
        ],
    )
    def test_message_counts(self, name, procs, expected):
        model = DERIVED_BARRIER_MODELS[name](GAMMA)
        assert model.coefficients(procs).c_alpha == expected

    @pytest.mark.parametrize("name", sorted(DERIVED_BARRIER_MODELS))
    def test_beta_never_used(self, name):
        model = DERIVED_BARRIER_MODELS[name](GAMMA)
        assert model.coefficients(32).c_beta == 0.0

    @pytest.mark.parametrize("name", sorted(DERIVED_BARRIER_MODELS))
    def test_single_process_free(self, name):
        model = DERIVED_BARRIER_MODELS[name](GAMMA)
        assert model.coefficients(1).c_alpha == 0.0


class TestBarrierCalibration:
    @pytest.fixture(scope="class")
    def platform(self):
        return calibrate_barrier(MINICLUSTER, max_reps=3)

    def test_all_algorithms_calibrated(self, platform):
        assert set(platform.algorithms) == set(DERIVED_BARRIER_MODELS)
        assert platform.operation == "barrier"

    def test_alphas_positive_betas_zero(self, platform):
        for name in platform.algorithms:
            params = platform.parameters[name]
            assert params.alpha > 0, name
            assert params.beta == 0.0, name

    def test_single_algorithm_fit_tracks_measurement(self):
        """With matching structure (log-round algorithms), the α fit
        predicts unseen sizes well."""
        params, _stats = estimate_barrier_alpha(
            MINICLUSTER, "bruck", proc_counts=(4, 8), max_reps=3
        )
        model = DERIVED_BARRIER_MODELS["bruck"](GAMMA)
        predicted = model.coefficients(16).c_alpha * params.alpha
        measured = time_barrier(MINICLUSTER, "bruck", 16)
        assert predicted == pytest.approx(measured, rel=0.35)

    def test_selection_avoids_the_catastrophic_algorithm(self, platform):
        """Whatever the α compromises, the double ring (2P sequential
        hops) must never be selected at scale."""
        selector = ModelBasedSelector(platform)
        for procs in (4, 8, 12, 16):
            pick = selector.select(procs, 0)
            assert pick.operation == "barrier"
            assert pick.algorithm != "double_ring"

    def test_selected_barrier_within_2x_of_best(self, platform):
        selector = ModelBasedSelector(platform)
        for procs in (4, 8, 16):
            times = {
                name: time_barrier(MINICLUSTER, name, procs)
                for name in platform.algorithms
            }
            pick = selector.select(procs, 0)
            assert times[pick.algorithm] <= 2.0 * min(times.values()), procs

    def test_invalid_proc_counts_rejected(self):
        from repro.errors import EstimationError

        with pytest.raises(EstimationError):
            estimate_barrier_alpha(
                MINICLUSTER, "bruck", proc_counts=(1,), max_reps=3
            )
