"""Tests for the Tree structure and its invariants."""

import pytest

from repro.errors import TopologyError
from repro.topology.tree import Tree, tree_from_children


def chain_tree(size):
    return tree_from_children(0, size, {i: [i + 1] for i in range(size - 1)})


class TestConstruction:
    def test_single_node(self):
        tree = tree_from_children(0, 1, {})
        tree.validate()
        assert tree.size == 1
        assert tree.height == 0

    def test_two_parents_rejected(self):
        with pytest.raises(TopologyError, match="two parents|child twice"):
            tree_from_children(0, 3, {0: [1, 2], 1: [2]})

    def test_unreachable_rank_rejected(self):
        with pytest.raises(TopologyError, match="unreachable"):
            tree_from_children(0, 3, {0: [1]})

    def test_child_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            tree_from_children(0, 2, {0: [1, 5]})

    def test_root_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            Tree(root=9, parent=(-1, 0), children=((1,), ())).validate()


class TestQueries:
    def test_depths_on_chain(self):
        tree = chain_tree(5)
        assert [tree.depth_of(r) for r in range(5)] == [0, 1, 2, 3, 4]
        assert tree.height == 4

    def test_levels(self):
        tree = tree_from_children(0, 5, {0: [1, 2], 1: [3, 4]})
        assert tree.levels() == [[0], [1, 2], [3, 4]]

    def test_interior_and_leaves_partition_ranks(self):
        tree = tree_from_children(0, 6, {0: [1, 2], 2: [3, 4, 5]})
        interior = tree.interior_ranks()
        leaves = tree.leaves()
        assert sorted(interior + leaves) == list(range(6))
        assert interior == [0, 2]

    def test_path_to_root(self):
        tree = chain_tree(4)
        assert tree.path_to_root(3) == [3, 2, 1, 0]
        assert tree.path_to_root(0) == [0]

    def test_subtree_size(self):
        tree = tree_from_children(0, 6, {0: [1, 2], 2: [3, 4], 4: [5]})
        assert tree.subtree_size(0) == 6
        assert tree.subtree_size(2) == 4
        assert tree.subtree_size(1) == 1

    def test_max_fanout(self):
        tree = tree_from_children(0, 5, {0: [1, 2, 3], 3: [4]})
        assert tree.max_fanout() == 3

    def test_num_children(self):
        tree = tree_from_children(0, 3, {0: [1, 2]})
        assert tree.num_children(0) == 2
        assert tree.num_children(1) == 0

    def test_render_contains_all_ranks(self):
        tree = tree_from_children(0, 4, {0: [1, 2], 2: [3]})
        rendering = tree.render()
        for rank in range(4):
            assert str(rank) in rendering
