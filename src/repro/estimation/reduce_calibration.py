"""Calibration of the reduce models (future-work extension).

The paper's α/β experiment appends a gather to the broadcast so the
experiment finishes on the root *and* so the varying gather size spreads
the canonical x_i (for segmented algorithms the per-segment size is
constant, so the reduce alone would give a singular system).  The dual
construction for reductions: the reduce under test followed by a linear
scatter of ``m_g`` bytes per rank from the root — the composite experiment
again starts and finishes on the root, and the scatter contributes the
same ``(P-1, (P-1)·m_g)`` coefficient row the gather does for broadcasts.

Like the broadcast calibration, everything routes through the execution
subsystem: the whole experiment schedule (γ plus every algorithm's sweep)
is prefetched as one parallel batch and the serial estimation stages
replay from the runner's memo, so a warm persistent cache rebuilds the
calibration with zero simulations.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.alphabeta import (
    DEFAULT_GATHER_BYTES,
    DEFAULT_SIZES,
    RETRY_SEED_STRIDE,
    AlphaBeta,
    FitQuality,
)
from repro.estimation.gamma import (
    DEFAULT_MAX_PROCS,
    DEFAULT_SEGMENT_SIZE,
    estimate_gamma,
    gamma_prefetch_jobs,
)
from repro.estimation.regression import get_regressor, mad_screen
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.estimation.workflow import PlatformModel, instantiate_model
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.measure import time_reduce, time_reduce_then_scatter  # noqa: F401
from repro.models.base import BcastModel
from repro.models.gather_models import linear_gather_coefficients
from repro.models.hockney import HockneyParams
from repro.models.reduce_models import DERIVED_REDUCE_MODELS

__all__ = [
    "time_reduce",
    "time_reduce_then_scatter",
    "reduce_alphabeta_prefetch_jobs",
    "estimate_reduce_alpha_beta",
    "calibrate_reduce",
]


def reduce_alphabeta_prefetch_jobs(
    spec: ClusterSpec,
    algorithm: str,
    *,
    procs: int,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    scatter_bytes: int | Callable[[int], int] = DEFAULT_GATHER_BYTES,
    seed: int = 0,
    reps: int = 2,
) -> list[SimJob]:
    """The first ``reps`` repetitions of one reduce algorithm's sweep, as jobs.

    Enumerates exactly the seeds :func:`estimate_reduce_alpha_beta`'s
    adaptive loop will request, so prefetching these makes the loop replay
    from the runner's memo.
    """
    scatter_of = (
        scatter_bytes if callable(scatter_bytes) else (lambda _m: scatter_bytes)
    )
    batch: list[SimJob] = []
    for index, nbytes in enumerate(sizes):
        base = seed + 104_729 * (index + 1)
        for rep in range(reps):
            batch.append(
                SimJob(
                    spec=spec,
                    kind="reduce_then_scatter",
                    procs=procs,
                    algorithm=algorithm,
                    nbytes=nbytes,
                    segment_size=segment_size,
                    gather_bytes=scatter_of(nbytes),
                    seed=base + 7919 * rep,
                )
            )
    return batch


def estimate_reduce_alpha_beta(
    spec: ClusterSpec,
    model: BcastModel,
    *,
    procs: int | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    scatter_bytes=DEFAULT_GATHER_BYTES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    prefetch: bool = True,
    screen_mad: float | None = None,
    retry_budget: int = 0,
) -> AlphaBeta:
    """Per-algorithm α/β for a reduce algorithm (§4.2 applied to reduce).

    Same contract as :func:`~repro.estimation.alphabeta.estimate_alpha_beta`:
    simulations run through ``runner`` (default: the process-wide runner),
    ``prefetch=False`` skips the warm-up batch when the caller already
    prefetched a larger one, and the robustness knobs (``screen_mad``,
    ``retry_budget``) default off so the vanilla estimate is bit-identical
    to earlier releases.  Quality diagnostics are always recorded.
    """
    if procs is None:
        procs = max(2, spec.max_procs // 2)
    if not 2 <= procs <= spec.max_procs:
        raise EstimationError(f"{spec.name}: procs={procs} outside 2..{spec.max_procs}")
    if len(sizes) < 2:
        raise EstimationError("need at least two message sizes to fit a line")
    fit_fn = get_regressor(regressor)
    scatter_of = (
        scatter_bytes if callable(scatter_bytes) else (lambda _m: scatter_bytes)
    )
    runner = runner if runner is not None else default_runner()
    if prefetch:
        runner.prefetch(
            reduce_alphabeta_prefetch_jobs(
                spec,
                model.algorithm,
                procs=procs,
                sizes=sizes,
                segment_size=segment_size,
                scatter_bytes=scatter_bytes,
                seed=seed,
            )
        )

    memo_before = runner.stats.memo_hits
    sims_before = runner.stats.simulations
    with obs.span(
        "estimate.alphabeta",
        operation="reduce",
        algorithm=model.algorithm,
        cluster=spec.name,
        procs=procs,
        sizes=len(sizes),
    ) as ab_span:
        xs: list[float] = []
        ys: list[float] = []
        stats: list[SampleStats] = []
        retried = 0
        for index, nbytes in enumerate(sizes):
            m_g = scatter_of(nbytes)
            # The linear scatter's root-side cost has the gather's shape:
            # (P-1) serialised injections of m_g bytes.
            coeffs = model.coefficients(procs, nbytes, segment_size)
            total = coeffs + linear_gather_coefficients(procs, m_g)
            if total.c_alpha <= 0:
                raise EstimationError(
                    f"{model.algorithm}: degenerate experiment at m={nbytes}"
                )

            def measure_once(
                rep_seed: int, nbytes: int = nbytes, m_g: int = m_g
            ) -> float:
                return runner.run_one(
                    SimJob(
                        spec=spec,
                        kind="reduce_then_scatter",
                        procs=procs,
                        algorithm=model.algorithm,
                        nbytes=nbytes,
                        segment_size=segment_size,
                        gather_bytes=m_g,
                        seed=rep_seed,
                    )
                )

            base_seed = seed + 104_729 * (index + 1)
            sample = adaptive_measure(
                measure_once,
                precision=precision,
                max_reps=max_reps,
                seed=base_seed,
            )
            attempt = 0
            while not sample.converged and attempt < retry_budget:
                attempt += 1
                retried += 1
                candidate = adaptive_measure(
                    measure_once,
                    precision=precision,
                    max_reps=max_reps,
                    seed=base_seed + RETRY_SEED_STRIDE * attempt,
                )
                if candidate.relative_precision < sample.relative_precision:
                    sample = candidate
            stats.append(sample)
            xs.append(total.c_beta / total.c_alpha)
            ys.append(sample.mean / total.c_alpha)

        if screen_mad is not None and len(xs) > 2:
            kept = mad_screen(xs, ys, threshold=screen_mad)
        else:
            kept = list(range(len(xs)))
        screened = len(xs) - len(kept)
        fit = fit_fn([xs[i] for i in kept], [ys[i] for i in kept])
        mean_abs_y = sum(abs(ys[i]) for i in kept) / len(kept)
        quality = FitQuality(
            points=len(xs),
            screened=screened,
            fitted=len(kept),
            max_abs_residual=float(fit.max_abs_residual),
            relative_residual=float(
                fit.max_abs_residual / mean_abs_y if mean_abs_y > 0 else 0.0
            ),
            converged=sum(1 for s in stats if s.converged),
            retried=retried,
            mean_relative_precision=float(
                sum(s.relative_precision for s in stats) / len(stats)
            ),
        )
        ab_span.set_attrs(
            memo_hits=runner.stats.memo_hits - memo_before,
            simulations=runner.stats.simulations - sims_before,
            retried=retried,
        )
        return AlphaBeta(
            algorithm=model.algorithm,
            params=HockneyParams(
                alpha=max(fit.intercept, 0.0), beta=max(fit.slope, 0.0)
            ),
            fit=fit,
            points=tuple(zip(xs, ys)),
            sizes=tuple(sizes),
            stats=tuple(stats),
            quality=quality,
        )


def calibrate_reduce(
    spec: ClusterSpec,
    *,
    procs: int | None = None,
    algorithms: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    gamma_max_procs: int = DEFAULT_MAX_PROCS,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    screen_mad: float | None = None,
    retry_budget: int = 0,
    model_params: dict | None = None,
) -> tuple[PlatformModel, dict[str, AlphaBeta]]:
    """Full reduce calibration: γ plus per-algorithm α/β.

    Returns a :class:`PlatformModel` with ``model_family="reduce_derived"``
    ready for :class:`~repro.selection.model_based.ModelBasedSelector`.

    All simulations route through ``runner`` (default: the process-wide
    runner).  The entire experiment schedule — γ plus every algorithm's
    sweep — is prefetched as one batch up front, so with a parallel runner
    the whole calibration's simulations run concurrently and the serial
    estimation stages replay from the memo.
    """
    if algorithms is None:
        # The flat-fabric default: topology-aware extension algorithms
        # (hierarchical) are opt-in, keeping pre-fabric builds identical.
        from repro.collectives.reduce import DEFAULT_REDUCE_ALGORITHMS

        algorithms = sorted(DEFAULT_REDUCE_ALGORITHMS)
    ab_procs = procs if procs is not None else max(2, spec.max_procs // 2)

    with obs.span(
        "calibrate.platform",
        cluster=spec.name,
        estimation="collective",
        model_family="reduce_derived",
        algorithms=",".join(algorithms),
    ):
        runner = runner if runner is not None else default_runner()
        batch = gamma_prefetch_jobs(
            spec,
            segment_size=segment_size,
            max_procs=gamma_max_procs,
            seed=seed,
        )
        for index, name in enumerate(algorithms):
            batch += reduce_alphabeta_prefetch_jobs(
                spec,
                name,
                procs=ab_procs,
                sizes=sizes,
                segment_size=segment_size,
                seed=seed + 3_000_017 * (index + 1),
            )
        with obs.span(
            "calibrate.prefetch", jobs=len(batch), batched=runner.batch
        ):
            runner.prefetch(batch)

        gamma = estimate_gamma(
            spec,
            segment_size=segment_size,
            max_procs=gamma_max_procs,
            precision=precision,
            max_reps=max_reps,
            seed=seed,
            runner=runner,
            prefetch=False,
        ).function()

        estimates: dict[str, AlphaBeta] = {}
        parameters: dict[str, HockneyParams] = {}
        for index, name in enumerate(algorithms):
            model = instantiate_model(
                DERIVED_REDUCE_MODELS[name], gamma, model_params or {}
            )
            estimate = estimate_reduce_alpha_beta(
                spec,
                model,
                procs=procs,
                sizes=sizes,
                segment_size=segment_size,
                regressor=regressor,
                precision=precision,
                max_reps=max_reps,
                seed=seed + 3_000_017 * (index + 1),
                runner=runner,
                prefetch=False,
                screen_mad=screen_mad,
                retry_budget=retry_budget,
            )
            estimates[name] = estimate
            parameters[name] = estimate.params

        platform = PlatformModel(
            cluster=spec.name,
            segment_size=segment_size,
            gamma=gamma,
            parameters=parameters,
            model_family="reduce_derived",
            model_params=dict(model_params or {}),
        )
        return platform, estimates
