"""Guideline smoke: build, verify, then prove the strict gate refuses.

The CI-facing end-to-end check of the performance-guideline layer
(ISSUE 8): build a small artifact on the mini cluster, assert its
guideline verification is clean, then *tamper* with the decision table —
swapping one stored choice for a model-suboptimal algorithm and
regenerating the decision function so the artifact still passes the
syntactic self-check — and assert that

1. :func:`repro.tuning.verify_guidelines` pinpoints the perturbed cell
   (``selection_optimal``, right operation, positive margin), and
2. the strict gate (:func:`repro.tuning.check_guidelines`, the same path
   ``repro artifact verify --guidelines --strict`` and
   ``build_artifact(strict=True)`` use) refuses the artifact.

Usage::

    PYTHONPATH=src python benchmarks/run_guideline_smoke.py --jobs 2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.clusters import MINICLUSTER  # noqa: E402
from repro.errors import GuidelineViolationError  # noqa: E402
from repro.exec import ParallelRunner, cpu_count  # noqa: E402
from repro.selection.codegen import generate_python  # noqa: E402
from repro.selection.decision_table import DecisionTable  # noqa: E402
from repro.selection.oracle import Selection  # noqa: E402
from repro.service.artifact import (  # noqa: E402
    ArtifactEntry,
    SelectionArtifact,
    build_artifact,
)
from repro.tuning import check_guidelines, verify_guidelines  # noqa: E402
from repro.units import KiB, log_spaced_sizes  # noqa: E402


def perturb(artifact: SelectionArtifact, operation: str) -> SelectionArtifact:
    """Swap one stored decision for a wrong algorithm; keep codegen honest."""
    entry = artifact.entries[operation]
    choices = [list(row) for row in entry.table.choices]
    current = choices[0][0]
    wrong = "linear" if current.algorithm != "linear" else "chain"
    choices[0][0] = Selection(wrong, current.segment_size, operation=operation)
    table = DecisionTable(
        proc_points=entry.table.proc_points,
        size_points=entry.table.size_points,
        choices=tuple(tuple(row) for row in choices),
    )
    entries = dict(artifact.entries)
    entries[operation] = ArtifactEntry(
        operation=operation,
        platform=entry.platform,
        table=table,
        function_name=entry.function_name,
        source=generate_python(table, function_name=entry.function_name),
    )
    return SelectionArtifact(
        cluster=artifact.cluster,
        cluster_fingerprint=artifact.cluster_fingerprint,
        entries=entries,
        fabric=artifact.fabric,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=min(4, cpu_count()))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    runner = ParallelRunner(jobs=args.jobs)
    artifact = build_artifact(
        MINICLUSTER,
        collectives=("bcast",),
        proc_points=(4, 8),
        size_points=tuple(log_spaced_sizes(64 * KiB, 1024 * KiB, 5)),
        procs=8,
        gamma_max_procs=3,
        max_reps=3,
        seed=args.seed,
        runner=runner,
        strict=True,
    )

    # 1. A strict build is born clean and says so in its stamped report.
    report = verify_guidelines(artifact)
    assert report.ok(), report.format()
    assert artifact.guidelines.get("ok") is True, artifact.guidelines
    print(report.format())

    # 2. A tampered table is caught semantically, not syntactically.
    bad = perturb(artifact, "bcast")
    bad.verify()  # the codegen self-check alone cannot see the tampering
    bad_report = verify_guidelines(bad)
    assert not bad_report.ok(), "perturbed table slipped past verification"
    violation = bad_report.violations[0]
    assert violation.guideline == "selection_optimal", violation
    assert violation.operation == "bcast", violation
    assert violation.margin > 0, violation
    print(f"perturbation caught: {violation.describe()}")

    # 3. The strict gate refuses it outright.
    try:
        check_guidelines(bad)
    except GuidelineViolationError as error:
        print(f"strict gate refused as expected: {error}")
    else:
        raise AssertionError("strict gate accepted a violating artifact")

    print("guideline smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
