def select_bcast(communicator_size, message_size):
    """Generated decision function (floor semantics on both axes).

    Grid: 31 communicator sizes x 10 message sizes.
    """
    if communicator_size >= 122:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 118:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 114:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 110:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 106:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 102:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 98:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 94:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 90:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 86:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 82:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 78:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 74:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 70:
        if message_size >= 4194304:
            return ('split_binary', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 66:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 62:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 58:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 54:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 50:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 46:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 42:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 38:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('split_binary', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 34:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('chain', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 30:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('chain', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 26:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('chain', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 22:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('chain', 8192)
        if message_size >= 1048576:
            return ('split_binary', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 18:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('chain', 8192)
        if message_size >= 1048576:
            return ('chain', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 14:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('chain', 8192)
        if message_size >= 1048576:
            return ('chain', 8192)
        if message_size >= 524288:
            return ('split_binary', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 10:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('chain', 8192)
        if message_size >= 1048576:
            return ('chain', 8192)
        if message_size >= 524288:
            return ('chain', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binary', 8192)
    if communicator_size >= 6:
        if message_size >= 4194304:
            return ('chain', 8192)
        if message_size >= 2097152:
            return ('chain', 8192)
        if message_size >= 1048576:
            return ('chain', 8192)
        if message_size >= 524288:
            return ('chain', 8192)
        if message_size >= 262144:
            return ('split_binary', 8192)
        if message_size >= 131072:
            return ('split_binary', 8192)
        if message_size >= 65536:
            return ('split_binary', 8192)
        if message_size >= 32768:
            return ('split_binary', 8192)
        if message_size >= 16384:
            return ('binary', 8192)
        if True:
            return ('binomial', 8192)
    if True:
        if message_size >= 4194304:
            return ('linear', 0)
        if message_size >= 2097152:
            return ('linear', 0)
        if message_size >= 1048576:
            return ('linear', 0)
        if message_size >= 524288:
            return ('linear', 0)
        if message_size >= 262144:
            return ('linear', 0)
        if message_size >= 131072:
            return ('linear', 0)
        if message_size >= 65536:
            return ('linear', 0)
        if message_size >= 32768:
            return ('linear', 0)
        if message_size >= 16384:
            return ('linear', 0)
        if True:
            return ('linear', 0)
