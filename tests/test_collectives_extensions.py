"""Tests for the extension collectives: reduce, scatter, allgather, allreduce."""

import collections

import pytest

from repro.clusters import MINICLUSTER
from repro.collectives.allgather import ALLGATHER_ALGORITHMS
from repro.collectives.allreduce import ALLREDUCE_ALGORITHMS
from repro.collectives.reduce import REDUCE_ALGORITHMS
from repro.collectives.scatter import SCATTER_ALGORITHMS
from repro.measure import run_timed
from repro.sim.trace import Tracer
from repro.units import KiB


def run_collective(program_factory, procs, root=0, tracer=None):
    tracer = tracer if tracer is not None else Tracer(enabled=False)

    def program(comm):
        yield from program_factory(comm)

    return run_timed(MINICLUSTER, program, procs, root=root, tracer=tracer)


class TestReduce:
    @pytest.mark.parametrize("name", sorted(REDUCE_ALGORITHMS))
    @pytest.mark.parametrize("procs", [1, 2, 5, 8, 13])
    def test_completes(self, name, procs):
        algorithm = REDUCE_ALGORITHMS[name]
        elapsed = run_collective(
            lambda comm: algorithm(comm, 0, 64 * KiB, 8 * KiB), procs
        )
        assert elapsed >= 0.0

    @pytest.mark.parametrize("name", sorted(REDUCE_ALGORITHMS))
    def test_root_obtains_all_contributions(self, name):
        """Each rank's data must reach the root, directly or combined."""
        procs, nbytes = 8, 32 * KiB
        algorithm = REDUCE_ALGORITHMS[name]
        tracer = Tracer()
        run_collective(
            lambda comm: algorithm(comm, 0, nbytes, 8 * KiB), procs, tracer=tracer
        )
        # Every non-root rank sends exactly its buffer size in total.
        sent = collections.Counter()
        for event in tracer.of_kind("send_post"):
            sent[event.rank] += event.nbytes
        for rank in range(1, procs):
            assert sent[rank] == nbytes, f"{name}: rank {rank} sent {sent[rank]}"
        assert sent.get(0, 0) == 0

    def test_binomial_faster_than_linear_at_scale(self):
        procs, nbytes = 16, 512 * KiB
        linear = run_collective(
            lambda comm: REDUCE_ALGORITHMS["linear"](comm, 0, nbytes, 0), procs
        )
        binomial = run_collective(
            lambda comm: REDUCE_ALGORITHMS["binomial"](comm, 0, nbytes, 8 * KiB),
            procs,
        )
        assert binomial < linear

    def test_non_default_root(self):
        elapsed = run_collective(
            lambda comm: REDUCE_ALGORITHMS["binary"](comm, 3, 64 * KiB, 8 * KiB),
            8,
            root=3,
        )
        assert elapsed > 0


class TestScatter:
    @pytest.mark.parametrize("name", sorted(SCATTER_ALGORITHMS))
    @pytest.mark.parametrize("procs", [1, 2, 6, 8, 11])
    def test_every_rank_receives_its_block(self, name, procs):
        nbytes = 4 * KiB
        algorithm = SCATTER_ALGORITHMS[name]
        tracer = Tracer()
        run_collective(lambda comm: algorithm(comm, 0, nbytes), procs, tracer=tracer)
        received = collections.Counter()
        for event in tracer.of_kind("recv_complete"):
            received[event.rank] += event.nbytes
        for rank in range(1, procs):
            assert received[rank] >= nbytes

    def test_binomial_root_sends_subtree_blocks(self):
        procs, nbytes = 8, 4 * KiB
        tracer = Tracer()
        run_collective(
            lambda comm: SCATTER_ALGORITHMS["binomial"](comm, 0, nbytes),
            procs,
            tracer=tracer,
        )
        root_sends = sorted(
            e.nbytes for e in tracer.of_kind("send_post") if e.rank == 0
        )
        # Binomial subtrees of size 1, 2, 4 blocks.
        assert root_sends == [nbytes, 2 * nbytes, 4 * nbytes]

    def test_total_traffic_linear_vs_binomial(self):
        """Binomial scatter moves more total bytes (log routing) but the
        root itself injects the same amount."""
        procs, nbytes = 8, 4 * KiB
        totals = {}
        for name in SCATTER_ALGORITHMS:
            tracer = Tracer()
            run_collective(
                lambda comm, name=name: SCATTER_ALGORITHMS[name](comm, 0, nbytes),
                procs,
                tracer=tracer,
            )
            totals[name] = sum(
                e.nbytes for e in tracer.of_kind("send_post") if e.rank == 0
            )
        assert totals["linear"] == totals["binomial"] == 7 * nbytes


class TestAllgather:
    @pytest.mark.parametrize("name", sorted(ALLGATHER_ALGORITHMS))
    @pytest.mark.parametrize("procs", [1, 2, 4, 7, 8, 12])
    def test_every_rank_collects_everything(self, name, procs):
        """Total received per rank = (P-1) blocks, however routed."""
        nbytes = 2 * KiB
        algorithm = ALLGATHER_ALGORITHMS[name]
        tracer = Tracer()
        run_collective(lambda comm: algorithm(comm, nbytes), procs, tracer=tracer)
        received = collections.Counter()
        for event in tracer.of_kind("recv_complete"):
            received[event.rank] += event.nbytes
        for rank in range(procs):
            if procs > 1:
                assert received[rank] >= (procs - 1) * nbytes, (name, rank)

    def test_ring_step_count(self):
        procs = 6
        tracer = Tracer()
        run_collective(
            lambda comm: ALLGATHER_ALGORITHMS["ring"](comm, 1 * KiB),
            procs,
            tracer=tracer,
        )
        sends = collections.Counter(e.rank for e in tracer.of_kind("send_post"))
        assert all(count == procs - 1 for count in sends.values())

    def test_recursive_doubling_round_count_power_of_two(self):
        procs = 8
        tracer = Tracer()
        run_collective(
            lambda comm: ALLGATHER_ALGORITHMS["recursive_doubling"](comm, 1 * KiB),
            procs,
            tracer=tracer,
        )
        sends = collections.Counter(e.rank for e in tracer.of_kind("send_post"))
        assert all(count == 3 for count in sends.values())  # log2(8)

    def test_bruck_handles_non_power_of_two(self):
        elapsed = run_collective(
            lambda comm: ALLGATHER_ALGORITHMS["bruck"](comm, 2 * KiB), 7
        )
        assert elapsed > 0


class TestAllreduce:
    @pytest.mark.parametrize("name", sorted(ALLREDUCE_ALGORITHMS))
    @pytest.mark.parametrize("procs", [1, 2, 4, 6, 8, 13])
    def test_completes(self, name, procs):
        algorithm = ALLREDUCE_ALGORITHMS[name]
        elapsed = run_collective(lambda comm: algorithm(comm, 128 * KiB), procs)
        assert elapsed >= 0.0

    def test_ring_moves_less_data_than_recursive_doubling_at_scale(self):
        """Ring traffic per rank ~ 2m; recursive doubling ~ m log2 P."""
        procs, nbytes = 8, 256 * KiB
        totals = {}
        for name in ALLREDUCE_ALGORITHMS:
            tracer = Tracer()
            run_collective(
                lambda comm, name=name: ALLREDUCE_ALGORITHMS[name](comm, nbytes),
                procs,
                tracer=tracer,
            )
            totals[name] = tracer.total_bytes_sent()
        assert totals["ring"] < totals["recursive_doubling"]

    def test_ring_faster_for_large_vectors(self):
        procs, nbytes = 12, 2048 * KiB
        ring = run_collective(
            lambda comm: ALLREDUCE_ALGORITHMS["ring"](comm, nbytes), procs
        )
        doubling = run_collective(
            lambda comm: ALLREDUCE_ALGORITHMS["recursive_doubling"](comm, nbytes),
            procs,
        )
        assert ring < doubling
