"""Scenario: why traditional analytical models fail (the paper's Fig. 1).

Builds both model families for the binary and binomial broadcasts —

* traditional: textbook equations + ping-pong-measured Hockney parameters;
* derived: implementation-derived equations + gamma(P) + per-algorithm
  in-context parameters (the paper's method) —

and prints predictions next to simulator measurements, showing that only
the derived models track reality well enough to rank algorithms.

Run:  python examples/compare_models.py
"""

from repro import GRISOU
from repro.estimation.alphabeta import estimate_alpha_beta
from repro.estimation.gamma import estimate_gamma
from repro.estimation.p2p import estimate_hockney_p2p
from repro.measure import time_bcast
from repro.models.derived import DERIVED_BCAST_MODELS
from repro.models.traditional import TRADITIONAL_BCAST_MODELS
from repro.units import KiB, MiB, format_bytes, format_seconds, log_spaced_sizes

PROCS = 40
SEGMENT = 8 * KiB
ALGORITHMS = ("binary", "binomial")
SIZES = log_spaced_sizes(8 * KiB, 4 * MiB, 6)


def main() -> None:
    cluster = GRISOU.with_noise(0.0)
    print(f"Platform: {cluster.describe()}  (P={PROCS})")

    print("\nEstimating parameters both ways...")
    p2p = estimate_hockney_p2p(cluster)
    print(f"  ping-pong fit:      {p2p.params}")
    gamma = estimate_gamma(cluster).function()
    print(
        "  gamma(P):           "
        + ", ".join(f"g({p})={gamma(p):.2f}" for p in range(2, 8))
    )

    for name in ALGORITHMS:
        traditional = TRADITIONAL_BCAST_MODELS[name](None)
        derived = DERIVED_BCAST_MODELS[name](gamma)
        fitted = estimate_alpha_beta(cluster, derived, procs=PROCS)
        print(f"\n=== {name} broadcast ===")
        print(f"  in-context fit:     {fitted.params}")
        print(
            f"{'message':>9} {'measured':>12} {'derived model':>14} "
            f"{'traditional':>12}"
        )
        for nbytes in SIZES:
            measured = time_bcast(cluster, name, PROCS, nbytes, SEGMENT)
            with_derived = derived.predict(PROCS, nbytes, SEGMENT, fitted.params)
            with_traditional = traditional.predict(
                PROCS, nbytes, SEGMENT, p2p.params
            )
            print(
                f"{format_bytes(nbytes):>9} {format_seconds(measured):>12} "
                f"{format_seconds(with_derived):>14} "
                f"{format_seconds(with_traditional):>12}"
            )

    print(
        "\nThe traditional binomial column is the whole-message log2(P) "
        "formula of Thakur et al.;\nit misses the segmentation/pipelining "
        "of the real implementation entirely — the gap\nthe paper's Fig. 1 "
        "plots, and the reason the derived models exist."
    )


if __name__ == "__main__":
    main()
