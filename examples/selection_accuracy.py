"""Scenario: reproduce the paper's Table 3 on the Grisou preset.

Compares, for each message size, the measured-best broadcast algorithm,
the model-based selection, and the Open MPI 3.1 fixed decision function —
the experiment behind the paper's Table 3 and Fig. 5.

Uses a reduced configuration (P=48, 7 sizes) so it completes in about a
minute; the full-scale version is ``pytest
benchmarks/test_table3_selection.py --benchmark-only`` or
``repro-mpi table3 --cluster grisou -P 90``.

Run:  python examples/selection_accuracy.py
"""

from repro import GRISOU, calibrate_platform
from repro.bench.runner import selection_comparison
from repro.bench.tables import format_table3
from repro.units import KiB, MiB, log_spaced_sizes

PROCS = 48
SIZES = log_spaced_sizes(8 * KiB, 4 * MiB, 7)


def main() -> None:
    cluster = GRISOU
    print(f"Platform: {cluster.describe()}")

    print(f"\nCalibrating at P=24 (half the evaluation size, like the paper)...")
    calibration = calibrate_platform(cluster, procs=24, max_reps=6)

    print(f"Measuring all algorithms at P={PROCS} and comparing selections...")
    rows = selection_comparison(
        cluster, calibration.platform, PROCS, SIZES, max_reps=6
    )

    print()
    print(format_table3(rows, title=f"P={PROCS}, MPI_Bcast, {cluster.name}"))

    model_total = sum(row.model_degradation for row in rows)
    ompi_total = sum(row.ompi_degradation for row in rows)
    print(
        f"\nAccumulated degradation vs best over the sweep: "
        f"model-based {model_total:.0f}%, Open MPI fixed {ompi_total:.0f}%"
    )
    worst = max(rows, key=lambda row: row.ompi_degradation)
    print(
        f"Worst Open MPI pick: {worst.ompi.describe()} at "
        f"{worst.nbytes // 1024} KB (+{worst.ompi_degradation:.0f}% vs "
        f"{worst.best.algorithm})"
    )


if __name__ == "__main__":
    main()
