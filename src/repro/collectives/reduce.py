"""Reduce algorithms (extension: the paper's future-work collectives).

Ports of the tree-based reduction algorithms in ``coll_base_reduce.c``:
linear, chain (pipeline), binary, binomial and in-order binomial.  The
generic segmented tree reduction mirrors the broadcast engine with data
flowing leaf-to-root: an interior node receives each segment from every
child, combines it (charging per-byte operator time to the rank), and
forwards the partial result to its parent, pipelined across segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mpi.communicator import Communicator
from repro.mpi.segmentation import plan_segments
from repro.sim.engine import SimGen
from repro.topology import (
    Tree,
    build_binary_tree,
    build_binomial_tree,
    build_chain_tree,
    build_hierarchy_tree,
    build_in_order_binomial_tree,
    comm_group_of,
)

#: Base tag for reduction traffic; segment ``i`` uses ``TAG_REDUCE + i``.
TAG_REDUCE = 5_000

#: Default per-byte cost of applying the reduction operator (e.g. MPI_SUM
#: on doubles streams at several GB/s on one core).
DEFAULT_OP_BYTE_TIME = 0.25e-9


def _generic_tree_reduce(
    comm: Communicator,
    tree: Tree,
    nbytes: int,
    segment_size: int,
    op_byte_time: float,
) -> SimGen:
    """Leaf-to-root mirror of the generic pipelined tree engine."""
    plan = plan_segments(nbytes, segment_size)
    rank = comm.rank
    children = tree.children[rank]
    parent = tree.parent[rank]

    for index, size in enumerate(plan.sizes):
        if children:
            requests = []
            for child in children:
                request = yield from comm.irecv(child, tag=TAG_REDUCE + index)
                requests.append(request)
            yield from comm.waitall(requests)
            # Combine own buffer with every child's contribution.
            yield from comm.compute(len(children) * size * op_byte_time)
        if rank != tree.root:
            yield from comm.send(parent, size, tag=TAG_REDUCE + index)


def reduce_linear(
    comm: Communicator,
    root: int,
    nbytes: int,
    segment_size: int = 0,
    op_byte_time: float = DEFAULT_OP_BYTE_TIME,
) -> SimGen:
    """Linear reduce: every rank sends its full buffer straight to the root.

    Port of ``reduce_intra_basic_linear``; never segmented.
    """
    del segment_size
    if comm.size == 1 or nbytes == 0:
        return
    if comm.rank == root:
        requests = []
        for peer in range(comm.size):
            if peer != root:
                request = yield from comm.irecv(peer, tag=TAG_REDUCE)
                requests.append(request)
        yield from comm.waitall(requests)
        yield from comm.compute((comm.size - 1) * nbytes * op_byte_time)
    else:
        yield from comm.send(root, nbytes, tag=TAG_REDUCE)


def _tree_reduce(builder: Callable[[int, int], Tree]):
    def algorithm(
        comm: Communicator,
        root: int,
        nbytes: int,
        segment_size: int,
        op_byte_time: float = DEFAULT_OP_BYTE_TIME,
    ) -> SimGen:
        if comm.size == 1 or nbytes == 0:
            return
        tree = builder(comm.size, root)
        yield from _generic_tree_reduce(
            comm, tree, nbytes, segment_size, op_byte_time
        )

    return algorithm


#: Chain (pipeline) reduce: ``reduce_intra_pipeline``.
reduce_chain = _tree_reduce(lambda size, root: build_chain_tree(size, root, 1))
#: Binary-tree reduce: ``reduce_intra_bintree``.
reduce_binary = _tree_reduce(build_binary_tree)
#: Binomial-tree reduce: ``reduce_intra_binomial``.
reduce_binomial = _tree_reduce(build_binomial_tree)
#: In-order binomial reduce (non-commutative-safe): ``reduce_intra_in_order_binary``-style.
reduce_in_order_binomial = _tree_reduce(build_in_order_binomial_tree)


def reduce_hierarchical(
    comm: Communicator,
    root: int,
    nbytes: int,
    segment_size: int,
    op_byte_time: float = DEFAULT_OP_BYTE_TIME,
) -> SimGen:
    """Topology-aware reduce: the mirror of the hierarchical broadcast.

    Rack members combine into their leader (linear), leaders combine up
    a binomial tree into the root — each segment crosses every rack
    uplink exactly once on the way down to the root's rack.
    """
    if comm.size == 1 or nbytes == 0:
        return
    tree = build_hierarchy_tree(comm_group_of(comm), root)
    yield from _generic_tree_reduce(
        comm, tree, nbytes, segment_size, op_byte_time
    )


@dataclass(frozen=True)
class ReduceAlgorithm:
    """Catalogue entry for one reduce algorithm."""

    name: str
    display_name: str
    segmented: bool
    func: Callable[..., SimGen]

    def __call__(
        self, comm: Communicator, root: int, nbytes: int, segment_size: int
    ) -> SimGen:
        return self.func(comm, root, nbytes, segment_size)


#: Reduce algorithm catalogue.
REDUCE_ALGORITHMS: dict[str, ReduceAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        ReduceAlgorithm("linear", "Linear", False, reduce_linear),
        ReduceAlgorithm("chain", "Chain (pipeline)", True, reduce_chain),
        ReduceAlgorithm("binary", "Binary tree", True, reduce_binary),
        ReduceAlgorithm("binomial", "Binomial tree", True, reduce_binomial),
        ReduceAlgorithm(
            "in_order_binomial",
            "In-order binomial tree",
            True,
            reduce_in_order_binomial,
        ),
        # Topology-aware extension; deliberately NOT in
        # DEFAULT_REDUCE_ALGORITHMS, so flat-fabric defaults are unchanged.
        ReduceAlgorithm(
            "hierarchical",
            "Hierarchical (rack leaders)",
            True,
            reduce_hierarchical,
        ),
    )
}

#: The flat-fabric reduce catalogue: every algorithm except the
#: topology-aware extension.  Calibration, oracle and CLI defaults
#: enumerate THIS tuple, never the full catalogue, so adding
#: ``hierarchical`` changed no flat-fabric behaviour.
DEFAULT_REDUCE_ALGORITHMS: tuple[str, ...] = (
    "binary",
    "binomial",
    "chain",
    "in_order_binomial",
    "linear",
)
