"""Stochastic perturbation of simulated network costs.

Real clusters exhibit run-to-run variation (OS jitter, TCP stack state,
switch buffering).  The paper's measurement methodology — repeating each
experiment until the 95% confidence interval half-width is within 2.5% of the
sample mean — only makes sense against such variation, so the simulator
supports a seeded multiplicative noise model.

All noise is derived from a single ``numpy`` PRNG seeded per experiment, so a
given (cluster, seed) pair reproduces bit-identical "measurements".
"""

from __future__ import annotations

import math

import numpy as np


class NoiseModel:
    """Interface: a stream of multiplicative cost factors (>= 0)."""

    def factor(self) -> float:
        """Return the next multiplicative factor applied to a network cost."""
        raise NotImplementedError

    def reseed(self, seed: int) -> None:
        """Reset the underlying PRNG (called once per measurement run)."""
        raise NotImplementedError


class NoNoise(NoiseModel):
    """Deterministic model: every factor is exactly 1."""

    def factor(self) -> float:
        return 1.0

    def reseed(self, seed: int) -> None:  # noqa: ARG002 - deterministic
        return None

    def __repr__(self) -> str:
        return "NoNoise()"


class LognormalNoise(NoiseModel):
    """Multiplicative lognormal jitter with unit mean.

    ``sigma`` is the standard deviation of the underlying normal; the
    distribution is scaled so that ``E[factor] == 1`` (costs are unbiased).
    A typical dedicated-cluster value is ``sigma = 0.02`` (~2% jitter).
    """

    def __init__(self, sigma: float = 0.02, seed: int = 0):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = sigma
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); pick mu so mean is 1.
        self._mu = -0.5 * sigma * sigma

    def factor(self) -> float:
        if self.sigma == 0.0:
            return 1.0
        return float(math.exp(self._mu + self.sigma * self._rng.standard_normal()))

    def reseed(self, seed: int) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def __repr__(self) -> str:
        return f"LognormalNoise(sigma={self.sigma}, seed={self.seed})"
