"""Deployment subsystem: versioned selection artifacts + an online server.

The paper's end-game is a decision function consulted at every collective
call site.  This package operationalises it in two steps:

* :mod:`repro.service.artifact` — :func:`build_artifact` runs
  calibration → model fit → decision tables → code generation and
  freezes the result into a versioned, content-hashed JSON document;
  :func:`load_artifact` refuses anything corrupt or mismatched;
  :class:`ArtifactRegistry` manages a directory of them.
* :mod:`repro.service.server` — :class:`SelectionService` answers
  "(cluster, collective, P, m) → algorithm" queries through an LRU
  cache; :class:`HttpServer` exposes it over stdlib-asyncio HTTP
  (``repro serve``) with Prometheus metrics
  (:class:`repro.service.metrics.ServiceMetrics`), graceful drain and
  hot reload.

See docs/SERVICE.md for the artifact schema, the endpoint reference and
the metrics glossary.
"""

from repro.service.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactEntry,
    ArtifactRegistry,
    SelectionArtifact,
    build_artifact,
    default_proc_points,
    load_artifact,
)
from repro.service.metrics import ServiceMetrics, merge_metrics_texts
from repro.service.server import (
    HttpServer,
    LruCache,
    RequestError,
    SelectionService,
    ServiceThread,
    serve,
)
from repro.service.shard import (
    ShardSupervisor,
    WorkerHandle,
    reuseport_socket,
    serve_sharded,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactEntry",
    "ArtifactRegistry",
    "HttpServer",
    "LruCache",
    "RequestError",
    "SelectionArtifact",
    "SelectionService",
    "ServiceMetrics",
    "ServiceThread",
    "ShardSupervisor",
    "WorkerHandle",
    "build_artifact",
    "default_proc_points",
    "load_artifact",
    "merge_metrics_texts",
    "reuseport_socket",
    "serve",
    "serve_sharded",
]
