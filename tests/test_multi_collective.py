"""Four-layer agreement for the non-broadcast collectives.

Mirror of :mod:`tests.test_degenerate_inputs` for reduce, gather,
barrier and the whole-suite collectives (allreduce, allgather, alltoall,
scatter): the same ``(operation, P, m)`` query must get the same answer
from the :class:`DecisionTable`, the compiled Python decision function,
the generated C source (interpreted by a small evaluator), and ``POST
/select`` on a live server — including at the degenerate corners.  Also
locks the conventions the extensions introduced: the data-moving models
are no-ops at ``m = 0`` while the barrier is not, and the barrier's
decision table is size-independent (a single ``m = 0`` column).
"""

from __future__ import annotations

import json
import re
from http.client import HTTPConnection

import pytest

from repro.clusters import MINICLUSTER
from repro.selection.codegen import algorithm_ids_for, generate_c
from repro.service import (
    ArtifactRegistry,
    SelectionService,
    ServiceThread,
    build_artifact,
)
from repro.units import KiB, MiB, log_spaced_sizes

GRID_PROCS = tuple(range(2, 17, 2))
GRID_SIZES = tuple(log_spaced_sizes(8 * KiB, 1 * MiB, 6))

OPERATIONS = (
    "reduce", "gather", "barrier",
    "allreduce", "allgather", "alltoall", "scatter",
)

#: The degenerate sweep: below / on / far above the decision grid.
POINTS = (
    (1, 0),
    (1, 64 * KiB),
    (2, 1),
    (2, 8 * KiB),
    (8, 0),
    (16, 1 * MiB),
    (500, 1 << 30),
)


@pytest.fixture(scope="module")
def artifact():
    return build_artifact(
        MINICLUSTER,
        collectives=OPERATIONS,
        proc_points=GRID_PROCS,
        size_points=GRID_SIZES,
        procs=6,
        gamma_max_procs=4,
        sizes=(8 * KiB, 64 * KiB, 512 * KiB),
        max_reps=3,
        seed=0,
    )


@pytest.fixture(scope="module")
def decision_fns(artifact):
    return {
        operation: artifact.entries[operation].compile()
        for operation in OPERATIONS
    }


@pytest.fixture(scope="module")
def server(artifact, tmp_path_factory):
    directory = tmp_path_factory.mktemp("multi-collective-artifacts")
    artifact.save(directory / "minicluster.json")
    service = SelectionService(ArtifactRegistry(directory), cache_size=64)
    with ServiceThread(service) as handle:
        yield handle


def post_select(port, operation, procs, nbytes):
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(
            "POST",
            "/select",
            json.dumps(
                {
                    "cluster": "minicluster",
                    "operation": operation,
                    "procs": procs,
                    "nbytes": nbytes,
                }
            ),
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


#: Line shapes of the generated C decision function.
_C_OUTER = re.compile(r"^    (?:if \(communicator_size >= (\d+)\) )?\{$")
_C_INNER = re.compile(r"^        (?:if \(message_size >= (\d+)UL\) )?\{$")
_C_ALGO = re.compile(r"^\s+\*algorithm = (\d+);")
_C_SEG = re.compile(r"^\s+\*segsize = (\d+)UL;")


def evaluate_c(source: str, procs: int, nbytes: int) -> tuple[int, int]:
    """Interpret the generated C source for one query.

    Walks the emitted branch structure exactly as a C compiler would
    execute it: the first outer communicator-size guard that passes, then
    the first inner message-size guard inside it, yields the returned
    ``(*algorithm, *segsize)`` pair.
    """
    lines = source.splitlines()
    index = 0
    outer_taken = False
    while index < len(lines):
        outer = _C_OUTER.match(lines[index])
        if outer:
            outer_taken = outer.group(1) is None or procs >= int(outer.group(1))
            index += 1
            continue
        inner = _C_INNER.match(lines[index])
        if inner and outer_taken:
            if inner.group(1) is None or nbytes >= int(inner.group(1)):
                algorithm = int(_C_ALGO.match(lines[index + 1]).group(1))
                segment = int(_C_SEG.match(lines[index + 2]).group(1))
                return algorithm, segment
        index += 1
    raise AssertionError("generated C takes no branch — grids must be total")


class TestFourLayerAgreement:
    @pytest.mark.parametrize("operation", OPERATIONS)
    @pytest.mark.parametrize("procs,nbytes", POINTS)
    def test_table_codegen_artifact_agree(
        self, artifact, decision_fns, operation, procs, nbytes
    ):
        table = artifact.entries[operation].table
        selection = table.select(procs, nbytes)
        expected = (selection.algorithm, selection.segment_size)
        assert decision_fns[operation](procs, nbytes) == expected
        offline = artifact.select(operation, procs, nbytes)
        assert (offline.algorithm, offline.segment_size) == expected

    @pytest.mark.parametrize("operation", OPERATIONS)
    @pytest.mark.parametrize("procs,nbytes", POINTS)
    def test_generated_c_agrees_with_table(
        self, artifact, operation, procs, nbytes
    ):
        table = artifact.entries[operation].table
        selection = table.select(procs, nbytes)
        ids = algorithm_ids_for(operation)
        assert evaluate_c(generate_c(table), procs, nbytes) == (
            ids[selection.algorithm],
            selection.segment_size,
        )

    @pytest.mark.parametrize("operation", OPERATIONS)
    @pytest.mark.parametrize("procs,nbytes", POINTS)
    def test_server_agrees_with_table(
        self, server, artifact, operation, procs, nbytes
    ):
        selection = artifact.entries[operation].table.select(procs, nbytes)
        status, data = post_select(server.port, operation, procs, nbytes)
        assert status == 200
        assert data["operation"] == operation
        assert data["algorithm"] == selection.algorithm
        assert data["segment_size"] == selection.segment_size

    def test_artifact_verify_passes(self, artifact):
        artifact.verify()  # codegen/table bit-identity across all entries

    @pytest.mark.parametrize("operation", OPERATIONS)
    def test_tables_are_tagged_with_their_operation(self, artifact, operation):
        table = artifact.entries[operation].table
        assert {
            choice.operation for row in table.choices for choice in row
        } == {operation}


class TestZeroByteConvention:
    def test_data_moving_models_are_noops_at_zero_bytes(self, artifact):
        for operation in (
            "reduce", "gather",
            "allreduce", "allgather", "alltoall", "scatter",
        ):
            platform = artifact.entries[operation].platform
            predictions = platform.predict_all(8, 0)
            assert predictions and all(
                time == 0.0 for time in predictions.values()
            )

    def test_barrier_predicts_positive_time_at_zero_bytes(self, artifact):
        platform = artifact.entries["barrier"].platform
        predictions = platform.predict_all(8, 0)
        assert predictions and all(time > 0.0 for time in predictions.values())


class TestBarrierSizeIndependence:
    def test_barrier_table_has_a_single_size_column(self, artifact):
        table = artifact.entries["barrier"].table
        assert table.size_points == (0,)
        assert table.proc_points == GRID_PROCS

    def test_barrier_selection_ignores_message_size(self, artifact):
        for procs in (2, 8, 16, 500):
            picks = {
                artifact.select("barrier", procs, nbytes)
                for nbytes in (0, 1, 64 * KiB, 1 << 30)
            }
            assert len(picks) == 1

    def test_barrier_segment_sizes_are_zero(self, artifact):
        table = artifact.entries["barrier"].table
        assert all(
            choice.segment_size == 0
            for row in table.choices
            for choice in row
        )
