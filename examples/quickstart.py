"""Quickstart: calibrate a cluster and select broadcast algorithms.

Runs the paper's full §4 pipeline on the small built-in test cluster
(seconds of wall time), then uses the resulting platform model to pick the
optimal broadcast algorithm across message sizes — and checks the picks
against exhaustive measurement.

Run:  python examples/quickstart.py
"""

from repro import (
    MINICLUSTER,
    MeasuredOracle,
    ModelBasedSelector,
    calibrate_platform,
)
from repro.units import KiB, MiB, format_bytes, format_seconds, log_spaced_sizes


def main() -> None:
    cluster = MINICLUSTER
    print(f"Simulated platform: {cluster.describe()}")

    # Step 1 — calibrate: gamma(P) from collective experiments, then
    # per-algorithm Hockney parameters via broadcast+gather experiments
    # solved with Huber regression (paper §4).
    print("\nCalibrating (paper §4)...")
    calibration = calibrate_platform(cluster, procs=8)
    platform = calibration.platform

    print("  gamma(P):", {p: round(g, 3) for p, g in sorted(platform.gamma.table.items())})
    for name in platform.algorithms:
        params = platform.parameters[name]
        print(f"  {name:13s} {params}")

    # Step 2 — select at runtime: evaluate six closed-form models, argmin.
    selector = ModelBasedSelector(platform)
    oracle = MeasuredOracle(cluster)

    procs = 16
    print(f"\nModel-based selection at P={procs} (vs measured best):")
    print(f"{'message':>10} {'selected':>14} {'predicted':>12} {'measured best':>16} {'loss':>7}")
    for nbytes in log_spaced_sizes(8 * KiB, 4 * MiB, 8):
        choice, predicted = selector.select_with_prediction(procs, nbytes)
        best, best_time = oracle.best(procs, nbytes)
        degradation = oracle.degradation(procs, nbytes, choice)
        print(
            f"{format_bytes(nbytes):>10} {choice.algorithm:>14} "
            f"{format_seconds(predicted):>12} "
            f"{best.algorithm:>16} {degradation:6.1f}%"
        )

    print("\nA selection costs microseconds; the collective it optimises, milliseconds.")


if __name__ == "__main__":
    main()
