"""Simulated ports of Open MPI's tuned collective algorithms.

The broadcast algorithms in :mod:`repro.collectives.bcast` mirror the control
flow of ``ompi/mca/coll/base/coll_base_bcast.c`` (Open MPI 3.1): a generic
pipelined tree broadcast instantiated over the virtual topologies of
:mod:`repro.topology`, plus the two special cases (non-segmented linear and
the two-phase split-binary).  The paper derives its analytical models from
exactly this code structure, so the implementations here are the ground
truth that the models in :mod:`repro.models.derived` must predict.

Also provided: the linear gather used by the paper's α/β estimation
experiments, barriers for the measurement harness, and — as the "future
work" extension — scatter, reduce, allgather and allreduce algorithm
families.
"""

from repro.collectives.barrier import BARRIER_ALGORITHMS
from repro.collectives.bcast import BCAST_ALGORITHMS, BcastAlgorithm
from repro.collectives.gather import GATHER_ALGORITHMS
from repro.collectives.registry import (
    CollectiveAlgorithm,
    algorithm_names,
    get_algorithm,
    operations,
)

__all__ = [
    "BARRIER_ALGORITHMS",
    "BCAST_ALGORITHMS",
    "GATHER_ALGORITHMS",
    "BcastAlgorithm",
    "CollectiveAlgorithm",
    "algorithm_names",
    "get_algorithm",
    "operations",
]
