"""Gather algorithms.

The *linear gather without synchronisation* is the second ingredient of the
paper's α/β estimation experiment (§4.2): every non-root rank sends one
message of size ``m_g`` straight to the root, which drains them through its
single NIC — hence the paper's Eq. 8, ``T = (P-1)(α + m_g β)``.

The binomial gather is included as part of the "extend to other collectives"
future-work scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mpi.communicator import Communicator
from repro.sim.engine import SimGen
from repro.topology import build_in_order_binomial_tree

#: Tag used by gather traffic.
TAG_GATHER = 2_000


def gather_linear(comm: Communicator, root: int, nbytes: int) -> SimGen:
    """Linear gather without synchronisation.

    Port of ``ompi_coll_base_gather_intra_basic_linear``: non-root ranks send
    immediately (no handshake with the root); the root posts all receives up
    front and waits for them, so arrival serialises only on its ingress NIC.
    ``nbytes`` is the per-rank contribution size (the paper's ``m_g``).
    """
    if comm.size == 1:
        return
    if comm.rank == root:
        requests = []
        for peer in range(comm.size):
            if peer == root:
                continue
            request = yield from comm.irecv(peer, tag=TAG_GATHER)
            requests.append(request)
        yield from comm.waitall(requests)
    else:
        yield from comm.send(root, nbytes, tag=TAG_GATHER)


def gather_binomial(comm: Communicator, root: int, nbytes: int) -> SimGen:
    """Binomial gather (extension).

    Port of ``ompi_coll_base_gather_intra_binomial``: leaves send their
    contribution to their parent; interior nodes first collect their whole
    subtree, then forward the aggregate (subtree size × ``nbytes``) upward.
    """
    if comm.size == 1:
        return
    tree = build_in_order_binomial_tree(comm.size, root)
    rank = comm.rank
    requests = []
    for child in tree.children[rank]:
        request = yield from comm.irecv(child, tag=TAG_GATHER)
        requests.append(request)
    if requests:
        yield from comm.waitall(requests)
    if rank != root:
        aggregate = nbytes * tree.subtree_size(rank)
        yield from comm.send(tree.parent[rank], aggregate, tag=TAG_GATHER)


#: Signature shared by gather algorithms.
GatherFn = Callable[[Communicator, int, int], SimGen]


@dataclass(frozen=True)
class GatherAlgorithm:
    """Catalogue entry for one gather algorithm."""

    name: str
    display_name: str
    func: GatherFn

    def __call__(self, comm: Communicator, root: int, nbytes: int) -> SimGen:
        return self.func(comm, root, nbytes)


#: Gather algorithm catalogue.
GATHER_ALGORITHMS: dict[str, GatherAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        GatherAlgorithm("linear", "Linear without synchronisation", gather_linear),
        GatherAlgorithm("binomial", "Binomial tree", gather_binomial),
    )
}
