"""Deeper MPI semantics tests: protocol boundaries, wildcards, statuses."""

import pytest

from repro.errors import MpiError
from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.mpi.communicator import MpiWorld
from repro.sim.engine import Simulator
from repro.sim.network import Fabric, NetworkParams

PARAMS = NetworkParams(
    latency=10e-6,
    byte_time_out=1e-9,
    byte_time_in=1e-9,
    per_message_overhead=1e-6,
    send_overhead=0.5e-6,
    recv_overhead=0.5e-6,
    eager_limit=4096,
    control_latency=8e-6,
    shm_latency=0.5e-6,
    shm_byte_time=0.05e-9,
)


def make_world(procs=4):
    fabric = Fabric(params=PARAMS, num_nodes=procs)
    return MpiWorld(Simulator(), fabric, list(range(procs)))


def run(world, program):
    processes = world.run(program)
    return [p.value for p in processes]


class TestEagerBoundary:
    def test_exactly_at_limit_is_eager(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, PARAMS.eager_limit, tag=1)
                return comm.now
            yield comm.sim.timeout(0.1)  # receiver is late
            yield from comm.recv(0, tag=1)
            return comm.now

        send_done, _ = run(world, body)
        assert send_done < 0.1  # completed locally before the recv existed

    def test_one_byte_over_limit_is_rendezvous(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, PARAMS.eager_limit + 1, tag=1)
                return comm.now
            yield comm.sim.timeout(0.1)
            yield from comm.recv(0, tag=1)
            return comm.now

        send_done, _ = run(world, body)
        assert send_done > 0.1  # waited for the handshake


class TestWildcards:
    def test_any_tag_receives_lowest_arrival_first(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, 10, tag=42)
                yield from comm.send(1, 20, tag=7)
                return None
            first = yield from comm.recv(0, tag=ANY_TAG)
            second = yield from comm.recv(0, tag=ANY_TAG)
            return (first.tag, second.tag)

        assert run(world, body)[1] == (42, 7)  # arrival order, not tag order

    def test_any_source_any_tag_together(self):
        world = make_world(3)

        def body(comm):
            if comm.rank == 0:
                statuses = []
                for _ in range(2):
                    status = yield from comm.recv(ANY_SOURCE, tag=ANY_TAG)
                    statuses.append((status.source, status.nbytes))
                return sorted(statuses)
            yield from comm.send(0, 100 * comm.rank, tag=comm.rank)
            return None

        assert run(world, body)[0] == [(1, 100), (2, 200)]

    def test_rendezvous_matches_any_source_recv(self):
        world = make_world(2)
        big = PARAMS.eager_limit * 4

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, big, tag=5)
                return None
            status = yield from comm.recv(ANY_SOURCE, tag=5)
            return (status.source, status.nbytes)

        assert run(world, body)[1] == (0, big)


class TestStatuses:
    def test_waitall_statuses_in_request_order(self):
        world = make_world(3)

        def body(comm):
            if comm.rank == 0:
                slow = yield from comm.irecv(1, tag=1)
                fast = yield from comm.irecv(2, tag=2)
                statuses = yield from comm.waitall([slow, fast])
                return [(s.source, s.tag) for s in statuses]
            delay = 0.2 if comm.rank == 1 else 0.0
            yield comm.sim.timeout(delay)
            yield from comm.send(0, 8, tag=comm.rank)
            return None

        # Order follows the request list, not completion time.
        assert run(world, body)[0] == [(1, 1), (2, 2)]

    def test_send_status_names_destination(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                status = yield from comm.send(1, 64, tag=9)
                return status.source
            yield from comm.recv(0, tag=9)
            return None

        assert run(world, body)[0] == 1

    def test_request_repr_mentions_state(self):
        world = make_world(2)
        seen = {}

        def body(comm):
            if comm.rank == 0:
                request = yield from comm.isend(1, 16, tag=3)
                seen["pending"] = repr(request)
                yield from comm.wait(request)
                seen["done"] = repr(request)
            else:
                yield from comm.recv(0, tag=3)

        world.run(body)
        assert "send" in seen["pending"]
        assert "done" in seen["done"]


class TestValidation:
    def test_negative_size_send_rejected(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, -5)
            return None

        processes = world.spawn(body)
        world.sim.run()
        with pytest.raises(MpiError, match="negative"):
            _ = processes[0].value

    def test_irecv_source_bounds_checked(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.irecv(9)
            return None

        processes = world.spawn(body)
        world.sim.run()
        with pytest.raises(MpiError):
            _ = processes[0].value


class TestManyOutstandingRequests:
    def test_hundred_concurrent_isends_complete(self):
        world = make_world(2)
        count = 100

        def body(comm):
            if comm.rank == 0:
                requests = []
                for index in range(count):
                    request = yield from comm.isend(1, 512, tag=index)
                    requests.append(request)
                yield from comm.waitall(requests)
                return comm.now
            requests = []
            for index in range(count):
                request = yield from comm.irecv(0, tag=index)
                requests.append(request)
            yield from comm.waitall(requests)
            return comm.now

        send_done, recv_done = run(world, body)
        assert recv_done >= send_done
        assert world.quiescent()


# -- reduction dataflow (contribution tracking) ------------------------------


class ContributionComm:
    """Fake communicator carrying *contribution sets* instead of bytes.

    Each rank starts holding only its own contribution; a send ships the
    sender's current set (captured at send time, as a real buffered send
    copies the buffer), and a receive unions the shipped set in.  Running
    an allreduce schedule through this executor proves its dataflow: the
    operation is correct iff every rank ends with every rank's
    contribution — a surplus rank handed back a *partial* vector by a
    broken non-power-of-two fold-in ends with a strict subset.
    """

    def __init__(self, rank, size):
        self.rank = rank
        self.size = size
        self.data = frozenset({rank})

    def send(self, dest, nbytes, tag=0):
        got = yield ("send", self.rank, dest, tag, self.data)
        assert got is None

    def recv(self, source=ANY_SOURCE, tag=ANY_TAG):
        got = yield ("recv", source, self.rank, tag, None)
        self.data |= got

    def sendrecv(self, dest, nbytes, source, sendtag=0, recvtag=ANY_TAG):
        # Both payloads are the *pre-exchange* sets: the send is captured
        # before the concurrently received set is merged in.
        yield ("send", self.rank, dest, sendtag, self.data)
        got = yield ("recv", source, self.rank, recvtag, None)
        self.data |= got

    def compute(self, seconds):
        return
        yield  # pragma: no cover - generator marker


def run_dataflow(generator, size):
    """Execute one collective's dataflow; returns each rank's final set.

    Buffered-send semantics: a send deposits its payload into a mailbox
    keyed ``(source, dest, tag)`` and completes immediately; a receive
    blocks until the matching deposit exists.  Round-robin stepping with
    a no-progress check, so a mismatched schedule fails as a deadlock
    instead of hanging the test.
    """
    comms = [ContributionComm(rank, size) for rank in range(size)]
    programs = [generator(comm) for comm in comms]
    mailbox = {}
    blocked = [None] * size  # rank -> pending recv key, or None
    inbox = [None] * size    # value to resume the rank's generator with
    live = set(range(size))
    while live:
        progressed = False
        for rank in sorted(live):
            while True:
                if blocked[rank] is not None:
                    queue = mailbox.get(blocked[rank])
                    if not queue:
                        break
                    inbox[rank] = queue.pop(0)
                    blocked[rank] = None
                    progressed = True
                try:
                    op = programs[rank].send(inbox[rank])
                except StopIteration:
                    live.discard(rank)
                    progressed = True
                    break
                inbox[rank] = None
                kind, source, dest, tag, payload = op
                if kind == "send":
                    mailbox.setdefault((source, dest, tag), []).append(payload)
                    progressed = True
                else:
                    blocked[rank] = (source, dest, tag)
        if not progressed:
            raise AssertionError(
                f"dataflow deadlock: ranks {sorted(live)} blocked on "
                f"{[blocked[r] for r in sorted(live)]}"
            )
    return [set(comm.data) for comm in comms]


class TestAllreduceDataflow:
    """Open MPI semantics: every rank ends with the *final* vector."""

    @pytest.mark.parametrize("size", (3, 5, 6, 7))
    def test_recursive_doubling_non_pow2_fold_in_is_complete(self, size):
        from repro.collectives.allreduce import allreduce_recursive_doubling

        everyone = set(range(size))
        final = run_dataflow(
            lambda comm: allreduce_recursive_doubling(comm, 4096), size
        )
        base = 1
        while base * 2 <= size:
            base *= 2
        for rank, data in enumerate(final):
            assert data == everyone, (
                f"P={size}: rank {rank} "
                f"({'surplus' if rank >= base else 'base'}) finished with "
                f"contributions {sorted(data)}, not all of 0..{size - 1}"
            )

    @pytest.mark.parametrize("size", (2, 4, 8))
    def test_recursive_doubling_power_of_two(self, size):
        from repro.collectives.allreduce import allreduce_recursive_doubling

        final = run_dataflow(
            lambda comm: allreduce_recursive_doubling(comm, 4096), size
        )
        assert all(data == set(range(size)) for data in final)

    @pytest.mark.parametrize("size", (2, 3, 4, 5, 8))
    def test_ring_delivers_every_contribution(self, size):
        from repro.collectives.allreduce import allreduce_ring

        final = run_dataflow(lambda comm: allreduce_ring(comm, 4096), size)
        assert all(data == set(range(size)) for data in final)
