"""Span-to-metrics bridge.

Spans are the single source of timing truth; Prometheus histograms are a
*view* of them.  A :class:`SpanMetricsBridge` is a recorder finish hook
that routes finished spans into histogram/counter observers by span name,
so a subsystem instruments once (with spans) and gets both traces and
metrics — no parallel ad-hoc timers to drift out of agreement.

The selection server uses the same idea directly
(:meth:`repro.service.metrics.ServiceMetrics.observe_request_span`); this
class is the generic registry-level variant::

    bridge = SpanMetricsBridge({"http.request": metrics.request_seconds})
    obs.get_recorder().add_finish_hook(bridge)
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.spans import Span


class SpanMetricsBridge:
    """Routes finished spans into ``observe(duration)``-style sinks.

    ``sinks`` maps span names to objects with an ``observe(float)``
    method (e.g. :class:`repro.service.metrics.Histogram`).  Unmatched
    spans are ignored; ``observed`` counts matched ones.
    """

    def __init__(self, sinks: Mapping[str, object]):
        self.sinks = dict(sinks)
        self.observed = 0

    def __call__(self, span: Span) -> None:
        sink = self.sinks.get(span.name)
        if sink is not None:
            sink.observe(span.duration)  # type: ignore[attr-defined]
            self.observed += 1
