"""Calibration of the gather models (extension).

Gathers need no composite experiment: the operation already finishes on
the root, so the in-context experiment of §4.2 is the gather itself,
root-timed.  The canonical system is naturally non-singular — every
gather model's ``c_α`` is constant in ``m`` while ``c_β`` grows with it,
so the message-size sweep spreads the canonical ``x_i`` exactly as the
varying gather size does for broadcasts.

Gather models use the ideal platform function: the root is the only
many-counterpart endpoint and its serialised ingress is already part of
the model forms, so there is no separate γ(P) degradation to calibrate.

All measurements route through the execution subsystem: the whole
schedule is prefetched as one parallel batch and the adaptive loops
replay from the runner's memo, so a warm persistent cache rebuilds the
calibration with zero simulations.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import EstimationError
from repro.estimation.alphabeta import (
    DEFAULT_SIZES,
    RETRY_SEED_STRIDE,
    AlphaBeta,
    FitQuality,
)
from repro.estimation.regression import get_regressor, mad_screen
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.estimation.workflow import PlatformModel
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner, default_runner
from repro.measure import time_gather  # noqa: F401
from repro.models.base import BcastModel
from repro.models.gamma import GammaFunction
from repro.models.gather_models import DERIVED_GATHER_MODELS
from repro.models.hockney import HockneyParams

__all__ = [
    "time_gather",
    "gather_prefetch_jobs",
    "estimate_gather_alpha_beta",
    "calibrate_gather",
]


def gather_prefetch_jobs(
    spec: ClusterSpec,
    algorithm: str,
    *,
    procs: int,
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    reps: int = 2,
) -> list[SimJob]:
    """The first ``reps`` repetitions of one gather algorithm's sweep.

    Enumerates exactly the seeds :func:`estimate_gather_alpha_beta`'s
    adaptive loop will request, so prefetching these makes the loop replay
    from the runner's memo.
    """
    batch: list[SimJob] = []
    for index, nbytes in enumerate(sizes):
        base = seed + 104_729 * (index + 1)
        for rep in range(reps):
            batch.append(
                SimJob(
                    spec=spec,
                    kind="gather",
                    procs=procs,
                    algorithm=algorithm,
                    nbytes=nbytes,
                    seed=base + 7919 * rep,
                    policy="root",
                )
            )
    return batch


def estimate_gather_alpha_beta(
    spec: ClusterSpec,
    model: BcastModel,
    *,
    procs: int | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    prefetch: bool = True,
    screen_mad: float | None = None,
    retry_budget: int = 0,
) -> AlphaBeta:
    """Per-algorithm α/β for a gather algorithm (§4.2 applied to gather)."""
    if procs is None:
        procs = max(2, spec.max_procs // 2)
    if not 2 <= procs <= spec.max_procs:
        raise EstimationError(f"{spec.name}: procs={procs} outside 2..{spec.max_procs}")
    if len(sizes) < 2:
        raise EstimationError("need at least two message sizes to fit a line")
    fit_fn = get_regressor(regressor)
    runner = runner if runner is not None else default_runner()
    if prefetch:
        runner.prefetch(
            gather_prefetch_jobs(
                spec, model.algorithm, procs=procs, sizes=sizes, seed=seed
            )
        )

    memo_before = runner.stats.memo_hits
    sims_before = runner.stats.simulations
    with obs.span(
        "estimate.alphabeta",
        operation="gather",
        algorithm=model.algorithm,
        cluster=spec.name,
        procs=procs,
        sizes=len(sizes),
    ) as ab_span:
        xs: list[float] = []
        ys: list[float] = []
        stats: list[SampleStats] = []
        retried = 0
        for index, nbytes in enumerate(sizes):
            coeffs = model.coefficients(procs, nbytes, 0)
            if coeffs.c_alpha <= 0:
                raise EstimationError(
                    f"{model.algorithm}: degenerate experiment at m={nbytes}"
                )

            def measure_once(rep_seed: int, nbytes: int = nbytes) -> float:
                return runner.run_one(
                    SimJob(
                        spec=spec,
                        kind="gather",
                        procs=procs,
                        algorithm=model.algorithm,
                        nbytes=nbytes,
                        seed=rep_seed,
                        policy="root",
                    )
                )

            base_seed = seed + 104_729 * (index + 1)
            sample = adaptive_measure(
                measure_once,
                precision=precision,
                max_reps=max_reps,
                seed=base_seed,
            )
            attempt = 0
            while not sample.converged and attempt < retry_budget:
                attempt += 1
                retried += 1
                candidate = adaptive_measure(
                    measure_once,
                    precision=precision,
                    max_reps=max_reps,
                    seed=base_seed + RETRY_SEED_STRIDE * attempt,
                )
                if candidate.relative_precision < sample.relative_precision:
                    sample = candidate
            stats.append(sample)
            xs.append(coeffs.c_beta / coeffs.c_alpha)
            ys.append(sample.mean / coeffs.c_alpha)

        if screen_mad is not None and len(xs) > 2:
            kept = mad_screen(xs, ys, threshold=screen_mad)
        else:
            kept = list(range(len(xs)))
        screened = len(xs) - len(kept)
        fit = fit_fn([xs[i] for i in kept], [ys[i] for i in kept])
        mean_abs_y = sum(abs(ys[i]) for i in kept) / len(kept)
        quality = FitQuality(
            points=len(xs),
            screened=screened,
            fitted=len(kept),
            max_abs_residual=float(fit.max_abs_residual),
            relative_residual=float(
                fit.max_abs_residual / mean_abs_y if mean_abs_y > 0 else 0.0
            ),
            converged=sum(1 for s in stats if s.converged),
            retried=retried,
            mean_relative_precision=float(
                sum(s.relative_precision for s in stats) / len(stats)
            ),
        )
        ab_span.set_attrs(
            memo_hits=runner.stats.memo_hits - memo_before,
            simulations=runner.stats.simulations - sims_before,
            retried=retried,
        )
        return AlphaBeta(
            algorithm=model.algorithm,
            params=HockneyParams(
                alpha=max(fit.intercept, 0.0), beta=max(fit.slope, 0.0)
            ),
            fit=fit,
            points=tuple(zip(xs, ys)),
            sizes=tuple(sizes),
            stats=tuple(stats),
            quality=quality,
        )


def calibrate_gather(
    spec: ClusterSpec,
    *,
    procs: int | None = None,
    algorithms: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    screen_mad: float | None = None,
    retry_budget: int = 0,
) -> tuple[PlatformModel, dict[str, AlphaBeta]]:
    """Full gather calibration: per-algorithm α/β over a size sweep.

    Returns a :class:`PlatformModel` with ``model_family="gather_derived"``
    ready for :class:`~repro.selection.model_based.ModelBasedSelector`.
    """
    if algorithms is None:
        algorithms = sorted(DERIVED_GATHER_MODELS)
    ab_procs = procs if procs is not None else max(2, spec.max_procs // 2)

    with obs.span(
        "calibrate.platform",
        cluster=spec.name,
        estimation="collective",
        model_family="gather_derived",
        algorithms=",".join(algorithms),
    ):
        runner = runner if runner is not None else default_runner()
        batch: list[SimJob] = []
        for index, name in enumerate(algorithms):
            batch += gather_prefetch_jobs(
                spec,
                name,
                procs=ab_procs,
                sizes=sizes,
                seed=seed + 5_000_011 * (index + 1),
            )
        with obs.span(
            "calibrate.prefetch", jobs=len(batch), batched=runner.batch
        ):
            runner.prefetch(batch)

        gamma = GammaFunction.ideal()
        estimates: dict[str, AlphaBeta] = {}
        parameters: dict[str, HockneyParams] = {}
        for index, name in enumerate(algorithms):
            model = DERIVED_GATHER_MODELS[name](gamma)
            estimate = estimate_gather_alpha_beta(
                spec,
                model,
                procs=procs,
                sizes=sizes,
                regressor=regressor,
                precision=precision,
                max_reps=max_reps,
                seed=seed + 5_000_011 * (index + 1),
                runner=runner,
                prefetch=False,
                screen_mad=screen_mad,
                retry_budget=retry_budget,
            )
            estimates[name] = estimate
            parameters[name] = estimate.params

        platform = PlatformModel(
            cluster=spec.name,
            segment_size=0,
            gamma=gamma,
            parameters=parameters,
            model_family="gather_derived",
        )
        return platform, estimates
